//===- tests/frontend/cfront_test.cpp - mini-C front end -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "frontend/CFront.h"
#include "frontend/Lexer.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::cc;

namespace {

// --- Lexer ----------------------------------------------------------------

TEST(Lexer, TokenizesOperators) {
  std::string Err;
  auto Toks = tokenize("a += b << 2; c <= d != e++", Err);
  ASSERT_TRUE(Err.empty()) << Err;
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expect = {
      TokKind::Identifier, TokKind::PlusAssign, TokKind::Identifier,
      TokKind::Shl,        TokKind::Number,     TokKind::Semi,
      TokKind::Identifier, TokKind::Le,         TokKind::Identifier,
      TokKind::NotEq,      TokKind::Identifier, TokKind::PlusPlus,
      TokKind::End};
  EXPECT_EQ(Kinds, Expect);
}

TEST(Lexer, NumbersDecimalAndHex) {
  std::string Err;
  auto Toks = tokenize("42 0x2a 0", Err);
  ASSERT_TRUE(Err.empty());
  EXPECT_EQ(Toks[0].Value, 42);
  EXPECT_EQ(Toks[1].Value, 42);
  EXPECT_EQ(Toks[2].Value, 0);
}

TEST(Lexer, SkipsComments) {
  std::string Err;
  auto Toks = tokenize("a // line comment\n/* block\ncomment */ b", Err);
  ASSERT_TRUE(Err.empty());
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[1].Line, 3u) << "line counting through comments";
}

TEST(Lexer, ReportsBadCharacter) {
  std::string Err;
  tokenize("a @ b", Err);
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

// --- Compile-and-run harness ------------------------------------------

int64_t compileAndRun(const std::string &Source,
                      std::vector<int64_t> Args,
                      Memory *ExternalMem = nullptr,
                      const CompileOptions *CO = nullptr) {
  std::string Err;
  auto M = cc::compileC(Source, &Err);
  EXPECT_NE(M, nullptr) << Err;
  if (!M)
    return -1;
  Function *F = M->functions().front().get();
  TargetMachine TM = makeAlphaTarget();
  CompileOptions Default;
  Default.Mode = CoalesceMode::None;
  Default.Unroll = false;
  compileFunction(*F, TM, CO ? *CO : Default);
  Memory Local;
  Memory &Mem = ExternalMem ? *ExternalMem : Local;
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*F, Args);
  EXPECT_TRUE(R.ok()) << R.Error << "\n" << printFunction(*F);
  return R.ReturnValue;
}

TEST(CFront, ArithmeticAndPrecedence) {
  EXPECT_EQ(compileAndRun("int f(int a, int b) { return a + b * 2; }",
                          {3, 4}),
            11);
  EXPECT_EQ(compileAndRun("int f(int a) { return (a + 1) * (a - 1); }",
                          {5}),
            24);
  EXPECT_EQ(compileAndRun("int f(int a) { return a % 3 + a / 3; }", {10}),
            4);
  EXPECT_EQ(compileAndRun(
                "int f(int a, int b) { return a & b | a ^ b; }", {6, 3}),
            7);
  EXPECT_EQ(compileAndRun("int f(int a) { return -a; }", {9}), -9);
  EXPECT_EQ(compileAndRun("int f(int a) { return ~a; }", {0}), -1);
  EXPECT_EQ(compileAndRun("int f(int a) { return !a; }", {0}), 1);
  EXPECT_EQ(compileAndRun("int f(int a) { return a << 3 >> 1; }", {1}), 4);
}

TEST(CFront, ComparisonsRespectSignedness) {
  EXPECT_EQ(compileAndRun("int f(int a, int b) { return a < b; }",
                          {-1, 0}),
            1);
  EXPECT_EQ(compileAndRun(
                "int f(unsigned int a, unsigned int b) { return a < b; }",
                {-1, 0}),
            0)
      << "-1 is huge unsigned";
  EXPECT_EQ(compileAndRun("int f(int a) { return a >> 1; }", {-8}), -4);
  EXPECT_EQ(
      compileAndRun("int f(unsigned long a) { return a >> 1; }", {-8}),
      static_cast<int64_t>(static_cast<uint64_t>(-8) >> 1));
}

TEST(CFront, LocalsAndAssignment) {
  EXPECT_EQ(compileAndRun("int f(int a) {\n"
                          "  int x = 2;\n"
                          "  int y;\n"
                          "  y = a + x;\n"
                          "  x += y;\n"
                          "  x -= 1;\n"
                          "  return x;\n"
                          "}",
                          {10}),
            13);
}

TEST(CFront, IfElse) {
  const char *Src = "int f(int a) {\n"
                    "  if (a < 0) return -1;\n"
                    "  else if (a == 0) return 0;\n"
                    "  return 1;\n"
                    "}";
  EXPECT_EQ(compileAndRun(Src, {-5}), -1);
  EXPECT_EQ(compileAndRun(Src, {0}), 0);
  EXPECT_EQ(compileAndRun(Src, {7}), 1);
}

TEST(CFront, WhileLoop) {
  EXPECT_EQ(compileAndRun("int f(int n) {\n"
                          "  int s = 0;\n"
                          "  while (n > 0) { s += n; n -= 1; }\n"
                          "  return s;\n"
                          "}",
                          {10}),
            55);
  EXPECT_EQ(compileAndRun("int f(int n) {\n"
                          "  int s = 7;\n"
                          "  while (n > 0) { s += n; n -= 1; }\n"
                          "  return s;\n"
                          "}",
                          {0}),
            7)
      << "zero-trip loop";
}

TEST(CFront, ForLoop) {
  EXPECT_EQ(compileAndRun("int f(int n) {\n"
                          "  int s = 0;\n"
                          "  for (int i = 0; i < n; i++) s += i;\n"
                          "  return s;\n"
                          "}",
                          {5}),
            10);
  EXPECT_EQ(compileAndRun("int f(int n) {\n"
                          "  int s = 0;\n"
                          "  for (int i = n; i > 0; i--) s = s * 2 + 1;\n"
                          "  return s;\n"
                          "}",
                          {4}),
            15);
}

TEST(CFront, ArraysLoadStore) {
  Memory Mem;
  uint64_t A = Mem.allocate(64, 8);
  Mem.write(A, 2, static_cast<uint64_t>(int16_t(-7)));
  Mem.write(A + 2, 2, 9);
  int64_t R = compileAndRun("long f(short *a) { return a[0] + a[1]; }",
                            {static_cast<int64_t>(A)}, &Mem);
  EXPECT_EQ(R, 2);

  Memory Mem2;
  uint64_t B = Mem2.allocate(64, 8);
  compileAndRun("int f(unsigned char *p) { p[3] = 300; return 0; }",
                {static_cast<int64_t>(B)}, &Mem2);
  EXPECT_EQ(Mem2.read(B + 3, 1), 300u & 0xff) << "store truncates";
}

TEST(CFront, UnsignedCharZeroExtends) {
  Memory Mem;
  uint64_t A = Mem.allocate(8, 8);
  Mem.write(A, 1, 0xff);
  EXPECT_EQ(compileAndRun("int f(unsigned char *p) { return p[0]; }",
                          {static_cast<int64_t>(A)}, &Mem),
            255);
  Memory Mem2;
  uint64_t B = Mem2.allocate(8, 8);
  Mem2.write(B, 1, 0xff);
  EXPECT_EQ(compileAndRun("int f(char *p) { return p[0]; }",
                          {static_cast<int64_t>(B)}, &Mem2),
            -1);
}

TEST(CFront, PointerArithmeticScales) {
  Memory Mem;
  uint64_t A = Mem.allocate(64, 8);
  Mem.write(A + 4, 4, 123);
  EXPECT_EQ(compileAndRun("int f(int *p) { int *q = p + 1; return q[0]; }",
                          {static_cast<int64_t>(A)}, &Mem),
            123);
}

TEST(CFront, FloatArithmetic) {
  Memory Mem;
  uint64_t A = Mem.allocate(64, 8);
  float V1 = 1.5f, V2 = 2.5f;
  uint32_t B1, B2;
  memcpy(&B1, &V1, 4);
  memcpy(&B2, &V2, 4);
  Mem.write(A, 4, B1);
  Mem.write(A + 4, 4, B2);
  EXPECT_EQ(compileAndRun("int f(float *x) {\n"
                          "  float s = x[0] * x[1] + 1;\n"
                          "  return s * 2;\n" // 4.75 * 2 = 9.5 -> 9
                          "}",
                          {static_cast<int64_t>(A)}, &Mem),
            9);
}

TEST(CFront, ErrorsAreReported) {
  std::string Err;
  EXPECT_EQ(cc::compileC("int f(int a) { return b; }", &Err), nullptr);
  EXPECT_NE(Err.find("unknown variable"), std::string::npos);
  Err.clear();
  EXPECT_EQ(cc::compileC("int f(int a) { return a + ; }", &Err), nullptr);
  EXPECT_NE(Err.find("expected an expression"), std::string::npos);
  Err.clear();
  EXPECT_EQ(cc::compileC("int f(int a) { a[0] = 1; return 0; }", &Err),
            nullptr);
  EXPECT_NE(Err.find("not a pointer"), std::string::npos);
  Err.clear();
  EXPECT_EQ(cc::compileC("int f(int a { return a; }", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(CFront, RestrictSetsNoAlias) {
  std::string Err;
  auto M = cc::compileC(
      "int f(int * restrict a, int *b) { return a[0] + b[0]; }", &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function *F = M->functions().front().get();
  EXPECT_TRUE(F->paramInfoFor(F->params()[0]).NoAlias);
  EXPECT_FALSE(F->paramInfoFor(F->params()[1]).NoAlias);
}

TEST(CFront, MultipleFunctions) {
  std::string Err;
  auto M = cc::compileC("int f(int a) { return a; }\n"
                        "int g(int a) { return a + 1; }",
                        &Err);
  ASSERT_NE(M, nullptr) << Err;
  EXPECT_EQ(M->functions().size(), 2u);
}

// --- The paper's Figure 1a, compiled from actual C source ----------------

const char *Figure1aSource =
    "int dotproduct(short *a, short *b, int n) {\n"
    "  int c = 0;\n"
    "  int i;\n"
    "  for (i = 0; i < n; i++)\n"
    "    c += a[i] * b[i];\n"
    "  return c;\n"
    "}\n";

TEST(CFront, Figure1aCompilesAndRuns) {
  Memory Mem;
  uint64_t A = Mem.allocate(256, 8);
  uint64_t B = Mem.allocate(256, 8);
  int64_t Expect = 0;
  for (int I = 0; I < 100; ++I) {
    int16_t Va = static_cast<int16_t>(I * 3 - 50);
    int16_t Vb = static_cast<int16_t>(I - 20);
    Mem.write(A + 2 * I, 2, static_cast<uint16_t>(Va));
    Mem.write(B + 2 * I, 2, static_cast<uint16_t>(Vb));
    Expect += int64_t(Va) * Vb;
  }
  EXPECT_EQ(compileAndRun(Figure1aSource,
                          {static_cast<int64_t>(A),
                           static_cast<int64_t>(B), 100},
                          &Mem),
            Expect);
}

TEST(CFront, Figure1aCoalescesThroughStrengthReduction) {
  // The full paper toolchain: C source -> naive RTL -> strength
  // reduction -> unroll -> coalesce. The indexing i<<1 must become
  // pointer induction variables or nothing coalesces.
  std::string Err;
  auto M = cc::compileC(Figure1aSource, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function *F = M->functions().front().get();
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CompileReport R = compileFunction(*F, TM, CO);
  EXPECT_EQ(R.StrengthReduce.PointersDerived, 2u);
  EXPECT_EQ(R.StrengthReduce.RefsRewritten, 2u);
  EXPECT_EQ(R.Coalesce.LoopsUnrolled, 1u);
  EXPECT_EQ(R.Coalesce.LoadRunsCoalesced, 2u)
      << "both vectors coalesce, as in Fig. 1c";

  // And it still computes the right answer, through the checked path.
  Memory Mem;
  uint64_t A = Mem.allocate(256, 8);
  uint64_t B = Mem.allocate(256, 8);
  int64_t Expect = 0;
  for (int I = 0; I < 100; ++I) {
    Mem.write(A + 2 * I, 2, static_cast<uint64_t>(I));
    Mem.write(B + 2 * I, 2, static_cast<uint64_t>(2 * I + 1));
    Expect += int64_t(I) * (2 * I + 1);
  }
  Interpreter Interp(TM, Mem);
  RunResult Run = Interp.run(*F, {static_cast<int64_t>(A),
                                  static_cast<int64_t>(B), 100});
  ASSERT_TRUE(Run.ok()) << Run.Error;
  EXPECT_EQ(Run.ReturnValue, Expect);
  EXPECT_LT(Run.MemRefs(), 120u) << "coalesced path: ~2*100/4 references";
}

TEST(CFront, SaturatingImageAddInC) {
  const char *Src =
      "int image_add(unsigned char *a, unsigned char *b,\n"
      "              unsigned char * restrict c, int n) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    int s = a[i] + b[i];\n"
      "    if (s > 255) s = 255;\n"
      "    c[i] = s;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  std::string Err;
  auto M = cc::compileC(Src, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function *F = M->functions().front().get();
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  compileFunction(*F, TM, CO);

  Memory Mem;
  uint64_t A = Mem.allocate(256, 8);
  uint64_t B = Mem.allocate(256, 8);
  uint64_t C = Mem.allocate(256, 8);
  for (int I = 0; I < 200; ++I) {
    Mem.write(A + I, 1, (I * 7) & 0xff);
    Mem.write(B + I, 1, (I * 13) & 0xff);
  }
  Interpreter Interp(TM, Mem);
  RunResult Run = Interp.run(*F, {static_cast<int64_t>(A),
                                  static_cast<int64_t>(B),
                                  static_cast<int64_t>(C), 200});
  ASSERT_TRUE(Run.ok()) << Run.Error;
  for (int I = 0; I < 200; ++I) {
    unsigned S = ((I * 7) & 0xff) + ((I * 13) & 0xff);
    if (S > 255)
      S = 255;
    EXPECT_EQ(Mem.read(C + I, 1), S) << "pixel " << I;
  }
  // Note: the if inside the loop makes the body multi-block, so only
  // the loads in the header block could coalesce; correctness is the
  // point here.
}

} // namespace
