//===- tests/frontend/cfront_fuzz_test.cpp ---------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//----------------------------------------------------------------------===//
///
/// \file
/// Property fuzzing of the C front end: random programs are generated
/// twice from the same seed — once as source text, once as a host-side
/// evaluation — and the compiled kernel (through the full optimizing
/// pipeline, on all three targets) must return the evaluated value.
///
//===----------------------------------------------------------------------===//

#include "frontend/CFront.h"
#include "ir/Function.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "support/RNG.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace vpo;

namespace {

/// Generates a random straight-line + loop program and evaluates it.
struct ProgramGen {
  RNG R;
  std::string Src;
  std::map<std::string, int64_t> Env;
  std::vector<std::string> Vars;
  int Indent = 1;

  explicit ProgramGen(uint64_t Seed) : R(Seed * 811 + 3) {}

  void line(const std::string &S) {
    Src += std::string(static_cast<size_t>(Indent) * 2, ' ') + S + "\n";
  }

  std::string pick() { return Vars[R.nextBelow(Vars.size())]; }

  /// A random expression over existing variables; returns (text, value).
  std::pair<std::string, int64_t> expr(int Depth) {
    if (Depth <= 0 || R.nextBelow(3) == 0) {
      if (R.nextBelow(2) == 0) {
        int64_t V = R.nextInRange(-20, 20);
        return {std::to_string(V), V};
      }
      std::string N = pick();
      return {N, Env[N]};
    }
    auto [LT, LV] = expr(Depth - 1);
    auto [RT, RV] = expr(Depth - 1);
    switch (R.nextBelow(7)) {
    case 0:
      return {"(" + LT + " + " + RT + ")", LV + RV};
    case 1:
      return {"(" + LT + " - " + RT + ")", LV - RV};
    case 2:
      return {"(" + LT + " * " + RT + ")",
              static_cast<int64_t>(static_cast<uint64_t>(LV) *
                                   static_cast<uint64_t>(RV))};
    case 3:
      return {"(" + LT + " ^ " + RT + ")", LV ^ RV};
    case 4:
      return {"(" + LT + " & " + RT + ")", LV & RV};
    case 5:
      return {"(" + LT + " < " + RT + ")", LV < RV ? 1 : 0};
    default:
      return {"(" + LT + " << 1)", static_cast<int64_t>(
                                       static_cast<uint64_t>(LV) << 1)};
    }
  }

  std::string build() {
    Src = "long f(long p0, long p1) {\n";
    Vars = {"p0", "p1"};
    Env["p0"] = 13;
    Env["p1"] = -4;
    int NextVar = 0;

    for (int S = 0; S < 12; ++S) {
      switch (R.nextBelow(4)) {
      case 0: { // declaration
        auto [T, V] = expr(2);
        std::string N = "v" + std::to_string(NextVar++);
        line("long " + N + " = " + T + ";");
        Env[N] = V;
        Vars.push_back(N);
        break;
      }
      case 1: { // assignment
        std::string N = pick();
        auto [T, V] = expr(2);
        line(N + " = " + T + ";");
        Env[N] = V;
        break;
      }
      case 2: { // if/else
        auto [CT, CV] = expr(1);
        std::string N = pick();
        auto [TT, TV] = expr(1);
        auto [ET, EV] = expr(1);
        line("if (" + CT + ") " + N + " = " + TT + "; else " + N + " = " +
             ET + ";");
        Env[N] = CV != 0 ? TV : EV;
        break;
      }
      case 3: { // bounded accumulation loop
        std::string N = pick();
        // The step expression must not read the accumulation target (its
        // value changes per iteration; the host-side evaluation below
        // multiplies a once-evaluated step by the trip count).
        std::vector<std::string> Saved = Vars;
        Vars.erase(std::remove(Vars.begin(), Vars.end(), N), Vars.end());
        if (Vars.empty())
          Vars.push_back("p0"); // N == p0 was the only variable
        auto [ST, SV] = expr(1);
        Vars = std::move(Saved);
        if (N == "p0" && ST.find("p0") != std::string::npos)
          break; // degenerate fallback above used the target anyway
        int64_t Trips = R.nextInRange(0, 6);
        std::string IVar = "i" + std::to_string(NextVar++);
        line("for (long " + IVar + " = 0; " + IVar + " < " +
             std::to_string(Trips) + "; " + IVar + "++) " + N + " += " +
             ST + ";");
        Env[N] += Trips * SV;
        break;
      }
      }
    }
    auto [RT2, RV2] = expr(2);
    line("return " + RT2 + ";");
    Src += "}\n";
    ExpectedReturn = RV2;
    return Src;
  }

  int64_t ExpectedReturn = 0;
};

class CFrontFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CFrontFuzzTest, CompiledMatchesEvaluated) {
  ProgramGen Gen(GetParam());
  std::string Src = Gen.build();

  std::string Err;
  auto M = cc::compileC(Src, &Err);
  ASSERT_NE(M, nullptr) << Err << "\n" << Src;
  Function *F = M->functions().front().get();

  for (const char *Target : {"alpha", "m88100", "m68030"}) {
    // Recompile per target (the pipeline mutates the function).
    auto M2 = cc::compileC(Src, &Err);
    ASSERT_NE(M2, nullptr);
    Function *F2 = M2->functions().front().get();
    TargetMachine TM = makeTargetByName(Target);
    CompileOptions CO;
    CO.Mode = CoalesceMode::LoadsAndStores;
    CO.Unroll = true;
    compileFunction(*F2, TM, CO);
    Memory Mem;
    Interpreter Interp(TM, Mem);
    RunResult R = Interp.run(*F2, {13, -4});
    ASSERT_TRUE(R.ok()) << R.Error << "\n" << Src;
    EXPECT_EQ(R.ReturnValue, Gen.ExpectedReturn)
        << "target=" << Target << "\n"
        << Src;
  }
  (void)F;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CFrontFuzzTest,
                         testing::Range<uint64_t>(1, 61));

} // namespace
