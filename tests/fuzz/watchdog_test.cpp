//===- tests/fuzz/watchdog_test.cpp - Containment layer tests -------------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The fork/deadline containment the fuzz driver wraps around each case.
// Exercises all three child fates — clean exit (code and pipe output
// preserved), death by signal, and deadline expiry — plus the output cap
// and the chatty-child case, where partial reads must not extend the
// deadline. Skipped wholesale on platforms without fork, mirroring the
// driver's own fallback.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Watchdog.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

#define SKIP_WITHOUT_FORK()                                                    \
  do {                                                                         \
    if (!watchdogCanFork())                                                    \
      GTEST_SKIP() << "platform cannot fork";                                  \
  } while (0)

TEST(Watchdog, CompletedChildReportsExitCodeAndOutput) {
  SKIP_WITHOUT_FORK();
  ContainedOutcome O = runContained(
      [](int WriteFd) {
        writeAll(WriteFd, "hello from the child");
        return 7;
      },
      /*TimeoutMs=*/10000);
  EXPECT_EQ(O.K, ContainedOutcome::Kind::Completed);
  EXPECT_EQ(O.ExitCode, 7);
  EXPECT_EQ(O.Output, "hello from the child");
}

TEST(Watchdog, CrashingChildIsClassifiedNotPropagated) {
  SKIP_WITHOUT_FORK();
  ContainedOutcome O = runContained(
      [](int) -> int {
        std::abort(); // the bug class containment exists for
      },
      /*TimeoutMs=*/10000);
  EXPECT_EQ(O.K, ContainedOutcome::Kind::Crashed);
  EXPECT_NE(O.Signal, 0);
}

TEST(Watchdog, HangingChildHitsTheDeadline) {
  SKIP_WITHOUT_FORK();
  ContainedOutcome O = runContained(
      [](int) -> int {
        volatile unsigned X = 1;
        while (X) // host-code hang: the interpreter budget can't help
          X = X * 3 + 1;
        return 0;
      },
      /*TimeoutMs=*/200);
  EXPECT_EQ(O.K, ContainedOutcome::Kind::TimedOut);
}

TEST(Watchdog, ChattyChildCannotExtendItsDeadline) {
  SKIP_WITHOUT_FORK();
  // A child that hangs *while producing output* must still be killed:
  // the deadline is absolute, not reset per read.
  ContainedOutcome O = runContained(
      [](int WriteFd) -> int {
        for (;;)
          writeAll(WriteFd, "still alive\n");
      },
      /*TimeoutMs=*/200);
  EXPECT_EQ(O.K, ContainedOutcome::Kind::TimedOut);
}

TEST(Watchdog, OutputBeyondCapIsDiscarded) {
  SKIP_WITHOUT_FORK();
  ContainedOutcome O = runContained(
      [](int WriteFd) {
        writeAll(WriteFd, std::string(4096, 'x'));
        return 0;
      },
      /*TimeoutMs=*/10000, /*MaxOutputBytes=*/64);
  EXPECT_EQ(O.K, ContainedOutcome::Kind::Completed);
  EXPECT_LE(O.Output.size(), 64u);
}

} // namespace
