//===- tests/fuzz/reducer_test.cpp - Delta-debugging reducer tests --------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The reducer's contract: shrink monotonically, keep every accepted
// candidate parseable and verdict-preserving, and — the acceptance bar
// from the issue — take a planted miscompile in a full generated kernel
// down to a repro under 25 instructions.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "fuzz/KernelGen.h"
#include "fuzz/Oracle.h"
#include "ir/Function.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

TEST(Reducer, CountInstructions) {
  EXPECT_EQ(countInstructions("not ir at all"), 0u);
  const char *Text = "func @k(r1) {\n"
                     "entry:\n"
                     "  r2 = add r1, 1\n"
                     "  ret r2\n"
                     "}\n";
  EXPECT_EQ(countInstructions(Text), 2u);
}

TEST(Reducer, AcceptAllPredicateStillYieldsWellFormedIR) {
  GeneratedKernel K = generateKernel(5);
  size_t Before = countInstructions(K.IRText);
  ASSERT_GT(Before, 0u);
  // "Everything that parses is interesting" — maximal reduction
  // pressure. The result must stay a parseable function no matter how
  // hard the mutations squeeze.
  ReduceResult R = reduceIRText(K.IRText, [](const std::string &Cand) {
    std::vector<Diagnostic> Diags;
    return parseModule(Cand, Diags) != nullptr;
  });
  EXPECT_LT(R.FinalInsts, Before);
  EXPECT_GT(R.FinalInsts, 0u); // at minimum a terminator survives
  std::vector<Diagnostic> Diags;
  EXPECT_TRUE(parseModule(R.IRText, Diags) != nullptr);
  EXPECT_EQ(R.FinalInsts, countInstructions(R.IRText));
}

TEST(Reducer, RejectAllPredicateLeavesOriginalIntact) {
  GeneratedKernel K = generateKernel(5);
  ReduceResult R =
      reduceIRText(K.IRText, [](const std::string &) { return false; });
  EXPECT_EQ(R.IRText, K.IRText);
  EXPECT_EQ(R.Applied, 0u);
  EXPECT_EQ(R.OriginalInsts, R.FinalInsts);
}

/// The issue's acceptance bar: a planted miscompile in a generated
/// kernel auto-reduces to fewer than 25 IR instructions while the oracle
/// still classifies it the same way.
TEST(Reducer, PlantedFaultReducesBelowTwentyFiveInstructions) {
  GeneratedKernel K = generateKernel(3);
  OracleOptions Probe;
  Probe.Targets = {"alpha"};
  Probe.CheckCSource = false;
  Probe.Inject = InjectSpec{"coalesce", FaultKind::WrongWidth, 7};

  // The unreduced kernel must already show the verdict we preserve.
  ASSERT_EQ(checkIRText(K.IRText, K.Spec, Probe).Kind,
            FailKind::CompileIncident);

  ReduceResult R = reduceIRText(K.IRText, [&](const std::string &Cand) {
    return checkIRText(Cand, K.Spec, Probe).Kind == FailKind::CompileIncident;
  });
  EXPECT_LT(R.FinalInsts, 25u) << R.IRText;
  EXPECT_LT(R.FinalInsts, R.OriginalInsts);
  EXPECT_GT(R.Applied, 0u);
  // And the reduced text still reproduces, from a fresh oracle run.
  EXPECT_EQ(checkIRText(R.IRText, K.Spec, Probe).Kind,
            FailKind::CompileIncident);
}

} // namespace
