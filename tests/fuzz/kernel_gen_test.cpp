//===- tests/fuzz/kernel_gen_test.cpp - Kernel generator tests ------------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// Properties of the seeded kernel generator the rest of the fuzzing
// subsystem relies on:
//   * determinism: a seed renders to byte-identical IR and C text on
//     every call (the corpus format records only the seed);
//   * validity: over a seed range, every generated kernel parses,
//     verifies, and runs to a clean exit on the strictest-alignment
//     target for every advertised trip count — the generator must not
//     hand the oracle kernels whose *baseline* traps;
//   * the mini-C rendering, when present, is accepted by the frontend.
//
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"

#include "frontend/CFront.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

TEST(KernelGen, SameSeedRendersByteIdenticalText) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    GeneratedKernel A = generateKernel(Seed);
    GeneratedKernel B = generateKernel(Seed);
    EXPECT_EQ(A.IRText, B.IRText) << "seed " << Seed;
    EXPECT_EQ(A.CSource, B.CSource) << "seed " << Seed;
    EXPECT_FALSE(A.IRText.empty()) << "seed " << Seed;
  }
}

TEST(KernelGen, SpecIsPureFunctionOfSeed) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    KernelSpec A = KernelSpec::random(Seed);
    KernelSpec B = KernelSpec::random(Seed);
    ASSERT_EQ(A.Streams.size(), B.Streams.size()) << "seed " << Seed;
    EXPECT_EQ(A.TripCounts, B.TripCounts) << "seed " << Seed;
    EXPECT_EQ(A.AccInit, B.AccInit) << "seed " << Seed;
    for (size_t S = 0; S < A.Streams.size(); ++S) {
      EXPECT_EQ(A.Streams[S].ElemBytes, B.Streams[S].ElemBytes);
      EXPECT_EQ(A.Streams[S].BaseSkew, B.Streams[S].BaseSkew);
      EXPECT_EQ(A.Streams[S].Place, B.Streams[S].Place);
    }
  }
}

TEST(KernelGen, SpecShapeInvariants) {
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    KernelSpec Spec = KernelSpec::random(Seed);
    ASSERT_FALSE(Spec.Streams.empty()) << "seed " << Seed;
    ASSERT_LE(Spec.Streams.size(), 4u) << "seed " << Seed;
    // Trip counts always include the zero-trip boundary.
    ASSERT_FALSE(Spec.TripCounts.empty());
    EXPECT_EQ(Spec.TripCounts.front(), 0);
    // Stream 0 anchors the layout and must be Disjoint.
    EXPECT_EQ(Spec.Streams[0].Place, StreamSpec::Placement::Disjoint);
    for (const StreamSpec &St : Spec.Streams) {
      EXPECT_TRUE(St.ElemBytes == 1 || St.ElemBytes == 2 ||
                  St.ElemBytes == 4 || St.ElemBytes == 8);
      // Every stream touches memory (otherwise it fuzzes nothing).
      EXPECT_TRUE(St.HasLoad || St.HasStore);
      EXPECT_GE(St.RefsPerIter, 1u);
    }
  }
}

/// Every generated kernel must parse, verify, and run cleanly at every
/// advertised trip count on the alignment-strict target: a trapping
/// baseline would be a generator bug (FailKind::GeneratorInvalid), and
/// the memory setup exists precisely to solve skews into alignment.
TEST(KernelGen, GeneratedKernelsRunCleanOnStrictTarget) {
  TargetMachine TM = makeTargetByName("alpha");
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    GeneratedKernel K = generateKernel(Seed);
    std::vector<Diagnostic> Diags;
    std::unique_ptr<Module> M = parseModule(K.IRText, Diags);
    ASSERT_TRUE(M) << "seed " << Seed << ": "
                   << (Diags.empty() ? "?" : Diags[0].render());
    Function *F = M->findFunction("k");
    ASSERT_NE(F, nullptr) << "seed " << Seed;
    EXPECT_TRUE(verifyFunctionDiagnostics(*F, "kernel-gen").empty())
        << "seed " << Seed;

    for (int64_t N : K.Spec.TripCounts) {
      for (size_t Skew : {size_t(0), size_t(3)}) {
        Memory Mem(size_t(1) << 20);
        std::vector<int64_t> Args = setupKernelMemory(K.Spec, N, Mem, Skew);
        InterpreterOptions Opts;
        Opts.MaxSteps = 10'000'000;
        Interpreter I(TM, Mem, Opts);
        RunResult R = I.run(*F, Args);
        EXPECT_EQ(R.Exit, RunResult::Status::Ok)
            << "seed " << Seed << " n=" << N << " skew=" << Skew << ": "
            << R.Error;
      }
    }
  }
}

TEST(KernelGen, CSourceCompilesWhenPresent) {
  unsigned Rendered = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    GeneratedKernel K = generateKernel(Seed);
    if (K.CSource.empty())
      continue; // byte-granular skew: IR-only by design
    ++Rendered;
    std::string Err;
    std::unique_ptr<Module> M = cc::compileC(K.CSource, &Err);
    ASSERT_TRUE(M) << "seed " << Seed << ": " << Err << "\n" << K.CSource;
    ASSERT_FALSE(M->functions().empty());
    EXPECT_TRUE(
        verifyFunctionDiagnostics(*M->functions()[0], "kernel-gen").empty())
        << "seed " << Seed;
  }
  // The element-aligned-skew bias must leave a healthy share of specs
  // renderable as C; if this decays the C oracle dimension silently dies.
  EXPECT_GE(Rendered, 10u);
}

} // namespace
