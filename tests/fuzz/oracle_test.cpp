//===- tests/fuzz/oracle_test.cpp - Differential oracle tests -------------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The oracle's two obligations: stay quiet on a healthy pipeline (no
// false positives over a seed range), and bite on every class of planted
// miscompile (no false negatives). The second half is the fuzzer's
// end-to-end self-test — inject each FaultKind after the coalesce pass
// and require a CompileIncident verdict, which proves the guard-rail /
// verifier layer actually sits between a buggy pass and the simulator.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

OracleOptions fastOptions() {
  OracleOptions O;
  O.Targets = {"alpha"}; // strictest alignment; keep unit runtime low
  return O;
}

TEST(Oracle, CleanSeedsPassOnAlpha) {
  OracleOptions O = fastOptions();
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    OracleResult R = checkKernel(generateKernel(Seed), O);
    EXPECT_TRUE(R.passed()) << "seed " << Seed << ": " << R.render();
    EXPECT_GT(R.Comparisons, 0u) << "seed " << Seed;
  }
}

TEST(Oracle, CleanSeedPassesOnAllTargets) {
  OracleOptions O; // default: alpha, m88100, m68030
  OracleResult R = checkKernel(generateKernel(7), O);
  EXPECT_TRUE(R.passed()) << R.render();
}

TEST(Oracle, EveryPlantedFaultKindIsCaught) {
  const FaultKind Kinds[] = {FaultKind::WrongWidth, FaultKind::ClobberedBase,
                             FaultKind::DroppedCheck,
                             FaultKind::MissingOperand, FaultKind::EmptyBlock};
  // Every generated kernel has memory references, a loop branch, and ALU
  // address arithmetic, so each kind has an injection site.
  GeneratedKernel K = generateKernel(3);
  for (FaultKind Kind : Kinds) {
    OracleOptions O = fastOptions();
    O.Inject = InjectSpec{"coalesce", Kind, 7};
    OracleResult R = checkKernel(K, O);
    EXPECT_EQ(R.Kind, FailKind::CompileIncident)
        << faultKindName(Kind) << ": " << R.render();
  }
}

TEST(Oracle, PlantedFaultCaughtAcrossSeeds) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    OracleOptions O = fastOptions();
    O.Inject = InjectSpec{"coalesce", FaultKind::WrongWidth, Seed};
    OracleResult R = checkKernel(generateKernel(Seed), O);
    EXPECT_EQ(R.Kind, FailKind::CompileIncident)
        << "seed " << Seed << ": " << R.render();
  }
}

TEST(Oracle, ExhaustedBudgetIsAHarnessProblem) {
  OracleOptions O = fastOptions();
  O.MaxInsts = 20; // below any non-trivial trip count's cost
  OracleResult R = checkKernel(generateKernel(1), O);
  EXPECT_EQ(R.Kind, FailKind::GeneratorInvalid) << R.render();
}

TEST(Oracle, InjectSpecParseRenderRoundTrip) {
  auto I = InjectSpec::parse("coalesce:wrong-width:7");
  ASSERT_TRUE(I.has_value());
  EXPECT_EQ(I->AfterPass, "coalesce");
  EXPECT_EQ(I->Kind, FaultKind::WrongWidth);
  EXPECT_EQ(I->Seed, 7u);
  EXPECT_EQ(I->render(), "coalesce:wrong-width:7");

  EXPECT_FALSE(InjectSpec::parse("").has_value());
  EXPECT_FALSE(InjectSpec::parse("coalesce").has_value());
  EXPECT_FALSE(InjectSpec::parse("coalesce:no-such-kind:7").has_value());
}

TEST(Oracle, FailKindNamesRoundTrip) {
  const FailKind Kinds[] = {
      FailKind::None,           FailKind::GeneratorInvalid,
      FailKind::CompileIncident, FailKind::StatusDiverged,
      FailKind::ReturnDiverged, FailKind::MemoryDiverged,
      FailKind::EngineDiverged, FailKind::Crashed,
      FailKind::TimedOut};
  for (FailKind K : Kinds) {
    auto Back = failKindFromName(failKindName(K));
    ASSERT_TRUE(Back.has_value()) << failKindName(K);
    EXPECT_EQ(*Back, K);
  }
  EXPECT_FALSE(failKindFromName("bogus").has_value());
}

// FaultKind::SchedLength is unlike the IR-corrupting kinds: it plants a
// wrong schedule length into the profitability compare, which is not a
// miscompile (both verdicts produce correct code) — so the guard rails
// stay quiet and the exact-scheduler *audit* is the only layer that can
// see it. The oracle's contract: a case passes only when the audit
// actually reported the planted flip; a case where the plant went
// unreported anywhere fails as AuditSilent.
TEST(Oracle, PlantedSchedLengthIsReportedByTheAudit) {
  // Seed 1's kernel coalesces profitably on alpha, so the planted skew
  // flips at least one verdict and the audit must say so. A healthy
  // reporting chain (skew -> flipped verdict -> profitability-flipped
  // remark -> consistency scan) yields a pass; any break in it would
  // surface as AuditSilent or RemarkDiverged.
  OracleOptions O = fastOptions();
  O.Inject = InjectSpec{"coalesce", FaultKind::SchedLength, 7};
  OracleResult R = checkKernel(generateKernel(1), O);
  EXPECT_TRUE(R.passed()) << R.render();
}

TEST(Oracle, UnreportedSchedLengthPlantFailsAsAuditSilent) {
  // Seed 3's kernel has no profitably-coalescible loop on alpha: the
  // planted skew flips nothing, the audit has nothing to report, and the
  // self-test gate must refuse to call that a pass — silence about a
  // plant is exactly the failure mode the gate exists to catch.
  OracleOptions O = fastOptions();
  O.Inject = InjectSpec{"coalesce", FaultKind::SchedLength, 7};
  OracleResult R = checkKernel(generateKernel(3), O);
  EXPECT_EQ(R.Kind, FailKind::AuditSilent) << R.render();
}

TEST(Oracle, SchedLengthGateNeedsTelemetryCompiles) {
  // Without the telemetry compiles the audit has no sink and cannot
  // speak, so the gate is documented as inert rather than silently
  // failing every SchedLength case.
  OracleOptions O = fastOptions();
  O.CheckTelemetry = false;
  O.Inject = InjectSpec{"coalesce", FaultKind::SchedLength, 7};
  OracleResult R = checkKernel(generateKernel(3), O);
  EXPECT_TRUE(R.passed()) << R.render();
}

TEST(Oracle, SchedLengthInjectSpecRoundTrips) {
  auto I = InjectSpec::parse("coalesce:sched-length:9");
  ASSERT_TRUE(I.has_value());
  EXPECT_EQ(I->Kind, FaultKind::SchedLength);
  EXPECT_EQ(I->render(), "coalesce:sched-length:9");
  auto K = failKindFromName("audit-silent");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, FailKind::AuditSilent);
}

TEST(Oracle, ConfigListShapedForDifferentialTesting) {
  std::vector<PipelineConfig> Configs = oracleConfigs();
  ASSERT_GE(Configs.size(), 4u);
  // Index 0 is the baseline every other configuration is compared to.
  EXPECT_EQ(Configs[0].Options.Mode, CoalesceMode::None);
  bool SawUnroll4 = false;
  for (const PipelineConfig &C : Configs)
    if (C.Options.UnrollFactor == 4)
      SawUnroll4 = true;
  // The trip-count biases (3 = unroll-1) only pay off if some config
  // actually unrolls by 4.
  EXPECT_TRUE(SawUnroll4);
}

} // namespace
