//===- tests/fuzz/fuzz_determinism_test.cpp - Seed determinism ------------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The campaign-level determinism guarantee: one campaign seed fully
// determines every per-case kernel and verdict, and the report is
// byte-identical at any worker-thread count — so a failure seen in CI's
// parallel run replays exactly under --threads=1 on a laptop. Also
// covers the containment-pipe serialization, whose round-trip fidelity
// the fork-contained executor depends on.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <gtest/gtest.h>
#include <set>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

TEST(Determinism, CaseSeedsAreStableAndSpread) {
  std::set<uint64_t> Seen;
  for (unsigned I = 0; I < 64; ++I) {
    uint64_t S = caseSeed(42, I);
    EXPECT_EQ(S, caseSeed(42, I));
    Seen.insert(S);
  }
  EXPECT_EQ(Seen.size(), 64u); // neighbouring indices: unrelated kernels
  EXPECT_NE(caseSeed(42, 0), caseSeed(43, 0));
}

CampaignOptions smallCampaign(unsigned Threads) {
  CampaignOptions O;
  O.Seed = 11;
  O.Cases = 6;
  O.Threads = Threads;
  O.Oracle.Targets = {"alpha"};
  return O;
}

TEST(Determinism, SummaryIsIdenticalAcrossThreadCounts) {
  CampaignReport One = runCampaign(smallCampaign(1));
  CampaignReport Three = runCampaign(smallCampaign(3));
  EXPECT_EQ(One.summary(), Three.summary());
  ASSERT_EQ(One.Outcomes.size(), Three.Outcomes.size());
  for (size_t I = 0; I < One.Outcomes.size(); ++I) {
    EXPECT_EQ(One.Outcomes[I].Seed, Three.Outcomes[I].Seed);
    EXPECT_EQ(One.Outcomes[I].Result.Kind, Three.Outcomes[I].Result.Kind);
    EXPECT_EQ(One.Outcomes[I].Result.Comparisons,
              Three.Outcomes[I].Result.Comparisons);
  }
}

TEST(Determinism, InjectedCampaignIsDeterministicToo) {
  CampaignOptions A = smallCampaign(1);
  A.Cases = 3;
  A.Oracle.Inject = InjectSpec{"coalesce", FaultKind::WrongWidth, 7};
  CampaignOptions B = A;
  B.Threads = 2;
  CampaignReport RA = runCampaign(A);
  CampaignReport RB = runCampaign(B);
  EXPECT_EQ(RA.summary(), RB.summary());
  EXPECT_EQ(RA.failures(), 3u); // every case must be caught
  EXPECT_EQ(RA.harnessProblems(), 0u);
}

TEST(Determinism, OracleResultSerializationRoundTrips) {
  OracleResult R;
  R.Kind = FailKind::MemoryDiverged;
  R.Detail = "byte 12 differs\nacross two lines";
  R.Program = "ir";
  R.Target = "m88100";
  R.Config = "coalesce-all";
  R.Scenario = "n13.skew3";
  R.Engine = "predecode";
  R.Comparisons = 99;

  OracleResult Back;
  ASSERT_TRUE(deserializeOracleResult(serializeOracleResult(R), Back));
  EXPECT_EQ(Back.Kind, R.Kind);
  EXPECT_EQ(Back.Program, R.Program);
  EXPECT_EQ(Back.Target, R.Target);
  EXPECT_EQ(Back.Config, R.Config);
  EXPECT_EQ(Back.Scenario, R.Scenario);
  EXPECT_EQ(Back.Engine, R.Engine);
  EXPECT_EQ(Back.Comparisons, R.Comparisons);
  // Newlines are flattened for the line-oriented pipe format; content
  // must otherwise survive.
  EXPECT_NE(Back.Detail.find("byte 12 differs"), std::string::npos);

  OracleResult Junk;
  EXPECT_FALSE(deserializeOracleResult("not a result", Junk));
}

} // namespace
