//===- tests/fuzz/corpus_replay_test.cpp - Checked-in repro replay --------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// Replays every minimized repro checked into tests/fuzz/corpus/ under
// tier-1 ctest: expect=detect entries re-plant their recorded fault and
// must fail with exactly the recorded kind, expect=match entries must
// pass the oracle cleanly. Plus unit coverage of the corpus file format
// itself (render/parse round trip, malformed-header rejection).
//
// VPO_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::fuzz;

namespace {

TEST(CorpusFormat, RenderParseRoundTrip) {
  CorpusEntry E;
  E.SpecSeed = 17;
  E.Kind = FailKind::CompileIncident;
  E.ExpectDetect = true;
  E.Inject = InjectSpec{"coalesce", FaultKind::WrongWidth, 7};
  E.Note = "reduced from 61 instructions";
  E.IRText = "func @k(r1) {\nentry:\n  ret r1\n}\n";

  CorpusEntry Back;
  std::string Err;
  ASSERT_TRUE(parseCorpusEntry(E.render(), Back, Err)) << Err;
  EXPECT_EQ(Back.SpecSeed, 17u);
  EXPECT_EQ(Back.Kind, FailKind::CompileIncident);
  EXPECT_TRUE(Back.ExpectDetect);
  ASSERT_TRUE(Back.Inject.has_value());
  EXPECT_EQ(Back.Inject->render(), "coalesce:wrong-width:7");
  EXPECT_EQ(Back.Note, E.Note);
  EXPECT_NE(Back.IRText.find("func @k"), std::string::npos);
}

TEST(CorpusFormat, MalformedHeadersAreRejected) {
  CorpusEntry E;
  std::string Err;
  EXPECT_FALSE(parseCorpusEntry("func @k() {\nentry:\n  ret 0\n}\n", E, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseCorpusEntry(
      "# fuzz-repro specseed=1 kind=no-such-kind expect=detect\nret 0\n", E,
      Err));
}

TEST(CorpusReplay, CheckedInReprosAllReplay) {
  std::vector<std::string> Files = listCorpusFiles(VPO_FUZZ_CORPUS_DIR);
  // The corpus ships with the repo; an empty directory here means the
  // regression net silently unhooked itself.
  ASSERT_FALSE(Files.empty()) << "no .ir files under " << VPO_FUZZ_CORPUS_DIR;
  OracleOptions Base; // all three targets, default budgets — as CI runs it
  for (const std::string &Path : Files) {
    CorpusEntry E;
    std::string Err, Why;
    ASSERT_TRUE(loadCorpusFile(Path, E, Err)) << Err;
    EXPECT_TRUE(replayCorpusEntry(E, Base, Why)) << Path << ": " << Why;
  }
}

} // namespace
