//===- tests/service/worker_test.cpp ---------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker's pure compile core (compileServiceRequest) and the
/// degradation ladder, driven in-process with no daemon: request
/// validation, canonical content keys across textual variants,
/// byte-stable results (cached-vs-fresh equivalence), run-mode
/// simulation with its trap and budget semantics, guard-rail incident
/// reporting for injected pass faults at every rung, and the ladder's
/// options transform itself.
///
//===----------------------------------------------------------------------===//

#include "service/Worker.h"

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/FaultInjection.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::service;

namespace {

/// A loop kernel with a narrow load the coalescer can chew on. Sums r2
/// 16-bit elements starting at r1; zero-filled memory -> returns 0.
const char *SumKernel = R"(func @sum(r1, r2) {
entry:
  r3 = mov 0
  r4 = mov 0
  jmp head
head:
  br.lts r4, r2, body, exit
body:
  r5 = load.i16.s [r1]
  r3 = add r3, r5
  r1 = add r1, 2
  r4 = add r4, 1
  jmp head
exit:
  ret r3
}
)";

/// A paper workload kernel (image_add) as request text: unlike the tiny
/// hand-written loop, it gives the coalescer real runs to transform and
/// every fault kind an injection site.
std::string workloadIR() {
  std::unique_ptr<Workload> W = makeWorkloadByName("image_add");
  Module M;
  Function *F = W->build(M);
  return printFunction(*F);
}

ServiceRequest compileReq(const char *IR = SumKernel) {
  ServiceRequest Req;
  Req.Op = "compile";
  Req.Id = "t";
  Req.IR = IR;
  Req.Config = "coalesce-all";
  Req.Target = "alpha";
  return Req;
}

bool isHexKey(const std::string &K) {
  if (K.size() != 32)
    return false;
  for (char C : K)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Named configurations and the ladder
//===----------------------------------------------------------------------===//

TEST(ServiceConfigs, MirrorsTheOracleMatrix) {
  const std::vector<PipelineConfig> &Cfgs = serviceConfigs();
  ASSERT_EQ(Cfgs.size(), 6u);
  const char *Expected[] = {"O0",           "vpo-O",
                            "coalesce-loads", "coalesce-all",
                            "coalesce-all+companions", "coalesce-all-u4"};
  for (const char *Name : Expected) {
    const PipelineConfig *C = serviceConfigByName(Name);
    ASSERT_NE(C, nullptr) << Name;
    EXPECT_EQ(C->Name, Name);
  }
  EXPECT_EQ(serviceConfigByName("no-such-config"), nullptr);
}

TEST(Ladder, RungZeroPassesTheConfigThrough) {
  const CompileOptions &Req =
      serviceConfigByName("coalesce-all")->Options;
  CompileOptions CO = ladderOptions(Req, 0);
  EXPECT_EQ(CO.Mode, Req.Mode);
  EXPECT_EQ(CO.Unroll, Req.Unroll);
  EXPECT_EQ(CO.Schedule, Req.Schedule);
}

TEST(Ladder, RungOneDisablesCoalescingAndCompanions) {
  CompileOptions Req = serviceConfigByName("coalesce-all")->Options;
  Req.OptimizeRecurrences = true;
  Req.ScalarReplace = true;
  CompileOptions CO = ladderOptions(Req, 1);
  EXPECT_EQ(CO.Mode, CoalesceMode::None);
  EXPECT_FALSE(CO.OptimizeRecurrences);
  EXPECT_FALSE(CO.ScalarReplace);
  EXPECT_TRUE(CO.GuardRails) << "every rung keeps the guard rails";
}

TEST(Ladder, RungTwoIsTheReferencePipeline) {
  CompileOptions O0 = serviceConfigByName("O0")->Options;
  for (unsigned Rung = maxServiceRung; Rung <= maxServiceRung + 2; ++Rung) {
    CompileOptions CO =
        ladderOptions(serviceConfigByName("coalesce-all-u4")->Options, Rung);
    EXPECT_EQ(CO.Mode, O0.Mode) << "rung " << Rung;
    EXPECT_EQ(CO.Unroll, O0.Unroll) << "rung " << Rung;
    EXPECT_EQ(CO.Schedule, O0.Schedule) << "rung " << Rung;
    EXPECT_EQ(CO.Cleanup, O0.Cleanup) << "rung " << Rung;
    EXPECT_TRUE(CO.GuardRails) << "rung " << Rung;
  }
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

TEST(WorkerValidation, RejectsNonCompileOps) {
  ServiceRequest Req = compileReq();
  Req.Op = "status";
  ServiceResponse R = compileServiceRequest(Req, WorkerLimits());
  EXPECT_EQ(R.Status, ErrorCode::Unsupported);
}

TEST(WorkerValidation, UnknownConfigAndTargetAreStructuredErrors) {
  ServiceRequest Req = compileReq();
  Req.Config = "O9";
  ServiceResponse R = compileServiceRequest(Req, WorkerLimits());
  EXPECT_EQ(R.Status, ErrorCode::Unsupported);
  EXPECT_NE(R.Error.find("unknown config"), std::string::npos);

  Req = compileReq();
  Req.Target = "riscv";
  R = compileServiceRequest(Req, WorkerLimits());
  EXPECT_EQ(R.Status, ErrorCode::Unsupported);
  EXPECT_NE(R.Error.find("unknown target"), std::string::npos);
}

TEST(WorkerValidation, ParseErrorCarriesTheDiagnosticAndZeroKey) {
  ServiceRequest Req = compileReq("func @broken( {\n");
  ContentKey Canon;
  Canon.Hi = 1; // must be cleared even on failure
  ServiceResponse R = compileServiceRequest(Req, WorkerLimits(), &Canon);
  EXPECT_EQ(R.Status, ErrorCode::ParseError);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(Canon.isZero());
}

TEST(WorkerValidation, MalformedRunArgsAreRejected) {
  ServiceRequest Req = compileReq();
  Req.RunArgs = "4096,eight";
  ServiceResponse R = compileServiceRequest(Req, WorkerLimits());
  EXPECT_EQ(R.Status, ErrorCode::ParseError);
  EXPECT_NE(R.Error.find("run args"), std::string::npos);
}

TEST(WorkerValidation, FaultPlantsRefusedUnlessDaemonAllowsThem) {
  ServiceRequest Req = compileReq();
  Req.Fault = "crash";
  WorkerLimits Limits; // AllowFaultInjection defaults to false
  ServiceResponse R = compileServiceRequest(Req, Limits);
  EXPECT_EQ(R.Status, ErrorCode::Unsupported);
  EXPECT_NE(R.Error.find("fault"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Compiles and content keys
//===----------------------------------------------------------------------===//

TEST(WorkerCompile, CleanCompileReturnsFullPayload) {
  ContentKey Canon;
  ServiceResponse R =
      compileServiceRequest(compileReq(), WorkerLimits(), &Canon);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_EQ(R.Rung, 0u);
  EXPECT_TRUE(R.Degraded.empty());
  EXPECT_TRUE(R.Incidents.empty());
  EXPECT_FALSE(R.IR.empty());
  EXPECT_FALSE(R.Stats.empty());
  EXPECT_TRUE(isHexKey(R.Key)) << R.Key;
  EXPECT_EQ(R.Key, Canon.hex());
  // The optimized IR must itself be valid input (roundtrip property).
  std::vector<Diagnostic> Diags;
  EXPECT_NE(parseModule(R.IR, Diags), nullptr);
}

TEST(WorkerCompile, DeterministicByteIdenticalResults) {
  // The cached-vs-fresh guarantee reduces to this: two compiles of one
  // request produce identical result signatures, so a replayed cache
  // entry is indistinguishable from a fresh compile.
  ServiceRequest Req = compileReq();
  Req.RunArgs = "8192,16";
  ServiceResponse A = compileServiceRequest(Req, WorkerLimits());
  ServiceResponse B = compileServiceRequest(Req, WorkerLimits());
  ASSERT_EQ(A.Status, ErrorCode::Ok) << A.Error;
  EXPECT_EQ(A.resultSignature(), B.resultSignature());
}

TEST(WorkerCompile, WhitespaceVariantsShareTheCanonicalKey) {
  ContentKey K1, K2;
  compileServiceRequest(compileReq(), WorkerLimits(), &K1);
  std::string Variant = std::string("\n\n  ") + SumKernel + "\n   \n";
  ServiceResponse R =
      compileServiceRequest(compileReq(Variant.c_str()), WorkerLimits(), &K2);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_EQ(K1, K2) << "canonicalization must erase formatting";
  EXPECT_FALSE(K1.isZero());
}

TEST(WorkerCompile, ConfigTargetAndRunShapeTheKey) {
  auto KeyOf = [](ServiceRequest Req) {
    ContentKey K;
    EXPECT_EQ(compileServiceRequest(Req, WorkerLimits(), &K).Status,
              ErrorCode::Ok);
    return K;
  };
  ContentKey Base = KeyOf(compileReq());

  ServiceRequest Cfg = compileReq();
  Cfg.Config = "O0";
  EXPECT_FALSE(KeyOf(Cfg) == Base);

  ServiceRequest Tgt = compileReq();
  Tgt.Target = "m88100";
  EXPECT_FALSE(KeyOf(Tgt) == Base);

  ServiceRequest Run = compileReq();
  Run.RunArgs = "8192,4";
  EXPECT_FALSE(KeyOf(Run) == Base);
}

TEST(WorkerCompile, ServingFlagsDoNotChangeTheKey) {
  // WantIR/WantRemarks are filtered at serve time by the daemon; the
  // worker's result and key must not depend on them, or cache identity
  // would fracture by client preference.
  ServiceRequest A = compileReq();
  ServiceRequest B = compileReq();
  B.WantIR = false;
  B.WantRemarks = true;
  ContentKey KA, KB;
  ServiceResponse RA = compileServiceRequest(A, WorkerLimits(), &KA);
  ServiceResponse RB = compileServiceRequest(B, WorkerLimits(), &KB);
  EXPECT_EQ(KA, KB);
  EXPECT_EQ(RA.resultSignature(), RB.resultSignature());
}

//===----------------------------------------------------------------------===//
// Run mode
//===----------------------------------------------------------------------===//

TEST(WorkerRun, SimulationReportsResultAndCost) {
  ServiceRequest Req = compileReq();
  Req.RunArgs = "8192,8";
  ServiceResponse R = compileServiceRequest(Req, WorkerLimits());
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_TRUE(R.Ran);
  EXPECT_EQ(R.RunStatus, "ok");
  EXPECT_EQ(R.ReturnValue, 0) << "zero-filled arena sums to zero";
  EXPECT_GT(R.Instructions, 0u);
  // Run mode executes on the functional tiered engine: architectural
  // results are exact, but there is no cycle model to report.
  EXPECT_EQ(R.Cycles, 0u);
}

TEST(WorkerRun, OutOfBoundsIsACacheableTrapNotAnError) {
  ServiceRequest Req = compileReq();
  Req.RunArgs = "999999999,4"; // base far outside any arena
  ServiceResponse R = compileServiceRequest(Req, WorkerLimits());
  EXPECT_EQ(R.Status, ErrorCode::Ok)
      << "a trap is a deterministic property of (kernel, args, arena)";
  EXPECT_TRUE(R.Ran);
  EXPECT_EQ(R.RunStatus, "out-of-bounds");
}

TEST(WorkerRun, StepBudgetExhaustionIsResourceExhausted) {
  ServiceRequest Req = compileReq();
  Req.RunArgs = "8192,1000000"; // far more iterations than the budget
  WorkerLimits Limits;
  Limits.MaxInsts = 1000;
  ServiceResponse R = compileServiceRequest(Req, Limits);
  EXPECT_EQ(R.Status, ErrorCode::ResourceExhausted);
  EXPECT_TRUE(R.Ran);
  EXPECT_EQ(R.RunStatus, "step-limit");
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(WorkerRun, NativePromotionPolicyNeverChangesTheAnswer) {
  // Rung 2 and --no-jit daemons withhold native promotion (the tiered
  // engine stays on its portable interpreter tier); the architectural
  // outcome a client sees must not move. Instruction counts differ
  // across rungs (different pipelines), so only result fields compare.
  ServiceRequest Req = compileReq();
  Req.RunArgs = "8192,8";
  ServiceResponse R0 = compileServiceRequest(Req, WorkerLimits());
  ASSERT_EQ(R0.Status, ErrorCode::Ok) << R0.Error;

  ServiceRequest Degraded = Req;
  Degraded.Rung = maxServiceRung;
  ServiceResponse R2 = compileServiceRequest(Degraded, WorkerLimits());
  EXPECT_EQ(R2.RunStatus, R0.RunStatus);
  EXPECT_EQ(R2.ReturnValue, R0.ReturnValue);
  EXPECT_EQ(R2.Cycles, 0u);

  WorkerLimits NoJit;
  NoJit.JITNative = false;
  ServiceResponse RN = compileServiceRequest(Req, NoJit);
  EXPECT_EQ(RN.RunStatus, R0.RunStatus);
  EXPECT_EQ(RN.ReturnValue, R0.ReturnValue);
  EXPECT_EQ(RN.Instructions, R0.Instructions)
      << "same pipeline, same kernel: promotion is invisible";
}

//===----------------------------------------------------------------------===//
// Fault plants and the ladder, in-process
//===----------------------------------------------------------------------===//

WorkerLimits faultyLimits() {
  WorkerLimits L;
  L.AllowFaultInjection = true;
  return L;
}

TEST(WorkerFaults, CrashPlantIgnoresRungsAboveItsBound) {
  // "crash" defaults to max rung 0: a rung-1 attempt must survive it.
  // (That the plant really kills rung 0 is proven through the daemon in
  // daemon_test.cpp — in-process it would take the test binary with it.)
  ServiceRequest Req = compileReq();
  Req.Fault = "crash";
  Req.Rung = 1;
  ServiceResponse R = compileServiceRequest(Req, faultyLimits());
  EXPECT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_EQ(R.Rung, 1u);
}

TEST(WorkerFaults, EveryFaultKindIsCaughtByTheGuardRails) {
  std::string IR = workloadIR();
  const FaultKind Kinds[] = {FaultKind::WrongWidth, FaultKind::ClobberedBase,
                             FaultKind::DroppedCheck,
                             FaultKind::MissingOperand, FaultKind::EmptyBlock};
  for (FaultKind K : Kinds) {
    SCOPED_TRACE(faultKindName(K));
    ServiceRequest Req = compileReq(IR.c_str());
    Req.Fault = std::string("coalesce:") + faultKindName(K) + ":42";
    ServiceResponse R = compileServiceRequest(Req, faultyLimits());
    ASSERT_EQ(R.Status, ErrorCode::Ok)
        << "a corrupted optional pass must degrade, not fail: " << R.Error;
    EXPECT_NE(R.Incidents.find("pass=coalesce"), std::string::npos)
        << R.Incidents;
    EXPECT_NE(R.Incidents.find("rolled-back"), std::string::npos);
    EXPECT_NE(R.Incidents.find("disabled"), std::string::npos);
    // The rolled-back compile really did skip coalescing.
    EXPECT_NE(R.Stats.find("\"load-runs\":0"), std::string::npos) << R.Stats;
  }
}

TEST(WorkerFaults, LadderRungsSkipPlantsOnPassesTheyDisable) {
  // The companion-pass plant fires at rung 0 but is inert at rung 1,
  // which disables the recurrence pass outright — degraded attempts must
  // not re-trip the very machinery the ladder turned off.
  ServiceRequest Req = compileReq();
  Req.Config = "coalesce-all+companions";
  Req.Fault = "recurrence:wrong-width:42";
  ServiceResponse R0 = compileServiceRequest(Req, faultyLimits());
  ASSERT_EQ(R0.Status, ErrorCode::Ok) << R0.Error;
  EXPECT_NE(R0.Incidents.find("pass=recurrence"), std::string::npos)
      << R0.Incidents;

  Req.Rung = 1;
  ServiceResponse R1 = compileServiceRequest(Req, faultyLimits());
  ASSERT_EQ(R1.Status, ErrorCode::Ok) << R1.Error;
  EXPECT_TRUE(R1.Incidents.empty()) << R1.Incidents;
}

TEST(WorkerFaults, MalformedPlantSpecIsInert) {
  // An unknown plant string neither crashes nor corrupts: the compile
  // proceeds as if unplanted (only recognized specs bind hooks).
  ServiceRequest Req = compileReq();
  Req.Fault = "coalesce:not-a-kind:1";
  ServiceResponse R = compileServiceRequest(Req, faultyLimits());
  EXPECT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_TRUE(R.Incidents.empty());
}

//===----------------------------------------------------------------------===//
// Growth budget
//===----------------------------------------------------------------------===//

TEST(WorkerBudget, GrowthBudgetRollsBackTheExplodingPass) {
  // A budget far under the forced-4x unroll's output: the exploding
  // coalesce pass trips it and is rolled back as a resource incident;
  // the compile still finishes.
  std::unique_ptr<Workload> W = makeWorkloadByName("image_add");
  Module M;
  Function *F = W->build(M);
  ServiceRequest Req = compileReq(printFunction(*F).c_str());
  Req.Config = "coalesce-all-u4";
  WorkerLimits Limits;
  // Twice the kernel's size: enough headroom for legalization's modest
  // growth, nowhere near the unrolled explosion.
  Limits.MaxFunctionInsts = F->instructionCount() * 2;
  ServiceResponse R = compileServiceRequest(Req, Limits);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_NE(R.Incidents.find("pass=coalesce rolled-back"), std::string::npos)
      << R.Incidents;
  // With an unconstrained budget the same request keeps the transform.
  ServiceResponse Free = compileServiceRequest(Req, WorkerLimits());
  ASSERT_EQ(Free.Status, ErrorCode::Ok) << Free.Error;
  EXPECT_TRUE(Free.Incidents.empty()) << Free.Incidents;
  EXPECT_GT(Free.IR.size(), R.IR.size())
      << "the budgeted compile must be the smaller, un-exploded one";
}

} // namespace
