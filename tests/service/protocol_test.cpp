//===- tests/service/protocol_test.cpp -------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vpod wire protocol in isolation: frame encoding, the incremental
/// decoder's handling of split/concatenated/malformed input, the flat
/// JSON writer/parser roundtrip (including escapes), and the request and
/// response message mappings with their byte-stability guarantees
/// (resultSignature is what the cache-correctness suite diffs).
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define VPO_HAVE_PIPES 1
#endif

using namespace vpo;
using namespace vpo::service;

namespace {

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(Framing, AppendFrameFormat) {
  std::string Out;
  appendFrame(Out, "hello");
  EXPECT_EQ(Out, "5\nhello\n");
  appendFrame(Out, "");
  EXPECT_EQ(Out, "5\nhello\n0\n\n");
}

TEST(Framing, DecoderDrainsConcatenatedFrames) {
  std::string Wire;
  appendFrame(Wire, "one");
  appendFrame(Wire, "two");
  appendFrame(Wire, "three");

  FrameDecoder Dec;
  Dec.feed(Wire.data(), Wire.size());
  std::string P;
  ASSERT_EQ(Dec.next(P), FrameStatus::Ok);
  EXPECT_EQ(P, "one");
  ASSERT_EQ(Dec.next(P), FrameStatus::Ok);
  EXPECT_EQ(P, "two");
  ASSERT_EQ(Dec.next(P), FrameStatus::Ok);
  EXPECT_EQ(P, "three");
  EXPECT_EQ(Dec.next(P), FrameStatus::NeedMore);
  EXPECT_EQ(Dec.buffered(), 0u);
}

TEST(Framing, DecoderHandlesByteAtATimeDelivery) {
  std::string Wire;
  appendFrame(Wire, "payload with spaces");

  FrameDecoder Dec;
  std::string P;
  for (size_t I = 0; I + 1 < Wire.size(); ++I) {
    Dec.feed(&Wire[I], 1);
    EXPECT_EQ(Dec.next(P), FrameStatus::NeedMore) << "at byte " << I;
  }
  Dec.feed(&Wire[Wire.size() - 1], 1);
  ASSERT_EQ(Dec.next(P), FrameStatus::Ok);
  EXPECT_EQ(P, "payload with spaces");
}

TEST(Framing, DecoderPayloadMayContainNewlines) {
  std::string Payload = "line1\nline2\n\nline4";
  std::string Wire;
  appendFrame(Wire, Payload);

  FrameDecoder Dec;
  Dec.feed(Wire.data(), Wire.size());
  std::string P;
  ASSERT_EQ(Dec.next(P), FrameStatus::Ok);
  EXPECT_EQ(P, Payload);
}

TEST(Framing, DecoderRejectsNonNumericHeader) {
  FrameDecoder Dec;
  std::string Wire = "abc\npayload\n";
  Dec.feed(Wire.data(), Wire.size());
  std::string P;
  EXPECT_EQ(Dec.next(P), FrameStatus::Malformed);
}

TEST(Framing, DecoderRejectsOversizedFrameBeforeBuffering) {
  FrameDecoder Dec(/*MaxBytes=*/16);
  // Only the header arrives; the bound must trip without the payload.
  std::string Wire = "1048576\n";
  Dec.feed(Wire.data(), Wire.size());
  std::string P;
  EXPECT_EQ(Dec.next(P), FrameStatus::Malformed);
}

TEST(Framing, DecoderRejectsMissingTerminator) {
  FrameDecoder Dec;
  std::string Wire = "3\nabcX"; // terminator should be '\n'
  Dec.feed(Wire.data(), Wire.size());
  std::string P;
  EXPECT_EQ(Dec.next(P), FrameStatus::Malformed);
}

TEST(Framing, MalformedIsSticky) {
  FrameDecoder Dec;
  std::string Bad = "nope\n";
  Dec.feed(Bad.data(), Bad.size());
  std::string P;
  ASSERT_EQ(Dec.next(P), FrameStatus::Malformed);
  // Even a well-formed frame afterwards cannot resynchronize the stream.
  std::string Good;
  appendFrame(Good, "ok");
  Dec.feed(Good.data(), Good.size());
  EXPECT_EQ(Dec.next(P), FrameStatus::Malformed);
}

#ifdef VPO_HAVE_PIPES
TEST(Framing, BlockingReadWriteRoundtripOverPipe) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  ASSERT_TRUE(writeFrame(Fds[1], "across the pipe"));
  std::string P;
  ASSERT_EQ(readFrame(Fds[0], P), FrameStatus::Ok);
  EXPECT_EQ(P, "across the pipe");
  ::close(Fds[1]);
  EXPECT_EQ(readFrame(Fds[0], P), FrameStatus::Eof);
  ::close(Fds[0]);
}

TEST(Framing, BlockingReadEnforcesMaxBytes) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  ASSERT_TRUE(writeFrame(Fds[1], std::string(64, 'x')));
  std::string P;
  EXPECT_EQ(readFrame(Fds[0], P, /*MaxBytes=*/16), FrameStatus::Malformed);
  ::close(Fds[0]);
  ::close(Fds[1]);
}
#endif

//===----------------------------------------------------------------------===//
// Flat JSON
//===----------------------------------------------------------------------===//

TEST(FlatJson, WriterParserRoundtripWithEscapes) {
  JsonWriter W;
  W.str("plain", "value");
  W.str("quotes", "say \"hi\"");
  W.str("slashes", "a\\b\\c");
  W.str("newlines", "line1\nline2\ttabbed");
  W.str("control", std::string("nul\x01soh", 7));
  W.num("count", int64_t(-42));
  W.num("big", uint64_t(1) << 63);
  W.boolean("flag", true);
  std::string Text = W.finish();

  std::map<std::string, std::string> M;
  ASSERT_TRUE(parseFlatJson(Text, M)) << Text;
  EXPECT_EQ(M["plain"], "value");
  EXPECT_EQ(M["quotes"], "say \"hi\"");
  EXPECT_EQ(M["slashes"], "a\\b\\c");
  EXPECT_EQ(M["newlines"], "line1\nline2\ttabbed");
  EXPECT_EQ(M["control"], std::string("nul\x01soh", 7));
  EXPECT_EQ(M["count"], "-42");
  EXPECT_EQ(M["big"], "9223372036854775808");
  EXPECT_EQ(M["flag"], "true");
}

TEST(FlatJson, ParserRejectsNestedStructures) {
  std::map<std::string, std::string> M;
  EXPECT_FALSE(parseFlatJson("{\"a\":{\"b\":1}}", M));
  EXPECT_FALSE(parseFlatJson("{\"a\":[1,2]}", M));
  EXPECT_FALSE(parseFlatJson("not json", M));
  EXPECT_FALSE(parseFlatJson("{\"a\":\"unterminated}", M));
}

TEST(FlatJson, EqualContentSerializesByteIdentically) {
  auto Render = [] {
    JsonWriter W;
    W.str("ir", "func @f() {\nentry:\n  ret\n}");
    W.num("n", uint64_t(7));
    return W.finish();
  };
  EXPECT_EQ(Render(), Render());
}

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

TEST(Messages, RequestRoundtrip) {
  ServiceRequest Req;
  Req.Op = "compile";
  Req.Id = "req-17";
  Req.IR = "func @k(r1) {\nentry:\n  ret r1\n}\n";
  Req.Config = "coalesce-all-u4";
  Req.Target = "m88100";
  Req.WantRemarks = true;
  Req.WantIR = false;
  Req.DeadlineMs = 1234;
  Req.RunArgs = "4096,-8,16";
  Req.ArenaKB = 256;
  Req.Fault = "coalesce:wrong-width:9";
  Req.Rung = 2;

  std::optional<ServiceRequest> Back = ServiceRequest::fromJson(Req.toJson());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Op, Req.Op);
  EXPECT_EQ(Back->Id, Req.Id);
  EXPECT_EQ(Back->IR, Req.IR);
  EXPECT_EQ(Back->Config, Req.Config);
  EXPECT_EQ(Back->Target, Req.Target);
  EXPECT_EQ(Back->WantRemarks, Req.WantRemarks);
  EXPECT_EQ(Back->WantIR, Req.WantIR);
  EXPECT_EQ(Back->DeadlineMs, Req.DeadlineMs);
  EXPECT_EQ(Back->RunArgs, Req.RunArgs);
  EXPECT_EQ(Back->ArenaKB, Req.ArenaKB);
  EXPECT_EQ(Back->Fault, Req.Fault);
  EXPECT_EQ(Back->Rung, Req.Rung);
}

TEST(Messages, ResponseRoundtrip) {
  ServiceResponse Resp;
  Resp.Id = "req-17";
  Resp.Status = ErrorCode::DeadlineExceeded;
  Resp.Error = "worker killed after 250 ms";
  Resp.Rung = 2;
  Resp.Degraded = "worker-deadline";
  Resp.Incidents = "pass=coalesce rolled-back disabled";
  Resp.IR = "func @k() {\nentry:\n  ret\n}\n";
  Resp.Stats = "{\"load-runs\":3}";
  Resp.Remarks = "{\"pass\":\"coalesce\"}\n";
  Resp.Cached = true;
  Resp.Key = "00000000000000010000000000000002";
  Resp.Ran = true;
  Resp.RunStatus = "out-of-bounds";
  Resp.ReturnValue = -5;
  Resp.Cycles = 99;
  Resp.Instructions = 42;

  std::optional<ServiceResponse> Back =
      ServiceResponse::fromJson(Resp.toJson());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Id, Resp.Id);
  EXPECT_EQ(Back->Status, Resp.Status);
  EXPECT_EQ(Back->Error, Resp.Error);
  EXPECT_EQ(Back->Rung, Resp.Rung);
  EXPECT_EQ(Back->Degraded, Resp.Degraded);
  EXPECT_EQ(Back->Incidents, Resp.Incidents);
  EXPECT_EQ(Back->IR, Resp.IR);
  EXPECT_EQ(Back->Stats, Resp.Stats);
  EXPECT_EQ(Back->Remarks, Resp.Remarks);
  EXPECT_EQ(Back->Cached, Resp.Cached);
  EXPECT_EQ(Back->Key, Resp.Key);
  EXPECT_EQ(Back->Ran, Resp.Ran);
  EXPECT_EQ(Back->RunStatus, Resp.RunStatus);
  EXPECT_EQ(Back->ReturnValue, Resp.ReturnValue);
  EXPECT_EQ(Back->Cycles, Resp.Cycles);
  EXPECT_EQ(Back->Instructions, Resp.Instructions);
}

TEST(Messages, RequestDefaultsSurviveMinimalJson) {
  std::optional<ServiceRequest> Req =
      ServiceRequest::fromJson("{\"op\":\"ping\"}");
  ASSERT_TRUE(Req.has_value());
  EXPECT_EQ(Req->Op, "ping");
  EXPECT_EQ(Req->Config, "coalesce-all");
  EXPECT_EQ(Req->Target, "alpha");
  EXPECT_TRUE(Req->WantIR);
  EXPECT_FALSE(Req->WantRemarks);
  EXPECT_EQ(Req->Rung, 0u);
}

TEST(Messages, ResultSignatureIgnoresServingMetadata) {
  ServiceResponse A;
  A.Id = "a";
  A.IR = "func @f...";
  A.Key = "k";
  ServiceResponse B = A;
  B.Id = "totally-different";
  B.Cached = true;
  EXPECT_EQ(A.resultSignature(), B.resultSignature());
}

TEST(Messages, ResultSignatureCoversResultFields) {
  ServiceResponse Base;
  Base.IR = "ir";
  Base.Stats = "{}";
  Base.Key = "k";

  ServiceResponse DifferentIR = Base;
  DifferentIR.IR = "other";
  EXPECT_NE(Base.resultSignature(), DifferentIR.resultSignature());

  ServiceResponse DifferentKey = Base;
  DifferentKey.Key = "k2";
  EXPECT_NE(Base.resultSignature(), DifferentKey.resultSignature());

  ServiceResponse DifferentRun = Base;
  DifferentRun.Ran = true;
  DifferentRun.RunStatus = "ok";
  DifferentRun.ReturnValue = 3;
  EXPECT_NE(Base.resultSignature(), DifferentRun.resultSignature());

  ServiceResponse DifferentRung = Base;
  DifferentRung.Rung = 1;
  DifferentRung.Degraded = "worker-crash";
  EXPECT_NE(Base.resultSignature(), DifferentRung.resultSignature());
}

} // namespace
