//===- tests/service/daemon_test.cpp ---------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end daemon tests: fork a real vpod (worker pool and all),
/// drive it over its Unix socket with ServiceClient, and prove the
/// robustness ladder — crash containment, deadline kills, rung-by-rung
/// degradation, structured exhaustion, load shedding, byte-identical
/// cache hits — without ever losing the daemon itself. Every planted
/// worker death in here is a real SIGKILL/SIGTRAP of a real process.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Daemon.h"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <csignal>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

using namespace vpo;
using namespace vpo::service;

namespace {

const char *SumKernel = R"(func @sum(r1, r2) {
entry:
  r3 = mov 0
  r4 = mov 0
  jmp head
head:
  br.lts r4, r2, body, exit
body:
  r5 = load.i16.s [r1]
  r3 = add r3, r5
  r1 = add r1, 2
  r4 = add r4, 1
  jmp head
exit:
  ret r3
}
)";

/// Forks a private daemon with fault injection enabled; tears it down
/// (shutdown op if still reachable, SIGKILL otherwise) on destruction.
class DaemonHarness {
public:
  explicit DaemonHarness(DaemonOptions Opts = DaemonOptions()) {
    static int Counter = 0;
    Socket = "/tmp/vpod_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(++Counter) + ".sock";
    ::unlink(Socket.c_str());
    Opts.SocketPath = Socket;
    Opts.Limits.AllowFaultInjection = true;
    Pid = ::fork();
    if (Pid == 0) {
      Daemon D(Opts);
      if (!D.start())
        ::_exit(1);
      D.run();
      ::_exit(0);
    }
  }

  ~DaemonHarness() {
    if (Pid <= 0)
      return;
    if (alive()) {
      ServiceClient C;
      if (C.connectTo(Socket)) {
        ServiceRequest Req;
        Req.Op = "shutdown";
        (void)C.call(Req);
      }
    }
    for (int I = 0; I < 100 && alive(); ++I)
      ::usleep(20'000);
    if (alive()) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
      Pid = -1;
    }
    ::unlink(Socket.c_str());
  }

  /// \returns true while the daemon process has not exited.
  bool alive() {
    if (Pid <= 0)
      return false;
    int WStatus = 0;
    pid_t Got = ::waitpid(Pid, &WStatus, WNOHANG);
    if (Got == Pid) {
      Pid = -1;
      return false;
    }
    return true;
  }

  /// Connects with retry (the child needs a moment to bind).
  bool connect(ServiceClient &C) {
    for (int I = 0; I < 100; ++I) {
      if (C.connectTo(Socket))
        return true;
      ::usleep(50'000);
    }
    return false;
  }

  const std::string &socket() const { return Socket; }

private:
  std::string Socket;
  pid_t Pid = -1;
};

ServiceRequest compileReq(const std::string &Id) {
  ServiceRequest Req;
  Req.Id = Id;
  Req.IR = SumKernel;
  Req.Config = "coalesce-all";
  Req.WantRemarks = true;
  return Req;
}

ServiceResponse mustCall(ServiceClient &C, const ServiceRequest &Req) {
  StatusOr<ServiceResponse> R = C.call(Req);
  EXPECT_TRUE(R.isOk()) << R.status().message();
  return R.isOk() ? *R : ServiceResponse();
}

std::string extra(const ServiceResponse &R, const std::string &Key) {
  for (const auto &KV : R.Extra)
    if (KV.first == Key)
      return KV.second;
  return "<missing " + Key + ">";
}

//===----------------------------------------------------------------------===//
// Basic serving
//===----------------------------------------------------------------------===//

TEST(DaemonService, PingStatusAndUnknownOp) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Ping;
  Ping.Op = "ping";
  Ping.Id = "p";
  ServiceResponse R = mustCall(C, Ping);
  EXPECT_EQ(R.Status, ErrorCode::Ok);
  EXPECT_EQ(R.Id, "p");

  ServiceRequest St;
  St.Op = "status";
  R = mustCall(C, St);
  EXPECT_EQ(R.Status, ErrorCode::Ok);
  EXPECT_EQ(extra(R, "workers"), "4");
  EXPECT_EQ(extra(R, "requests"), "0");
  EXPECT_EQ(extra(R, "cache_entries"), "0");

  ServiceRequest Bad;
  Bad.Op = "frobnicate";
  R = mustCall(C, Bad);
  EXPECT_EQ(R.Status, ErrorCode::Unsupported);
}

TEST(DaemonService, CompileRoundtrip) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("c1");
  Req.RunArgs = "8192,8";
  ServiceResponse R = mustCall(C, Req);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_EQ(R.Id, "c1");
  EXPECT_EQ(R.Rung, 0u);
  EXPECT_FALSE(R.Cached);
  EXPECT_FALSE(R.IR.empty());
  EXPECT_EQ(R.Key.size(), 32u);
  EXPECT_TRUE(R.Ran);
  EXPECT_EQ(R.RunStatus, "ok");
  EXPECT_EQ(R.ReturnValue, 0);
}

TEST(DaemonService, ParseErrorsAreContainedAndStructured) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("bad");
  Req.IR = "this is not RTL at all {{{";
  ServiceResponse R = mustCall(C, Req);
  EXPECT_EQ(R.Status, ErrorCode::ParseError);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(H.alive());
  // The daemon and its worker shrug it off: the next request is clean.
  R = mustCall(C, compileReq("after"));
  EXPECT_EQ(R.Status, ErrorCode::Ok) << R.Error;
}

//===----------------------------------------------------------------------===//
// Content cache through the daemon
//===----------------------------------------------------------------------===//

TEST(DaemonCache, RepeatIsAByteIdenticalHit) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("cold");
  Req.RunArgs = "8192,8";
  ServiceResponse Cold = mustCall(C, Req);
  ASSERT_EQ(Cold.Status, ErrorCode::Ok) << Cold.Error;
  ASSERT_FALSE(Cold.Cached);

  Req.Id = "warm";
  ServiceResponse Warm = mustCall(C, Req);
  ASSERT_EQ(Warm.Status, ErrorCode::Ok) << Warm.Error;
  EXPECT_TRUE(Warm.Cached);
  EXPECT_EQ(Warm.resultSignature(), Cold.resultSignature())
      << "a cache hit must replay the fresh result byte for byte";

  ServiceRequest St;
  St.Op = "status";
  ServiceResponse R = mustCall(C, St);
  EXPECT_EQ(extra(R, "cache_hits"), "1");
  EXPECT_EQ(extra(R, "cache_entries"), "1");
}

TEST(DaemonCache, WhitespaceVariantSharesTheEntry) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceResponse Canon = mustCall(C, compileReq("canon"));
  ASSERT_EQ(Canon.Status, ErrorCode::Ok) << Canon.Error;

  // Different raw bytes, same kernel: one worker round canonicalizes it
  // to the same key, and from then on it hits the cache directly.
  ServiceRequest Variant = compileReq("variant");
  Variant.IR = std::string("\n  ") + SumKernel + "\n\t\n";
  ServiceResponse First = mustCall(C, Variant);
  ASSERT_EQ(First.Status, ErrorCode::Ok) << First.Error;
  EXPECT_EQ(First.Key, Canon.Key);
  EXPECT_EQ(First.resultSignature(), Canon.resultSignature());

  Variant.Id = "variant-again";
  ServiceResponse Second = mustCall(C, Variant);
  EXPECT_TRUE(Second.Cached);
  EXPECT_EQ(Second.resultSignature(), Canon.resultSignature());
}

TEST(DaemonCache, ServingFlagsFilterWithoutForkingIdentity) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceResponse Full = mustCall(C, compileReq("full"));
  ASSERT_EQ(Full.Status, ErrorCode::Ok) << Full.Error;
  EXPECT_FALSE(Full.IR.empty());

  ServiceRequest Slim = compileReq("slim");
  Slim.WantIR = false;
  Slim.WantRemarks = false;
  ServiceResponse R = mustCall(C, Slim);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_TRUE(R.Cached) << "preference flags must not change cache identity";
  EXPECT_TRUE(R.IR.empty());
  EXPECT_TRUE(R.Remarks.empty());
  EXPECT_EQ(R.Key, Full.Key);
}

//===----------------------------------------------------------------------===//
// The degradation ladder, with real worker deaths
//===----------------------------------------------------------------------===//

TEST(DaemonLadder, WorkerCrashDegradesToRungOne) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("crash");
  Req.Fault = "crash"; // kills the rung-0 worker, survives rung 1
  ServiceResponse R = mustCall(C, Req);
  ASSERT_EQ(R.Status, ErrorCode::Ok)
      << "a worker crash costs optimization, not availability: " << R.Error;
  EXPECT_EQ(R.Rung, 1u);
  EXPECT_EQ(R.Degraded, "worker-crash");
  EXPECT_FALSE(R.IR.empty());
  EXPECT_TRUE(H.alive());

  ServiceRequest St;
  St.Op = "status";
  ServiceResponse S = mustCall(C, St);
  EXPECT_EQ(extra(S, "worker_crashes"), "1");
  EXPECT_EQ(extra(S, "served_degraded"), "1");
  EXPECT_EQ(extra(S, "respawns"), "1");
}

TEST(DaemonLadder, HungWorkerIsKilledAtTheDeadline) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("hang");
  Req.Fault = "hang";
  Req.DeadlineMs = 250;
  ServiceResponse R = mustCall(C, Req);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_EQ(R.Rung, 1u);
  EXPECT_EQ(R.Degraded, "worker-deadline");
  EXPECT_TRUE(H.alive());

  ServiceRequest St;
  St.Op = "status";
  ServiceResponse S = mustCall(C, St);
  EXPECT_EQ(extra(S, "worker_deadlines"), "1");
}

TEST(DaemonLadder, RungTwoIsTheLastResortThatWorks) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("c1");
  Req.Fault = "crash:1"; // kills rungs 0 and 1; only O0 survives
  ServiceResponse R = mustCall(C, Req);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  EXPECT_EQ(R.Rung, 2u);
  EXPECT_EQ(R.Degraded, "worker-crash");
  EXPECT_FALSE(R.IR.empty());
  EXPECT_TRUE(H.alive());
}

TEST(DaemonLadder, ExhaustionIsAStructuredErrorNotAnOutage) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("doomed");
  Req.Fault = "crash:2"; // dies at every rung, reference included
  ServiceResponse R = mustCall(C, Req);
  EXPECT_EQ(R.Status, ErrorCode::Internal);
  EXPECT_EQ(R.Rung, 2u);
  EXPECT_EQ(R.Degraded, "worker-crash");
  EXPECT_NE(R.Error.find("ladder exhausted"), std::string::npos) << R.Error;

  // The point of the exercise: the daemon survived three worker deaths
  // for one request and keeps serving everyone else.
  EXPECT_TRUE(H.alive());
  ServiceResponse After = mustCall(C, compileReq("after"));
  EXPECT_EQ(After.Status, ErrorCode::Ok) << After.Error;
  EXPECT_EQ(After.Rung, 0u);

  ServiceRequest St;
  St.Op = "status";
  ServiceResponse S = mustCall(C, St);
  EXPECT_EQ(extra(S, "exhausted"), "1");
}

TEST(DaemonLadder, DeadlineExhaustionReportsDeadlineExceeded) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("doomed");
  Req.Fault = "hang:2";
  Req.DeadlineMs = 200;
  ServiceResponse R = mustCall(C, Req);
  EXPECT_EQ(R.Status, ErrorCode::DeadlineExceeded);
  EXPECT_EQ(R.Degraded, "worker-deadline");
  EXPECT_TRUE(H.alive());
}

TEST(DaemonLadder, DegradedResultsAreNotCached) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req = compileReq("crash");
  Req.Fault = "crash";
  ServiceResponse R = mustCall(C, Req);
  ASSERT_EQ(R.Status, ErrorCode::Ok) << R.Error;
  ASSERT_EQ(R.Rung, 1u);

  // The same kernel without the plant must be compiled fresh at rung 0,
  // not served the degraded rung-1 result.
  ServiceResponse Clean = mustCall(C, compileReq("clean"));
  ASSERT_EQ(Clean.Status, ErrorCode::Ok) << Clean.Error;
  EXPECT_FALSE(Clean.Cached);
  EXPECT_EQ(Clean.Rung, 0u);
}

//===----------------------------------------------------------------------===//
// Pipelining
//===----------------------------------------------------------------------===//

TEST(DaemonPipeline, ResponsesComeBackInRequestOrder) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  // Distinct kernels shard onto different workers, so completion order
  // is a race — but the ticketed response path must put answers back on
  // the wire in request order, which is what lets a batch client
  // pipeline without correlating by id. The trailing ping is answered
  // instantly by the event loop yet must still arrive last.
  const int N = 12;
  for (int I = 0; I < N; ++I) {
    ServiceRequest Req = compileReq("p-" + std::to_string(I));
    size_t At = Req.IR.find("@sum");
    ASSERT_NE(At, std::string::npos);
    Req.IR.replace(At, 4, "@k" + std::to_string(I));
    ASSERT_TRUE(C.send(Req).isOk());
  }
  ServiceRequest Ping;
  Ping.Op = "ping";
  Ping.Id = "after";
  ASSERT_TRUE(C.send(Ping).isOk());

  for (int I = 0; I < N; ++I) {
    StatusOr<ServiceResponse> R = C.receive();
    ASSERT_TRUE(R.isOk()) << R.status().message();
    EXPECT_EQ(R->Id, "p-" + std::to_string(I));
    EXPECT_EQ(R->Status, ErrorCode::Ok) << R->Error;
  }
  StatusOr<ServiceResponse> Last = C.receive();
  ASSERT_TRUE(Last.isOk()) << Last.status().message();
  EXPECT_EQ(Last->Id, "after");
}

//===----------------------------------------------------------------------===//
// Load shedding
//===----------------------------------------------------------------------===//

TEST(DaemonOverload, FullQueueShedsInsteadOfQueueingForever) {
  DaemonOptions Opts;
  Opts.Workers = 1;
  Opts.QueueDepth = 1;
  DaemonHarness H(Opts);
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  // Occupy the only worker for a while, then pile on.
  ServiceRequest Hog = compileReq("hog");
  Hog.Fault = "hang";
  Hog.DeadlineMs = 400;
  ASSERT_TRUE(C.send(Hog).isOk());
  for (int I = 0; I < 5; ++I)
    ASSERT_TRUE(C.send(compileReq("pile-" + std::to_string(I))).isOk());

  size_t Shed = 0, Served = 0;
  bool HogServed = false;
  for (int I = 0; I < 6; ++I) {
    StatusOr<ServiceResponse> R = C.receive();
    ASSERT_TRUE(R.isOk()) << R.status().message();
    if (R->Id == "hog") {
      EXPECT_EQ(R->Status, ErrorCode::Ok) << R->Error;
      HogServed = true;
    } else if (R->Status == ErrorCode::Overloaded) {
      ++Shed;
      EXPECT_NE(R->Error.find("queue full"), std::string::npos);
    } else {
      EXPECT_EQ(R->Status, ErrorCode::Ok) << R->Error;
      ++Served;
    }
  }
  EXPECT_TRUE(HogServed) << "the in-flight request still completes";
  EXPECT_GE(Shed, 3u) << "a bounded queue must shed, not buffer, overload";
  EXPECT_TRUE(H.alive());

  // Shedding is immediate rejection, not failure: a retry succeeds.
  ServiceResponse Retry = mustCall(C, compileReq("retry"));
  EXPECT_EQ(Retry.Status, ErrorCode::Ok) << Retry.Error;
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

TEST(DaemonShutdown, ShutdownOpStopsTheDaemonCleanly) {
  DaemonHarness H;
  ServiceClient C;
  ASSERT_TRUE(H.connect(C));

  ServiceRequest Req;
  Req.Op = "shutdown";
  Req.Id = "bye";
  ServiceResponse R = mustCall(C, Req);
  EXPECT_EQ(R.Status, ErrorCode::Ok);

  for (int I = 0; I < 100 && H.alive(); ++I)
    ::usleep(20'000);
  EXPECT_FALSE(H.alive()) << "shutdown op must stop the daemon";
  // The socket is unlinked on the way out: reconnecting fails fast.
  ServiceClient C2;
  EXPECT_FALSE(C2.connectTo(H.socket()).isOk());
}

} // namespace

#endif // __unix__ || __APPLE__
