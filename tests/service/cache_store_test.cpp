//===- tests/service/cache_store_test.cpp - Journal crash safety ---------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The cache journal's whole contract is "kill -9 at any byte yields the
// old value or a clean miss, never a corrupt serve". These tests walk
// that contract directly: round-trip recovery, torn-tail truncation at
// EVERY byte boundary, single-bit corruption, and compaction identity.
//
//===----------------------------------------------------------------------===//

#include "service/CacheStore.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace vpo;
using namespace vpo::service;

namespace {

std::string tempPath(const char *Tag) {
  std::ostringstream OS;
  OS << "cache_store_" << Tag << "_" << ::getpid() << ".vpj";
  return OS.str();
}

CachedResult makeResult(int N) {
  CachedResult R;
  R.Status = ErrorCode::Ok;
  R.Key = ContentKey{uint64_t(N) * 7919, uint64_t(N) * 104729}.hex();
  R.IR = "function f" + std::to_string(N) + "(%a) { ret %a }";
  R.Stats = "{\"runs\": " + std::to_string(N) + "}";
  R.Remarks = "{\"pass\":\"coalesce\",\"n\":" + std::to_string(N) + "}";
  R.Incidents = N % 3 == 0 ? "pass=coalesce rolled-back" : "";
  R.Ran = N % 2 == 0;
  R.RunStatus = R.Ran ? "ok" : "";
  R.ReturnValue = -N * 17;
  R.Cycles = 0;
  R.Instructions = uint64_t(N) * 1000;
  return R;
}

ContentKey keyFor(int N) {
  return ContentKey{0x1000 + uint64_t(N), 0x2000 + uint64_t(N) * 3};
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

void dump(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), std::streamsize(Bytes.size()));
}

/// Scoped temp file that cleans up on destruction.
struct TempJournal {
  std::string Path;
  explicit TempJournal(const char *Tag) : Path(tempPath(Tag)) {
    ::unlink(Path.c_str());
  }
  ~TempJournal() {
    ::unlink(Path.c_str());
    ::unlink((Path + ".tmp").c_str());
  }
};

bool sameResult(const CachedResult &A, const CachedResult &B) {
  return A.Status == B.Status && A.Key == B.Key && A.IR == B.IR &&
         A.Stats == B.Stats && A.Remarks == B.Remarks &&
         A.Incidents == B.Incidents && A.Ran == B.Ran &&
         A.RunStatus == B.RunStatus && A.ReturnValue == B.ReturnValue &&
         A.Cycles == B.Cycles && A.Instructions == B.Instructions;
}

TEST(CacheStore, RoundTripRecovery) {
  TempJournal J("roundtrip");
  {
    ContentCache Cache(64);
    CacheStore Store;
    CacheRecoveryStats St;
    std::string Err;
    ASSERT_TRUE(Store.open(J.Path, Cache, St, Err)) << Err;
    EXPECT_EQ(St.RecoveredEntries, 0u);
    for (int N = 0; N < 8; ++N) {
      Store.noteInsert(keyFor(N), makeResult(N));
      Cache.insert(keyFor(N), makeResult(N));
    }
    Store.noteAlias(ContentKey{9, 9}, keyFor(3));
    Cache.alias(ContentKey{9, 9}, keyFor(3));
    Store.close();
  }
  // Fresh process: replay.
  ContentCache Cache(64);
  CacheStore Store;
  CacheRecoveryStats St;
  std::string Err;
  ASSERT_TRUE(Store.open(J.Path, Cache, St, Err)) << Err;
  EXPECT_EQ(St.RecoveredEntries, 8u);
  EXPECT_EQ(St.RecoveredAliases, 1u);
  EXPECT_EQ(St.DiscardedRecords, 0u);
  EXPECT_FALSE(St.TornTail);
  for (int N = 0; N < 8; ++N) {
    const CachedResult *R = Cache.lookup(keyFor(N));
    ASSERT_NE(R, nullptr) << "entry " << N;
    EXPECT_TRUE(sameResult(*R, makeResult(N))) << "entry " << N;
  }
  // The alias resolves to the canonical entry.
  const CachedResult *A = Cache.lookupRaw(ContentKey{9, 9});
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(sameResult(*A, makeResult(3)));
}

TEST(CacheStore, TornTailTruncationAtEveryBoundary) {
  TempJournal J("torn");
  // Build a clean 3-record journal once, in memory.
  {
    ContentCache Cache(64);
    CacheStore Store;
    CacheRecoveryStats St;
    std::string Err;
    ASSERT_TRUE(Store.open(J.Path, Cache, St, Err)) << Err;
    for (int N = 0; N < 3; ++N)
      Store.noteInsert(keyFor(N), makeResult(N));
    Store.close();
  }
  const std::string Full = slurp(J.Path);
  ASSERT_GT(Full.size(), 48u);

  // Record boundaries, for computing how many entries each prefix holds.
  std::vector<size_t> Ends;
  for (int N = 0; N < 3; ++N) {
    std::string Rec = CacheStore::encodeRecord(
        CacheStore::encodeInsertPayload(keyFor(N), makeResult(N)));
    Ends.push_back((Ends.empty() ? 0 : Ends.back()) + Rec.size());
  }
  ASSERT_EQ(Ends.back(), Full.size());

  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    dump(J.Path, Full.substr(0, Cut));
    ContentCache Cache(64);
    CacheStore Store;
    CacheRecoveryStats St;
    std::string Err;
    ASSERT_TRUE(Store.open(J.Path, Cache, St, Err))
        << Err << " at cut " << Cut;
    size_t ExpectEntries = 0;
    while (ExpectEntries < Ends.size() && Ends[ExpectEntries] <= Cut)
      ++ExpectEntries;
    EXPECT_EQ(St.RecoveredEntries, ExpectEntries) << "cut " << Cut;
    // A cut mid-record is a torn tail; a cut exactly on a boundary is a
    // clean (shorter) journal.
    bool OnBoundary = Cut == 0;
    for (size_t E : Ends)
      OnBoundary = OnBoundary || E == Cut;
    EXPECT_EQ(St.TornTail, !OnBoundary) << "cut " << Cut;
    EXPECT_EQ(St.DiscardedRecords, 0u) << "cut " << Cut;
    // Every surviving entry must be byte-exact; later entries are clean
    // misses, never garbage.
    for (size_t N = 0; N < 3; ++N) {
      const CachedResult *R = Cache.lookup(keyFor(int(N)));
      if (N < ExpectEntries) {
        ASSERT_NE(R, nullptr) << "cut " << Cut << " entry " << N;
        EXPECT_TRUE(sameResult(*R, makeResult(int(N))));
      } else {
        EXPECT_EQ(R, nullptr) << "cut " << Cut << " entry " << N;
      }
    }
    Store.close();
    // The torn tail was truncated in place: reopening is now clean.
    ContentCache Cache2(64);
    CacheStore Store2;
    CacheRecoveryStats St2;
    ASSERT_TRUE(Store2.open(J.Path, Cache2, St2, Err));
    EXPECT_FALSE(St2.TornTail) << "cut " << Cut;
    EXPECT_EQ(St2.RecoveredEntries, ExpectEntries) << "cut " << Cut;
  }
}

TEST(CacheStore, SingleBitCorruptionDiscardsOneRecord) {
  TempJournal J("bitflip");
  {
    ContentCache Cache(64);
    CacheStore Store;
    CacheRecoveryStats St;
    std::string Err;
    ASSERT_TRUE(Store.open(J.Path, Cache, St, Err)) << Err;
    for (int N = 0; N < 3; ++N)
      Store.noteInsert(keyFor(N), makeResult(N));
    Store.close();
  }
  const std::string Full = slurp(J.Path);
  std::string Rec0 = CacheStore::encodeRecord(
      CacheStore::encodeInsertPayload(keyFor(0), makeResult(0)));
  std::string Rec1 = CacheStore::encodeRecord(
      CacheStore::encodeInsertPayload(keyFor(1), makeResult(1)));

  // Flip one bit in the middle of record 1's payload.
  std::string Bad = Full;
  size_t FlipAt = Rec0.size() + 16 + Rec1.size() / 2;
  Bad[FlipAt] = char(Bad[FlipAt] ^ 0x10);
  dump(J.Path, Bad);

  ContentCache Cache(64);
  CacheStore Store;
  CacheRecoveryStats St;
  std::string Err;
  ASSERT_TRUE(Store.open(J.Path, Cache, St, Err)) << Err;
  // Record 1 is discarded; records 0 and 2 survive intact.
  EXPECT_GE(St.DiscardedRecords, 1u);
  EXPECT_EQ(St.RecoveredEntries, 2u);
  const CachedResult *R0 = Cache.lookup(keyFor(0));
  ASSERT_NE(R0, nullptr);
  EXPECT_TRUE(sameResult(*R0, makeResult(0)));
  EXPECT_EQ(Cache.lookup(keyFor(1)), nullptr); // clean miss, not garbage
  const CachedResult *R2 = Cache.lookup(keyFor(2));
  ASSERT_NE(R2, nullptr);
  EXPECT_TRUE(sameResult(*R2, makeResult(2)));
}

TEST(CacheStore, CompactionPreservesContentsAndDropsGarbage) {
  TempJournal J("compact");
  ContentCache Cache(4); // small bound: churn creates evictions
  CacheStore Store;
  Store.Opts.CompactMinBytes = 1; // always eligible
  CacheRecoveryStats St;
  std::string Err;
  ASSERT_TRUE(Store.open(J.Path, Cache, St, Err)) << Err;

  // 12 inserts into a 4-entry cache: 8 evictions' worth of garbage.
  for (int N = 0; N < 12; ++N) {
    Store.noteInsert(keyFor(N), makeResult(N));
    Cache.insert(keyFor(N), makeResult(N));
  }
  Store.noteAlias(ContentKey{7, 7}, keyFor(11));
  Cache.alias(ContentKey{7, 7}, keyFor(11));
  uint64_t Before = Store.journalBytes();
  EXPECT_GT(Store.garbageBytes(), 0u);

  ASSERT_TRUE(Store.maybeCompact(Cache));
  EXPECT_EQ(Store.compactions(), 1u);
  EXPECT_LT(Store.journalBytes(), Before);
  EXPECT_EQ(Store.garbageBytes(), 0u);

  // Appends after compaction land in the new journal.
  Store.noteInsert(keyFor(12), makeResult(12));
  Cache.insert(keyFor(12), makeResult(12));
  Store.close();

  // Replay: live entries (9,10,11,12 after the last eviction), the
  // alias, and byte-exact payloads.
  ContentCache Cache2(4);
  CacheStore Store2;
  CacheRecoveryStats St2;
  ASSERT_TRUE(Store2.open(J.Path, Cache2, St2, Err)) << Err;
  EXPECT_EQ(St2.RecoveredEntries, 5u); // 4 compacted + 1 appended
  EXPECT_EQ(St2.DiscardedRecords, 0u);
  EXPECT_EQ(Cache2.size(), 4u); // the 5th replayed insert evicts one
  for (int N = 10; N <= 12; ++N) {
    const CachedResult *R = Cache2.lookup(keyFor(N));
    ASSERT_NE(R, nullptr) << "entry " << N;
    EXPECT_TRUE(sameResult(*R, makeResult(N)));
  }
  const CachedResult *A = Cache2.lookupRaw(ContentKey{7, 7});
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(sameResult(*A, makeResult(11)));

  // Compacting the replayed cache writes a byte-identical live set:
  // compaction is idempotent over a compacted journal.
  ASSERT_TRUE(Store2.compact(Cache2));
  Store2.close();
  std::string Once = slurp(J.Path);
  ContentCache Cache3(4);
  CacheStore Store3;
  CacheRecoveryStats St3;
  ASSERT_TRUE(Store3.open(J.Path, Cache3, St3, Err)) << Err;
  ASSERT_TRUE(Store3.compact(Cache3));
  Store3.close();
  EXPECT_EQ(slurp(J.Path), Once);
}

TEST(CacheStore, RefreshAccountsGarbageAndEvictHookFires) {
  TempJournal J("refresh");
  ContentCache Cache(2);
  CacheStore Store;
  CacheRecoveryStats St;
  std::string Err;
  ASSERT_TRUE(Store.open(J.Path, Cache, St, Err)) << Err;

  Store.noteInsert(keyFor(0), makeResult(0));
  Cache.insert(keyFor(0), makeResult(0));
  EXPECT_EQ(Store.garbageBytes(), 0u);

  // Refreshing the same key supersedes the old record.
  Store.noteInsert(keyFor(0), makeResult(5));
  Cache.insert(keyFor(0), makeResult(5));
  EXPECT_GT(Store.garbageBytes(), 0u);
  uint64_t AfterRefresh = Store.garbageBytes();

  // Overflowing the 2-entry bound evicts key 0 through the hook.
  Store.noteInsert(keyFor(1), makeResult(1));
  Cache.insert(keyFor(1), makeResult(1));
  Store.noteInsert(keyFor(2), makeResult(2));
  Cache.insert(keyFor(2), makeResult(2));
  EXPECT_GT(Store.garbageBytes(), AfterRefresh);
}

} // namespace
