//===- tests/service/content_cache_test.cpp --------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-correctness suite for the service's content-addressed result
/// cache: distinct requests get distinct keys, a replayed hit is
/// byte-identical to the freshly inserted result, the store stays within
/// its entry bound under LRU eviction, and the raw-text alias index
/// resolves (and self-heals when its target was evicted).
///
//===----------------------------------------------------------------------===//

#include "service/ContentCache.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::service;

namespace {

ContentKey keyFor(int I) {
  return hashContent("kernel-" + std::to_string(I), "coalesce-all", "alpha",
                     "");
}

CachedResult resultFor(int I) {
  CachedResult R;
  R.Key = keyFor(I).hex();
  R.IR = "func @k" + std::to_string(I) + "() {\nentry:\n  ret\n}\n";
  R.Stats = "{\"load-runs\":" + std::to_string(I) + "}";
  R.Remarks = "{\"pass\":\"coalesce\",\"n\":" + std::to_string(I) + "}\n";
  R.Incidents = "";
  R.Ran = true;
  R.RunStatus = "ok";
  R.ReturnValue = I;
  R.Cycles = 10 + I;
  R.Instructions = 5 + I;
  return R;
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

TEST(ContentKeys, EveryTupleFieldChangesTheKey) {
  ContentKey Base = hashContent("ir", "cfg", "tgt", "run");
  EXPECT_NE(Base, hashContent("ir2", "cfg", "tgt", "run"));
  EXPECT_NE(Base, hashContent("ir", "cfg2", "tgt", "run"));
  EXPECT_NE(Base, hashContent("ir", "cfg", "tgt2", "run"));
  EXPECT_NE(Base, hashContent("ir", "cfg", "tgt", "run2"));
  EXPECT_EQ(Base, hashContent("ir", "cfg", "tgt", "run"));
}

TEST(ContentKeys, FieldBoundariesAreNotAmbiguous) {
  // Moving a character across a field boundary must change the key —
  // the tuple is separated, not concatenated.
  EXPECT_NE(hashContent("ab", "c", "t", ""), hashContent("a", "bc", "t", ""));
  EXPECT_NE(hashContent("", "x", "t", ""), hashContent("x", "", "t", ""));
}

TEST(ContentKeys, HexRoundtrip) {
  ContentKey K = hashContent("some kernel", "O0", "m68030", "1,2@64");
  std::string Hex = K.hex();
  ASSERT_EQ(Hex.size(), 32u);
  std::optional<ContentKey> Back = contentKeyFromHex(Hex);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, K);
}

TEST(ContentKeys, HexRejectsMalformedInput) {
  EXPECT_FALSE(contentKeyFromHex("").has_value());
  EXPECT_FALSE(contentKeyFromHex("abcd").has_value());
  EXPECT_FALSE(
      contentKeyFromHex("0123456789abcdef0123456789abcdeZ").has_value());
  EXPECT_FALSE(
      contentKeyFromHex("0123456789abcdef0123456789abcdef0").has_value());
}

TEST(ContentKeys, RunSignatureSeparatesRunFromCompileOnly) {
  ServiceRequest Compile;
  EXPECT_EQ(runSignature(Compile), "");

  ServiceRequest Run = Compile;
  Run.RunArgs = "4096,8";
  Run.ArenaKB = 128;
  std::string Sig = Run.RunArgs + "@128";
  EXPECT_EQ(runSignature(Run), Sig);

  // Same args, different arena -> different identity (the arena bounds
  // what the kernel can touch, so results can legitimately differ).
  ServiceRequest Run2 = Run;
  Run2.ArenaKB = 256;
  EXPECT_NE(runSignature(Run), runSignature(Run2));
}

//===----------------------------------------------------------------------===//
// Store behavior
//===----------------------------------------------------------------------===//

TEST(ContentCacheStore, HitReplaysByteIdenticalResult) {
  ContentCache Cache(8);
  CachedResult Fresh = resultFor(1);
  Cache.insert(keyFor(1), Fresh);

  const CachedResult *Hit = Cache.lookup(keyFor(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Key, Fresh.Key);
  EXPECT_EQ(Hit->IR, Fresh.IR);
  EXPECT_EQ(Hit->Stats, Fresh.Stats);
  EXPECT_EQ(Hit->Remarks, Fresh.Remarks);
  EXPECT_EQ(Hit->Incidents, Fresh.Incidents);
  EXPECT_EQ(Hit->Ran, Fresh.Ran);
  EXPECT_EQ(Hit->RunStatus, Fresh.RunStatus);
  EXPECT_EQ(Hit->ReturnValue, Fresh.ReturnValue);
  EXPECT_EQ(Hit->Cycles, Fresh.Cycles);
  EXPECT_EQ(Hit->Instructions, Fresh.Instructions);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 0u);
}

TEST(ContentCacheStore, MissIsCountedAndReturnsNull) {
  ContentCache Cache(8);
  EXPECT_EQ(Cache.lookup(keyFor(99)), nullptr);
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(ContentCacheStore, EvictionIsBoundedAndLRU) {
  ContentCache Cache(4);
  for (int I = 0; I < 4; ++I)
    Cache.insert(keyFor(I), resultFor(I));
  EXPECT_EQ(Cache.size(), 4u);

  // Touch 0 so it becomes most-recently-used, then overflow the bound.
  ASSERT_NE(Cache.lookup(keyFor(0)), nullptr);
  for (int I = 4; I < 10; ++I)
    Cache.insert(keyFor(I), resultFor(I));

  EXPECT_EQ(Cache.size(), 4u) << "bound must hold under any insert load";
  // 1 was the least-recently-used entry; it must be gone. The recent
  // inserts and nothing beyond the bound survive.
  EXPECT_EQ(Cache.lookup(keyFor(1)), nullptr);
  EXPECT_NE(Cache.lookup(keyFor(9)), nullptr);
  EXPECT_NE(Cache.lookup(keyFor(8)), nullptr);
}

TEST(ContentCacheStore, ReinsertRefreshesInsteadOfDuplicating) {
  ContentCache Cache(2);
  Cache.insert(keyFor(1), resultFor(1));
  CachedResult Updated = resultFor(1);
  Updated.Stats = "{\"load-runs\":777}";
  Cache.insert(keyFor(1), Updated);
  EXPECT_EQ(Cache.size(), 1u);
  const CachedResult *Hit = Cache.lookup(keyFor(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Stats, "{\"load-runs\":777}");
}

//===----------------------------------------------------------------------===//
// Alias index
//===----------------------------------------------------------------------===//

TEST(ContentCacheAlias, RawVariantResolvesToCanonicalEntry) {
  ContentCache Cache(8);
  ContentKey Canon = keyFor(1);
  // A whitespace variant of the same kernel: different raw bytes.
  ContentKey Raw = hashContent("  kernel-1  \n", "coalesce-all", "alpha", "");
  ASSERT_FALSE(Raw == Canon);

  Cache.insert(Canon, resultFor(1));
  Cache.alias(Raw, Canon);

  const CachedResult *Hit = Cache.lookupRaw(Raw);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->IR, resultFor(1).IR);
}

TEST(ContentCacheAlias, CanonicalKeyHitsStoreDirectlyWithoutAlias) {
  // lookupRaw must also serve the case where the raw bytes *are* the
  // canonical form (the common byte-identical repeat).
  ContentCache Cache(8);
  Cache.insert(keyFor(2), resultFor(2));
  EXPECT_NE(Cache.lookupRaw(keyFor(2)), nullptr);
}

TEST(ContentCacheAlias, DanglingAliasDiesLazilyAfterEviction) {
  ContentCache Cache(1);
  ContentKey Canon = keyFor(1);
  ContentKey Raw = hashContent("variant", "coalesce-all", "alpha", "");
  Cache.insert(Canon, resultFor(1));
  Cache.alias(Raw, Canon);
  ASSERT_NE(Cache.lookupRaw(Raw), nullptr);

  // Evict the canonical entry by inserting another one.
  Cache.insert(keyFor(2), resultFor(2));
  EXPECT_EQ(Cache.size(), 1u);

  uint64_t MissesBefore = Cache.misses();
  EXPECT_EQ(Cache.lookupRaw(Raw), nullptr)
      << "alias to an evicted entry must miss, not resurrect stale data";
  EXPECT_GT(Cache.misses(), MissesBefore);
  // And it was erased: a second lookup is still a clean miss.
  EXPECT_EQ(Cache.lookupRaw(Raw), nullptr);
}

TEST(ContentCacheAlias, AliasIndexIsBounded) {
  // The alias index holds at most 4x the entry bound; flooding it with
  // unique variants must not grow it without limit (we can't inspect the
  // map directly, but the oldest alias must be dropped).
  ContentCache Cache(2);
  Cache.insert(keyFor(1), resultFor(1));
  ContentKey First = hashContent("variant-0", "c", "t", "");
  Cache.alias(First, keyFor(1));
  for (int I = 1; I < 64; ++I)
    Cache.alias(hashContent("variant-" + std::to_string(I), "c", "t", ""),
                keyFor(1));
  // First alias fell off the bounded index -> miss; a recent one hits.
  EXPECT_EQ(Cache.lookupRaw(First), nullptr);
  EXPECT_NE(
      Cache.lookupRaw(hashContent("variant-63", "c", "t", "")), nullptr);
}

} // namespace
