//===- tests/workloads/workloads_test.cpp ----------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Verifier.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace vpo;

namespace {

class WorkloadTest : public testing::TestWithParam<std::string> {
protected:
  std::unique_ptr<Workload> W = makeWorkloadByName(GetParam());
};

TEST_P(WorkloadTest, BuildsVerifiableIR) {
  ASSERT_NE(W, nullptr);
  Module M;
  Function *F = W->build(M);
  ASSERT_NE(F, nullptr);
  std::vector<std::string> Problems;
  EXPECT_TRUE(verifyFunction(*F, Problems))
      << (Problems.empty() ? "" : Problems.front());
  EXPECT_FALSE(F->params().empty());
  EXPECT_GT(F->instructionCount(), 4u);
  EXPECT_NE(W->description()[0], '\0');
}

TEST_P(WorkloadTest, SetupIsDeterministic) {
  Memory M1, M2;
  SetupOptions SO;
  SO.N = 128;
  SO.Width = 16;
  SO.Height = 8;
  SetupResult R1 = W->setup(M1, SO);
  SetupResult R2 = W->setup(M2, SO);
  EXPECT_EQ(R1.Args, R2.Args);
  EXPECT_EQ(std::memcmp(M1.data(), M2.data(), M1.size()), 0);
}

TEST_P(WorkloadTest, SeedChangesData) {
  Memory M1, M2;
  SetupOptions SO;
  SO.N = 128;
  SO.Width = 16;
  SO.Height = 8;
  W->setup(M1, SO);
  SO.Seed = 999;
  W->setup(M2, SO);
  EXPECT_NE(std::memcmp(M1.data(), M2.data(), M1.size()), 0);
}

TEST_P(WorkloadTest, RegionsAreDisjointByDefault) {
  Memory Mem;
  SetupOptions SO;
  SO.N = 256;
  SO.Width = 20;
  SO.Height = 10;
  SetupResult R = W->setup(Mem, SO);
  for (size_t I = 0; I < R.Regions.size(); ++I)
    for (size_t J = I + 1; J < R.Regions.size(); ++J) {
      auto [AStart, ASize] = R.Regions[I];
      auto [BStart, BSize] = R.Regions[J];
      EXPECT_TRUE(AStart + ASize <= BStart || BStart + BSize <= AStart)
          << "regions " << I << " and " << J << " overlap";
    }
}

TEST_P(WorkloadTest, GoldenIsSelfConsistent) {
  // Applying the golden implementation to two identical images yields
  // identical results (pure function of the image).
  Memory Mem;
  SetupOptions SO;
  SO.N = 64;
  SO.Width = 10;
  SO.Height = 6;
  SetupResult R = W->setup(Mem, SO);
  std::vector<uint8_t> ImgA(Mem.data(), Mem.data() + Mem.size());
  std::vector<uint8_t> ImgB = ImgA;
  int64_t RetA = W->golden(ImgA.data(), SO, R);
  int64_t RetB = W->golden(ImgB.data(), SO, R);
  EXPECT_EQ(RetA, RetB);
  EXPECT_EQ(ImgA, ImgB);
}

TEST_P(WorkloadTest, UnoptimizedKernelMatchesGolden) {
  // The most basic differential: the raw kernel (legalized only, which
  // the aligned-target simulator requires) equals the golden reference.
  Memory Mem;
  SetupOptions SO;
  SO.N = 200;
  SO.Width = 18;
  SO.Height = 9;
  SetupResult R = W->setup(Mem, SO);
  std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
  int64_t ExpectRet = W->golden(Golden.data(), SO, R);

  Module M;
  Function *F = W->build(M);
  TargetMachine TM = makeM68030Target(); // narrow refs run natively
  Interpreter Interp(TM, Mem);
  RunResult Run = Interp.run(*F, R.Args);
  ASSERT_TRUE(Run.ok()) << Run.Error;
  EXPECT_EQ(Run.ReturnValue, ExpectRet);
  EXPECT_EQ(std::memcmp(Mem.data(), Golden.data(), Mem.size()), 0);
}

std::vector<std::string> allNames() {
  std::vector<std::string> Names;
  for (auto &W : allWorkloads())
    Names.push_back(W->name());
  return Names;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest, testing::ValuesIn(allNames()),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadRegistry, NamesUniqueAndResolvable) {
  auto All = allWorkloads();
  EXPECT_EQ(All.size(), 11u);
  for (auto &W : All) {
    auto Found = makeWorkloadByName(W->name());
    ASSERT_NE(Found, nullptr) << W->name();
    EXPECT_STREQ(Found->name(), W->name());
  }
  EXPECT_EQ(makeWorkloadByName("no_such_kernel"), nullptr);
}

} // namespace
