//===- tests/TestHelpers.h - shared test utilities ---------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential harness every integration test builds on: run a
/// workload kernel through a pipeline configuration on a target, simulate
/// it, and require that the final memory image and return value match the
/// golden scalar implementation byte-for-byte. This is the paper's safety
/// property ("the transformation can be done without changing the
/// semantics of the program") made executable.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_TESTS_TESTHELPERS_H
#define VPO_TESTS_TESTHELPERS_H

#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <cstring>
#include <string>

namespace vpo {
namespace test {

struct DifferentialResult {
  RunResult Run;
  CompileReport Report;
  bool Match = false;
  std::string Why;
};

/// Extra knobs layered on the workload setup.
struct DifferentialKnobs {
  /// Declare every pointer parameter NoAlias (static alias analysis
  /// succeeds; no run-time overlap checks needed).
  bool DeclareNoAlias = false;
  /// Declare this alignment on every pointer parameter (0 = leave unknown).
  uint64_t DeclareAlign = 0;
};

inline DifferentialResult
runDifferential(const Workload &W, const TargetMachine &TM,
                const CompileOptions &CO, const SetupOptions &SO,
                const DifferentialKnobs &Knobs = DifferentialKnobs()) {
  DifferentialResult DR;

  Module M;
  Function *F = W.build(M);

  if (Knobs.DeclareNoAlias || Knobs.DeclareAlign) {
    for (size_t P = 0; P < F->params().size(); ++P) {
      // Pointer parameters are those used as address bases; declaring the
      // scalar count too is harmless.
      if (Knobs.DeclareNoAlias)
        F->paramInfo(P).NoAlias = true;
      if (Knobs.DeclareAlign)
        F->paramInfo(P).KnownAlign = Knobs.DeclareAlign;
    }
  }

  Memory Mem;
  SetupResult S = W.setup(Mem, SO);

  // Golden image: a snapshot of memory before the run.
  std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
  int64_t ExpectedRet = W.golden(Golden.data(), SO, S);

  DR.Report = compileFunction(*F, TM, CO);

  Interpreter Interp(TM, Mem);
  DR.Run = Interp.run(*F, S.Args);
  if (!DR.Run.ok()) {
    DR.Why = std::string("run failed: ") + runStatusName(DR.Run.Exit) +
             ": " + DR.Run.Error + "\n" + printFunction(*F);
    return DR;
  }

  if (DR.Run.ReturnValue != ExpectedRet) {
    DR.Why = "return value " + std::to_string(DR.Run.ReturnValue) +
             " != expected " + std::to_string(ExpectedRet);
    return DR;
  }
  if (std::memcmp(Mem.data(), Golden.data(), Mem.size()) != 0) {
    // Find the first differing byte for the diagnostic.
    size_t At = 0;
    while (At < Mem.size() && Mem.data()[At] == Golden[At])
      ++At;
    DR.Why = "memory image differs at address " + std::to_string(At) +
             " (got " + std::to_string(Mem.data()[At]) + ", expected " +
             std::to_string(Golden[At]) + ")";
    return DR;
  }
  DR.Match = true;
  return DR;
}

} // namespace test
} // namespace vpo

#endif // VPO_TESTS_TESTHELPERS_H
