//===- tests/integration/differential_test.cpp -----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central safety suite: every workload, on every target, under every
/// pipeline configuration, across alignment skews, overlap modes, and trip
/// counts (including counts not divisible by the unroll factor), must
/// produce a memory image and return value identical to the golden scalar
/// implementation.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::test;

namespace {

struct DiffCase {
  std::string WorkloadName;
  std::string TargetName;
  CoalesceMode Mode;
  bool Unroll;
  bool Schedule;
};

std::string caseName(const testing::TestParamInfo<DiffCase> &Info) {
  const DiffCase &C = Info.param;
  std::string ModeName = C.Mode == CoalesceMode::None
                             ? "none"
                             : (C.Mode == CoalesceMode::Loads ? "loads"
                                                              : "all");
  return C.WorkloadName + "_" + C.TargetName + "_" + ModeName +
         (C.Unroll ? "_unroll" : "_rolled") + (C.Schedule ? "_sched" : "");
}

class DifferentialTest : public testing::TestWithParam<DiffCase> {
protected:
  CompileOptions options() const {
    CompileOptions CO;
    CO.Mode = GetParam().Mode;
    CO.Unroll = GetParam().Unroll;
    CO.Schedule = GetParam().Schedule;
    return CO;
  }

  void expectMatch(const SetupOptions &SO,
                   const DifferentialKnobs &Knobs = DifferentialKnobs()) {
    auto W = makeWorkloadByName(GetParam().WorkloadName);
    ASSERT_NE(W, nullptr);
    TargetMachine TM = makeTargetByName(GetParam().TargetName);
    DifferentialResult DR = runDifferential(*W, TM, options(), SO, Knobs);
    EXPECT_TRUE(DR.Match) << DR.Why;
  }
};

TEST_P(DifferentialTest, AlignedDivisibleTrips) {
  SetupOptions SO;
  SO.N = 256;
  SO.Width = 20;
  SO.Height = 12;
  expectMatch(SO);
}

TEST_P(DifferentialTest, NonDivisibleTrips) {
  SetupOptions SO;
  SO.N = 251; // prime: never divisible by the unroll factor
  SO.Width = 19;
  SO.Height = 11;
  expectMatch(SO);
}

TEST_P(DifferentialTest, TinyTrips) {
  for (int64_t N : {0, 1, 2, 3, 7}) {
    SetupOptions SO;
    SO.N = N;
    SO.Width = 5;
    SO.Height = 4;
    expectMatch(SO);
  }
}

TEST_P(DifferentialTest, MisalignedArrays) {
  for (size_t Skew : {1u, 2u, 4u, 6u}) {
    SetupOptions SO;
    SO.N = 128;
    SO.Width = 12;
    SO.Height = 9;
    SO.BaseAlign = 8;
    SO.Skew = Skew;
    expectMatch(SO);
  }
}

TEST_P(DifferentialTest, OverlappingArrays) {
  SetupOptions SO;
  SO.N = 192;
  SO.Width = 16;
  SO.Height = 10;
  SO.OverlapMode = 1;
  expectMatch(SO);
}

TEST_P(DifferentialTest, StaticNoAliasAndAlignment) {
  SetupOptions SO;
  SO.N = 256;
  SO.Width = 20;
  SO.Height = 12;
  SO.BaseAlign = 16;
  DifferentialKnobs Knobs;
  Knobs.DeclareNoAlias = true;
  Knobs.DeclareAlign = 16;
  expectMatch(SO, Knobs);
}

std::vector<DiffCase> allCases() {
  std::vector<DiffCase> Cases;
  const char *Workloads[] = {"convolution", "image_add", "image_add16",
                             "image_xor",   "translate", "eqntott",
                             "mirror",      "dotproduct", "livermore5"};
  const char *Targets[] = {"alpha", "m88100", "m68030"};
  struct ModeCfg {
    CoalesceMode Mode;
    bool Unroll;
    bool Schedule;
  } Modes[] = {
      {CoalesceMode::None, false, false}, // frontend + legalize only
      {CoalesceMode::None, true, false},  // cc -O model
      {CoalesceMode::None, true, true},   // vpo -O
      {CoalesceMode::Loads, true, true},
      {CoalesceMode::LoadsAndStores, true, true},
      {CoalesceMode::LoadsAndStores, false, true}, // coalesce w/o unroll
  };
  for (const char *W : Workloads)
    for (const char *T : Targets)
      for (const ModeCfg &M : Modes)
        Cases.push_back(DiffCase{W, T, M.Mode, M.Unroll, M.Schedule});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, DifferentialTest,
                         testing::ValuesIn(allCases()), caseName);

} // namespace
