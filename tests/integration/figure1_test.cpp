//===- tests/integration/figure1_test.cpp - the paper's example -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the paper's running example (Figures 1a-1c) and the section 2.1
/// memory-traffic claim: unrolling the dot product four times and
/// coalescing turns 2n narrow references into n/2 wide references — "a
/// savings of 75 percent" — while "there are still two loads in the loop".
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace vpo;
using namespace vpo::test;

namespace {

struct Figure1 : testing::Test {
  std::unique_ptr<Workload> W = makeWorkloadByName("dotproduct");
  TargetMachine TM = makeAlphaTarget();

  CompileOptions options(CoalesceMode Mode) {
    CompileOptions CO;
    CO.Mode = Mode;
    CO.Unroll = true;
    CO.Schedule = true;
    return CO;
  }
};

TEST_F(Figure1, CoalescedLoopHasTwoWideLoads) {
  Module M;
  Function *F = W->build(M);
  // Known-aligned restrict arrays: the coalesced loop replaces the body
  // outright (no checks), making the shape easy to pin.
  for (size_t P = 0; P < F->params().size(); ++P) {
    F->paramInfo(P).NoAlias = true;
    F->paramInfo(P).KnownAlign = 8;
  }
  CompileReport R =
      compileFunction(*F, TM, options(CoalesceMode::LoadsAndStores));
  EXPECT_EQ(R.Coalesce.LoopsUnrolled, 1u);
  EXPECT_EQ(R.Coalesce.LoadRunsCoalesced, 2u) << "one run per vector";
  EXPECT_EQ(R.Coalesce.NarrowLoadsRemoved, 8u) << "4 copies x 2 vectors";

  // Find the coalesced main loop: the legalized rolled epilogue also
  // contains extracts (each narrow load lowers to ldq_u + extract), so
  // pick the block with the most of them.
  const BasicBlock *MainLoop = nullptr;
  unsigned Best = 0;
  for (const auto &BB : F->blocks()) {
    unsigned Count = 0;
    for (const Instruction &I : BB->insts())
      Count += I.Op == Opcode::ExtractF;
    if (Count > Best) {
      Best = Count;
      MainLoop = BB.get();
    }
  }
  ASSERT_NE(MainLoop, nullptr);
  unsigned WideLoads = 0, Extracts = 0, Muls = 0;
  for (const Instruction &I : MainLoop->insts()) {
    WideLoads += I.isLoad();
    Extracts += I.Op == Opcode::ExtractF;
    Muls += I.Op == Opcode::Mul;
  }
  // Paper: "Notice that there are still two loads in the loop" (Fig. 1c
  // lines 12 and 18).
  EXPECT_EQ(WideLoads, 2u);
  EXPECT_EQ(Extracts, 8u);
  EXPECT_EQ(Muls, 4u);
}

TEST_F(Figure1, MemoryTrafficSavings75Percent) {
  SetupOptions SO;
  SO.N = 8192;
  DifferentialKnobs Knobs;
  Knobs.DeclareNoAlias = true;
  Knobs.DeclareAlign = 8;

  DifferentialResult Base =
      runDifferential(*W, TM, options(CoalesceMode::None), SO, Knobs);
  DifferentialResult Coal = runDifferential(
      *W, TM, options(CoalesceMode::LoadsAndStores), SO, Knobs);
  ASSERT_TRUE(Base.Match) << Base.Why;
  ASSERT_TRUE(Coal.Match) << Coal.Why;

  // 2n narrow references before; n/2 wide references after (the paper's
  // section 2.1 arithmetic).
  EXPECT_EQ(Base.Run.MemRefs(), 2u * 8192);
  EXPECT_EQ(Coal.Run.MemRefs(), 8192u / 2);
  double Savings = 1.0 - double(Coal.Run.MemRefs()) /
                             double(Base.Run.MemRefs());
  EXPECT_DOUBLE_EQ(Savings, 0.75);
}

TEST_F(Figure1, CoalescingNeverSlower) {
  SetupOptions SO;
  SO.N = 8192;
  DifferentialResult Base =
      runDifferential(*W, TM, options(CoalesceMode::None), SO);
  DifferentialResult Coal =
      runDifferential(*W, TM, options(CoalesceMode::LoadsAndStores), SO);
  ASSERT_TRUE(Base.Match && Coal.Match);
  EXPECT_LT(Coal.Run.Cycles, Base.Run.Cycles);
}

TEST_F(Figure1, ChecksStayWithinPaperBudget) {
  // "Typically, 10 to 15 instructions must be added in the loop
  // preheader" — with unknown parameters the dot product needs the
  // alignment tests (the two loads are the only references, so no alias
  // pair is required).
  Module M;
  Function *F = W->build(M);
  CompileReport R =
      compileFunction(*F, TM, options(CoalesceMode::LoadsAndStores));
  EXPECT_GE(R.Coalesce.CheckInstructions, 4u);
  EXPECT_LE(R.Coalesce.CheckInstructions, 15u);
  EXPECT_EQ(R.Coalesce.AlignmentChecks, 2u);
  EXPECT_EQ(R.Coalesce.OverlapChecks, 0u) << "loads cannot conflict";
}

TEST_F(Figure1, EffectDependsOnISA) {
  // The paper's summary: the same transformation speeds up the Alpha,
  // helps the 88100 for loads, and the profitability analysis refuses the
  // 68030 outright.
  SetupOptions SO;
  SO.N = 8192;
  for (const char *Target : {"alpha", "m88100"}) {
    TargetMachine T = makeTargetByName(Target);
    DifferentialResult Base =
        runDifferential(*W, T, options(CoalesceMode::None), SO);
    DifferentialResult Coal =
        runDifferential(*W, T, options(CoalesceMode::Loads), SO);
    ASSERT_TRUE(Base.Match && Coal.Match) << Target;
    EXPECT_LT(Coal.Run.Cycles, Base.Run.Cycles) << Target;
  }
  TargetMachine M68 = makeM68030Target();
  Module M;
  Function *F = W->build(M);
  CompileReport R =
      compileFunction(*F, M68, options(CoalesceMode::LoadsAndStores));
  EXPECT_EQ(R.Coalesce.LoopsTransformed, 0u);
}

} // namespace
