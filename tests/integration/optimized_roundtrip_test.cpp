//===- tests/integration/optimized_roundtrip_test.cpp ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trips fully *optimized* functions through the textual format:
/// the printer/parser must faithfully carry every construct the
/// transformations emit (extqhi, float-lane extract/insert, wide
/// references, check blocks, epilogue loops), and the reparsed function
/// must simulate identically.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct RoundTripCase {
  std::string WorkloadName;
  std::string TargetName;
};

class OptimizedRoundTripTest
    : public testing::TestWithParam<RoundTripCase> {};

TEST_P(OptimizedRoundTripTest, PrintParseSimulate) {
  auto W = makeWorkloadByName(GetParam().WorkloadName);
  ASSERT_NE(W, nullptr);
  TargetMachine TM = makeTargetByName(GetParam().TargetName);

  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  compileFunction(*F, TM, CO);

  // Textual fixed point.
  std::string First = printFunction(*F);
  std::string Err;
  auto Reparsed = parseModule(First, &Err);
  ASSERT_NE(Reparsed, nullptr) << Err;
  Function *F2 = Reparsed->functions().front().get();
  EXPECT_EQ(printFunction(*F2), First);
  std::vector<std::string> Problems;
  EXPECT_TRUE(verifyFunction(*F2, Problems))
      << (Problems.empty() ? "" : Problems.front());

  // Identical simulation results over identical memory.
  SetupOptions SO;
  SO.N = 320;
  SO.Width = 24;
  SO.Height = 10;
  Memory M1, M2;
  SetupResult S1 = W->setup(M1, SO);
  SetupResult S2 = W->setup(M2, SO);
  Interpreter I1(TM, M1), I2(TM, M2);
  RunResult R1 = I1.run(*F, S1.Args);
  RunResult R2 = I2.run(*F2, S2.Args);
  ASSERT_TRUE(R1.ok()) << R1.Error;
  ASSERT_TRUE(R2.ok()) << R2.Error;
  EXPECT_EQ(R1.ReturnValue, R2.ReturnValue);
  EXPECT_EQ(R1.Instructions, R2.Instructions);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(std::memcmp(M1.data(), M2.data(), M1.size()), 0);
}

std::vector<RoundTripCase> allCases() {
  std::vector<RoundTripCase> Cases;
  for (auto &W : allWorkloads())
    for (const char *T : {"alpha", "m88100", "m68030"})
      Cases.push_back({W->name(), T});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(All, OptimizedRoundTripTest,
                         testing::ValuesIn(allCases()),
                         [](const auto &Info) {
                           return Info.param.WorkloadName + "_" +
                                  Info.param.TargetName;
                         });

} // namespace
