//===- tests/integration/random_kernel_test.cpp ----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based fuzzing of the whole pipeline: random single-block
/// counted loops over one to three pointer streams, with random reference
/// widths, offsets, directions, and compute. Each kernel is run
/// unoptimized and optimized over identical initial memory; the final
/// memory image and return value must match bit-for-bit, across targets,
/// coalescing modes, alignment skews, trip counts, and overlapping
/// allocations. This is the same oracle as the workload differential
/// suite, but over a much wilder space of loop shapes.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "support/RNG.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct StreamSpec {
  unsigned ElemBytes;   // 1, 2, or 4
  unsigned RefsPerIter; // 1..4 consecutive elements
  bool Descending;
  bool HasLoad;
  bool HasStore;
};

struct KernelSpec {
  std::vector<StreamSpec> Streams;
  uint64_t Seed;

  static KernelSpec random(uint64_t Seed) {
    RNG R(Seed * 77 + 5);
    KernelSpec K;
    K.Seed = Seed;
    size_t NumStreams = 1 + R.nextBelow(3);
    for (size_t S = 0; S < NumStreams; ++S) {
      StreamSpec St;
      St.ElemBytes = 1u << R.nextBelow(3);
      St.RefsPerIter = 1 + static_cast<unsigned>(R.nextBelow(4));
      St.Descending = R.nextBelow(4) == 0;
      St.HasLoad = R.nextBelow(3) != 0;
      St.HasStore = !St.HasLoad || R.nextBelow(2) == 0;
      K.Streams.push_back(St);
    }
    return K;
  }
};

/// Builds the kernel: params are (base0, ..., baseK, n).
std::string buildKernelText(const KernelSpec &K) {
  Module M;
  Function *F = M.addFunction("k");
  std::vector<Reg> Bases;
  for (size_t S = 0; S < K.Streams.size(); ++S)
    Bases.push_back(F->addParam());
  Reg N = F->addParam();
  IRBuilder B(F);

  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Exit = F->addBlock("exit");
  (void)Entry;

  RNG R(K.Seed * 131 + 7);

  // Pointers: ascending streams start at base; descending ones at
  // base + (n-1)*step elements (the last group).
  B.setInsertBlock(F->entry());
  Reg Acc = B.mov(Operand::imm(int64_t(K.Seed)));
  std::vector<Reg> Ptrs;
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    int64_t GroupBytes = int64_t(St.ElemBytes) * St.RefsPerIter;
    if (!St.Descending) {
      Ptrs.push_back(B.add(Bases[S], Operand::imm(0)));
    } else {
      Reg Total = B.mul(N, Operand::imm(GroupBytes));
      Reg End = B.add(Bases[S], Total);
      Ptrs.push_back(B.sub(End, Operand::imm(GroupBytes)));
    }
  }
  // Loop bound on stream 0's pointer.
  const StreamSpec &S0 = K.Streams[0];
  int64_t Group0 = int64_t(S0.ElemBytes) * S0.RefsPerIter;
  Reg Limit;
  if (!S0.Descending) {
    Reg Total = B.mul(N, Operand::imm(Group0));
    Limit = B.add(Bases[0], Total);
  } else {
    Limit = B.sub(Bases[0], Operand::imm(Group0));
  }
  B.br(CondCode::LEs, N, Operand::imm(0), Exit, Body);

  B.setInsertBlock(Body);
  std::vector<Reg> Loaded = {Acc};
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    MemWidth W = widthFromBytes(St.ElemBytes);
    for (unsigned E = 0; E < St.RefsPerIter; ++E) {
      int64_t Off = int64_t(E) * St.ElemBytes;
      if (St.HasLoad) {
        Reg V = B.load(Address(Ptrs[S], Off), W, R.nextBelow(2) == 0);
        Loaded.push_back(V);
        Opcode Mix = R.nextBelow(2) == 0 ? Opcode::Add : Opcode::Xor;
        B.aluTo(Acc, Mix, Acc, V);
      }
      if (St.HasStore) {
        Reg Src = Loaded[R.nextBelow(Loaded.size())];
        B.store(Address(Ptrs[S], Off), Src, W);
      }
    }
  }
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    int64_t GroupBytes = int64_t(St.ElemBytes) * St.RefsPerIter;
    B.aluTo(Ptrs[S], St.Descending ? Opcode::Sub : Opcode::Add, Ptrs[S],
            Operand::imm(GroupBytes));
  }
  CondCode CC = S0.Descending ? CondCode::GTu : CondCode::LTu;
  B.br(CC, Ptrs[0], Limit, Body, Exit);

  B.setInsertBlock(Exit);
  B.ret(Acc);
  return printFunction(*F);
}

struct RunOutcome {
  int64_t Ret = 0;
  std::vector<uint8_t> Mem;
  bool Ok = false;
  std::string Error;
};

RunOutcome runKernel(const std::string &Text, const KernelSpec &K,
                     const TargetMachine &TM, const CompileOptions &CO,
                     size_t Skew, bool Overlap, int64_t N) {
  RunOutcome Out;
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_NE(M, nullptr) << Err;
  Function *F = M->functions().front().get();

  Memory Mem;
  RNG R(K.Seed * 9 + 1);
  std::vector<int64_t> Args;
  uint64_t FirstBase = 0;
  for (size_t S = 0; S < K.Streams.size(); ++S) {
    const StreamSpec &St = K.Streams[S];
    size_t Bytes =
        static_cast<size_t>(N) * St.ElemBytes * St.RefsPerIter + 64;
    size_t ElemSkew = Skew - (Skew % St.ElemBytes);
    uint64_t Base;
    if (Overlap && S == 1) {
      // Stream 1 placed inside stream 0's region; the *absolute* address
      // must be naturally aligned for stream 1's element size.
      Base = (FirstBase + Bytes / 3) & ~uint64_t(St.ElemBytes - 1);
    } else {
      Base = Mem.allocate(2 * Bytes, 8, ElemSkew);
    }
    if (S == 0)
      FirstBase = Base;
    for (size_t I = 0; I < Bytes; ++I)
      Mem.write(Base + I, 1, R.next() & 0xff);
    Args.push_back(static_cast<int64_t>(Base));
  }
  Args.push_back(N);

  compileFunction(*F, TM, CO);
  Interpreter Interp(TM, Mem);
  RunResult RR = Interp.run(*F, Args);
  Out.Ok = RR.ok();
  Out.Error = RR.Error + "\n" + printFunction(*F);
  Out.Ret = RR.ReturnValue;
  Out.Mem.assign(Mem.data(), Mem.data() + Mem.size());
  return Out;
}

class RandomKernelTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomKernelTest, OptimizedMatchesUnoptimized) {
  uint64_t Seed = GetParam();
  KernelSpec K = KernelSpec::random(Seed);
  std::string Text = buildKernelText(K);

  CompileOptions Plain;
  Plain.Mode = CoalesceMode::None;
  Plain.Unroll = false;
  Plain.Schedule = false;
  Plain.Cleanup = false;

  for (const char *Target : {"alpha", "m88100", "m68030"}) {
    TargetMachine TM = makeTargetByName(Target);
    for (size_t Skew : {size_t(0), size_t(3)}) {
      for (bool Overlap : {false, true}) {
        if (Overlap && K.Streams.size() < 2)
          continue;
        for (int64_t N : {0LL, 5LL, 16LL}) {
          RunOutcome Ref =
              runKernel(Text, K, TM, Plain, Skew, Overlap, N);
          ASSERT_TRUE(Ref.Ok) << Ref.Error;
          for (int Cfg = 0; Cfg < 3; ++Cfg) {
            CompileOptions CO;
            CO.Mode = Cfg == 0 ? CoalesceMode::None
                               : CoalesceMode::LoadsAndStores;
            CO.Unroll = true;
            CO.Schedule = true;
            if (Cfg == 2) {
              // Everything at once: the companion passes must compose
              // with coalescing on arbitrary kernels.
              CO.OptimizeRecurrences = true;
              CO.ScalarReplace = true;
            }
            RunOutcome Opt =
                runKernel(Text, K, TM, CO, Skew, Overlap, N);
            ASSERT_TRUE(Opt.Ok)
                << "seed=" << Seed << " target=" << Target << " N=" << N
                << " skew=" << Skew << " overlap=" << Overlap << "\n"
                << Opt.Error;
            EXPECT_EQ(Ref.Ret, Opt.Ret)
                << "seed=" << Seed << " target=" << Target << " N=" << N
                << " skew=" << Skew << " overlap=" << Overlap;
            EXPECT_EQ(Ref.Mem == Opt.Mem, true)
                << "memory image differs: seed=" << Seed
                << " target=" << Target << " N=" << N << " skew=" << Skew
                << " overlap=" << Overlap << "\n"
                << Text;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelTest,
                         testing::Range<uint64_t>(1, 41));

} // namespace
