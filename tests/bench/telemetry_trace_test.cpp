//===- tests/bench/telemetry_trace_test.cpp - trace schema ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chrome trace export and the per-cell remark files are CI
/// artifacts; this suite pins their schema. Every serialized event
/// carries the complete-event key set viewers require; deterministic-mode
/// timestamps are monotone per lane and the whole file is byte-identical
/// at any thread count (like the bench JSON it annotates); wall-clock
/// mode maps one lane per worker. Remark files are named, ordered, and
/// filled identically however many threads measured the matrix.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace vpo;
using namespace vpo::bench;

namespace {

std::vector<CellSpec> traceSpecs(const TargetMachine &TM) {
  SetupOptions Small;
  Small.N = 256;
  Small.Width = 16;
  Small.Height = 16;
  CompileOptions Base;
  Base.Mode = CoalesceMode::None;
  CompileOptions Coal;
  Coal.Mode = CoalesceMode::LoadsAndStores;
  return {
      CellSpec{"dotproduct", "base", &TM, Base, Small, 0},
      CellSpec{"dotproduct", "coal", &TM, Coal, Small, 0},
      CellSpec{"image_add", "base", &TM, Base, Small, 0},
      CellSpec{"image_add", "coal", &TM, Coal, Small, 0},
      CellSpec{"convolution", "coal", &TM, Coal, Small, 0},
  };
}

BenchReport measure(const TargetMachine &TM, unsigned Threads) {
  RunnerOptions RO;
  RO.Threads = Threads;
  RO.CollectRemarks = true;
  RO.ProfilePasses = true;
  return MatrixRunner(RO).run("trace_test", traceSpecs(TM));
}

std::string readAll(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

// Serialized events must carry the complete-event ("ph":"X") key set —
// what chrome://tracing and Perfetto require to place an event at all.
TEST(TelemetryTrace, SerializedEventsHaveRequiredKeys) {
  TraceFile TF;
  TraceEvent E;
  E.Name = "cell \"quoted\"";
  E.Cat = "cell";
  E.TsMicros = 10;
  E.DurMicros = 5;
  E.Tid = 3;
  E.Args.emplace_back("workload", "dotproduct");
  TF.add(E);
  std::string J = TF.toJson();
  EXPECT_EQ(J.find("{\"traceEvents\":["), 0u) << J;
  for (const char *Key :
       {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":",
        "\"pid\":", "\"tid\":", "\"args\":"})
    EXPECT_NE(J.find(Key), std::string::npos) << "missing " << Key << ": "
                                              << J;
  // Quotes in names must be escaped, or the file is unloadable.
  EXPECT_NE(J.find("cell \\\"quoted\\\""), std::string::npos) << J;

  // writeFile round-trips the same bytes.
  std::filesystem::path Tmp =
      std::filesystem::temp_directory_path() / "vpo_trace_schema.json";
  ASSERT_TRUE(TF.writeFile(Tmp.string()));
  EXPECT_EQ(readAll(Tmp), J);
  std::filesystem::remove(Tmp);
}

// Deterministic mode: every cell gets its slot in submission order, pass
// events nest inside it, timestamps are monotone per lane, and the bytes
// do not depend on the thread count.
TEST(TelemetryTrace, DeterministicTraceIsThreadCountInvariant) {
  TargetMachine TM = makeAlphaTarget();
  BenchReport R1 = measure(TM, 1);
  BenchReport R4 = measure(TM, 4);

  std::string T1 = buildBenchTrace(R1, /*Deterministic=*/true).toJson();
  std::string T4 = buildBenchTrace(R4, /*Deterministic=*/true).toJson();
  EXPECT_EQ(T1, T4);

  TraceFile TF = buildBenchTrace(R1, /*Deterministic=*/true);
  ASSERT_FALSE(TF.empty());

  // One "cell" event per spec plus at least one "pass" event each.
  unsigned Cells = 0, Passes = 0;
  std::map<unsigned, uint64_t> LastTsPerTid;
  for (const TraceEvent &E : TF.events()) {
    if (E.Cat == "cell")
      ++Cells;
    else if (E.Cat == "pass")
      ++Passes;
    EXPECT_FALSE(E.Name.empty());
    EXPECT_EQ(E.Pid, 1u);
    EXPECT_EQ(E.Tid, 0u) << "deterministic mode uses one logical lane";
    auto [It, New] = LastTsPerTid.try_emplace(E.Tid, E.TsMicros);
    if (!New) {
      EXPECT_GE(E.TsMicros, It->second)
          << "timestamps must be monotone within a lane";
      It->second = E.TsMicros;
    }
  }
  EXPECT_EQ(Cells, R1.Cells.size());
  EXPECT_GE(Passes, R1.Cells.size());

  // Cell slots are logical: cell I starts at I*1000us and every nested
  // pass event fits inside the slot.
  unsigned CellIdx = 0;
  uint64_t SlotStart = 0, SlotEnd = 0;
  for (const TraceEvent &E : TF.events()) {
    if (E.Cat == "cell") {
      SlotStart = uint64_t(CellIdx) * 1000;
      SlotEnd = SlotStart + 1000;
      EXPECT_EQ(E.TsMicros, SlotStart);
      EXPECT_LE(E.TsMicros + E.DurMicros, SlotEnd);
      ++CellIdx;
    } else {
      EXPECT_GE(E.TsMicros, SlotStart);
      EXPECT_LE(E.TsMicros + E.DurMicros, SlotEnd);
    }
  }
}

// Wall-clock mode: one lane per worker (tid = worker + 1), real
// durations, and cell metadata in the args so the timeline is
// self-describing.
TEST(TelemetryTrace, WallClockTraceMapsWorkersToLanes) {
  TargetMachine TM = makeAlphaTarget();
  BenchReport R = measure(TM, 2);
  TraceFile TF = buildBenchTrace(R, /*Deterministic=*/false);

  unsigned Cells = 0;
  for (const TraceEvent &E : TF.events()) {
    if (E.Cat != "cell")
      continue;
    ++Cells;
    EXPECT_GE(E.Tid, 1u);
    bool HasWorkload = false, HasVerified = false;
    for (const auto &[K, V] : E.Args) {
      HasWorkload |= K == "workload";
      HasVerified |= K == "verified";
    }
    EXPECT_TRUE(HasWorkload);
    EXPECT_TRUE(HasVerified);
  }
  EXPECT_EQ(Cells, R.Cells.size());
}

// Remark files: one per cell, named by submission index, descriptor line
// first, and byte-identical at any thread count.
TEST(TelemetryTrace, RemarkFilesAreThreadCountInvariant) {
  TargetMachine TM = makeAlphaTarget();
  BenchReport R1 = measure(TM, 1);
  BenchReport R4 = measure(TM, 4);

  namespace fs = std::filesystem;
  fs::path D1 = fs::temp_directory_path() / "vpo_remarks_t1";
  fs::path D4 = fs::temp_directory_path() / "vpo_remarks_t4";
  fs::remove_all(D1);
  fs::remove_all(D4);
  ASSERT_TRUE(writeRemarkFiles(R1, D1.string()));
  ASSERT_TRUE(writeRemarkFiles(R4, D4.string()));

  for (size_t I = 0; I < R1.Cells.size(); ++I) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "cell-%03zu.ndjson", I);
    SCOPED_TRACE(Name);
    ASSERT_TRUE(fs::exists(D1 / Name));
    std::string A = readAll(D1 / Name);
    EXPECT_EQ(A, readAll(D4 / Name));

    // First line is the cell descriptor carrying the stats snapshot.
    std::string FirstLine = A.substr(0, A.find('\n'));
    EXPECT_NE(FirstLine.find("\"workload\":"), std::string::npos);
    EXPECT_NE(FirstLine.find("\"config\":"), std::string::npos);
    EXPECT_NE(FirstLine.find("\"stats\":"), std::string::npos);
    EXPECT_EQ(A.substr(A.find('\n') + 1), R1.Cells[I].Remarks)
        << "file body must be exactly the cell's remark stream";
  }
  fs::remove_all(D1);
  fs::remove_all(D4);
}

// The remark streams attached to cells are themselves thread-count
// invariant (content comes from the compile, ordering from submission
// index — never from scheduling).
TEST(TelemetryTrace, CellRemarksAreThreadCountInvariant) {
  TargetMachine TM = makeAlphaTarget();
  BenchReport R1 = measure(TM, 1);
  BenchReport R4 = measure(TM, 4);
  ASSERT_EQ(R1.Cells.size(), R4.Cells.size());
  for (size_t I = 0; I < R1.Cells.size(); ++I) {
    EXPECT_EQ(R1.Cells[I].Remarks, R4.Cells[I].Remarks) << "cell " << I;
    EXPECT_FALSE(R1.Cells[I].Remarks.empty()) << "cell " << I;
  }
  EXPECT_EQ(R1.toJson(/*IncludeTiming=*/false),
            R4.toJson(/*IncludeTiming=*/false));
}

} // namespace
