//===- tests/bench/matrix_runner_test.cpp - parallel determinism -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel evaluation-matrix runner must be a pure speedup: the same
/// spec list measured on 1 thread and on N threads must produce identical
/// cells in identical order, and (timing fields aside) byte-identical
/// JSON. This is what lets the table harnesses default to all cores
/// without anyone auditing their output for scheduling races.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace vpo;
using namespace vpo::bench;

namespace {

/// A small but heterogeneous matrix: two workloads, two configurations,
/// a skewed layout, and a static-params cell.
std::vector<CellSpec> testSpecs(const TargetMachine &TM) {
  SetupOptions Small;
  Small.N = 512;
  Small.Width = 16;
  Small.Height = 16;

  CompileOptions Base;
  Base.Mode = CoalesceMode::None;
  CompileOptions Coal;
  Coal.Mode = CoalesceMode::LoadsAndStores;

  SetupOptions Skewed = Small;
  Skewed.Skew = 4;

  return {
      CellSpec{"dotproduct", "base", &TM, Base, Small, 0},
      CellSpec{"dotproduct", "coal", &TM, Coal, Small, 0},
      CellSpec{"image_add", "base", &TM, Base, Small, 0},
      CellSpec{"image_add", "coal", &TM, Coal, Small, 0},
      CellSpec{"image_add", "coal-skew", &TM, Coal, Skewed, 0},
      CellSpec{"dotproduct", "coal-static", &TM, Coal, Small, 2},
  };
}

void expectSameCells(const BenchReport &A, const BenchReport &B) {
  ASSERT_EQ(A.Cells.size(), B.Cells.size());
  for (size_t I = 0; I < A.Cells.size(); ++I) {
    const CellResult &CA = A.Cells[I];
    const CellResult &CB = B.Cells[I];
    EXPECT_EQ(CA.Workload, CB.Workload) << "cell " << I;
    EXPECT_EQ(CA.Config, CB.Config) << "cell " << I;
    EXPECT_EQ(CA.Target, CB.Target) << "cell " << I;
    EXPECT_EQ(CA.M.Cycles, CB.M.Cycles) << "cell " << I;
    EXPECT_EQ(CA.M.Instructions, CB.M.Instructions) << "cell " << I;
    EXPECT_EQ(CA.M.MemRefs, CB.M.MemRefs) << "cell " << I;
    EXPECT_EQ(CA.M.CacheMisses, CB.M.CacheMisses) << "cell " << I;
    EXPECT_EQ(CA.M.Verified, CB.M.Verified) << "cell " << I;
  }
}

TEST(MatrixRunner, OneThreadAndManyThreadsAgreeByteForByte) {
  TargetMachine TM = makeAlphaTarget();
  std::vector<CellSpec> Specs = testSpecs(TM);

  RunnerOptions One;
  One.Threads = 1;
  BenchReport ROne = MatrixRunner(One).run("determinism", Specs);

  RunnerOptions Many;
  Many.Threads = 4;
  BenchReport RMany = MatrixRunner(Many).run("determinism", Specs);

  expectSameCells(ROne, RMany);
  EXPECT_TRUE(ROne.allVerified());
  EXPECT_TRUE(RMany.allVerified());
  // Everything except wall-clock/thread-count must match byte for byte.
  EXPECT_EQ(ROne.toJson(/*IncludeTiming=*/false),
            RMany.toJson(/*IncludeTiming=*/false));
}

TEST(MatrixRunner, ResultsLandInSubmissionOrder) {
  TargetMachine TM = makeAlphaTarget();
  std::vector<CellSpec> Specs = testSpecs(TM);
  RunnerOptions Opts;
  Opts.Threads = 3;
  BenchReport R = MatrixRunner(Opts).run("order", Specs);

  ASSERT_EQ(R.Cells.size(), Specs.size());
  for (size_t I = 0; I < Specs.size(); ++I) {
    EXPECT_EQ(R.Cells[I].Workload, Specs[I].Workload);
    EXPECT_EQ(R.Cells[I].Config, Specs[I].Config);
    EXPECT_EQ(R.Cells[I].Target, TM.name());
  }
  const CellResult *Found = R.find("image_add", "coal-skew");
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->Config, "coal-skew");
  EXPECT_EQ(R.find("image_add", "nonexistent"), nullptr);
}

TEST(MatrixRunner, PredecodeOffMatchesPredecodeOn) {
  // The runner's --no-predecode escape hatch flips the interpreter path;
  // the measured metrics must not move.
  TargetMachine TM = makeAlphaTarget();
  std::vector<CellSpec> Specs = testSpecs(TM);

  RunnerOptions Fast;
  Fast.Threads = 2;
  RunnerOptions Ref = Fast;
  Ref.Predecode = false;

  BenchReport RFast = MatrixRunner(Fast).run("paths", Specs);
  BenchReport RRef = MatrixRunner(Ref).run("paths", Specs);
  expectSameCells(RFast, RRef);
  EXPECT_TRUE(RFast.Predecode);
  EXPECT_FALSE(RRef.Predecode);
}

TEST(MatrixRunner, JitCrossCheckDoesNotMoveMetrics) {
  // The tiered-engine cross-check runs on its own arena after the timed
  // simulation; disabling it (--no-jit) must not change any reported
  // number, only the report's jit flag.
  TargetMachine TM = makeAlphaTarget();
  std::vector<CellSpec> Specs = testSpecs(TM);

  RunnerOptions On;
  On.Threads = 2;
  RunnerOptions Off = On;
  Off.JIT = false;

  BenchReport ROn = MatrixRunner(On).run("jitcheck", Specs);
  BenchReport ROff = MatrixRunner(Off).run("jitcheck", Specs);
  expectSameCells(ROn, ROff);
  EXPECT_TRUE(ROn.allVerified())
      << "tiered engine disagreed with the cycle-accurate result";
  EXPECT_TRUE(ROn.JIT);
  EXPECT_FALSE(ROff.JIT);
}

TEST(MatrixRunner, JsonTimingFieldsAreOptIn) {
  TargetMachine TM = makeAlphaTarget();
  std::vector<CellSpec> Specs = {testSpecs(TM).front()};
  RunnerOptions Opts;
  Opts.Threads = 1;
  BenchReport R = MatrixRunner(Opts).run("json", Specs);

  std::string Timed = R.toJson(/*IncludeTiming=*/true);
  std::string Bare = R.toJson(/*IncludeTiming=*/false);
  EXPECT_NE(Timed.find("\"threads\""), std::string::npos);
  EXPECT_NE(Timed.find("\"total_wall_seconds\""), std::string::npos);
  EXPECT_NE(Timed.find("\"wall_seconds\""), std::string::npos);
  EXPECT_EQ(Bare.find("\"threads\""), std::string::npos);
  EXPECT_EQ(Bare.find("\"total_wall_seconds\""), std::string::npos);
  EXPECT_EQ(Bare.find("\"wall_seconds\""), std::string::npos);
  for (const char *Field :
       {"\"name\"", "\"predecode\"", "\"jit\"", "\"cells\"", "\"workload\"",
        "\"config\"", "\"target\"", "\"cycles\"", "\"instructions\"",
        "\"memrefs\"", "\"cache_misses\"", "\"verified\""}) {
    EXPECT_NE(Bare.find(Field), std::string::npos) << Field;
  }
}

TEST(MatrixRunner, WriteFileRoundTrips) {
  TargetMachine TM = makeAlphaTarget();
  std::vector<CellSpec> Specs = {testSpecs(TM).front()};
  RunnerOptions Opts;
  Opts.Threads = 1;
  BenchReport R = MatrixRunner(Opts).run("roundtrip", Specs);

  std::string Path = testing::TempDir() + "BENCH_roundtrip_test.json";
  ASSERT_TRUE(R.writeFile(Path, /*IncludeTiming=*/false));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), R.toJson(/*IncludeTiming=*/false));
  std::remove(Path.c_str());

  EXPECT_FALSE(R.writeFile("/nonexistent-dir/x/y.json"));
}

TEST(BenchArgs, ParsesStandardFlags) {
  const char *Argv[] = {"table2_alpha", "--threads=3", "--no-predecode",
                        "--json=custom.json"};
  BenchArgs A = parseBenchArgs(4, const_cast<char **>(Argv), "table2_alpha");
  EXPECT_TRUE(A.Ok);
  EXPECT_EQ(A.Threads, 3u);
  EXPECT_FALSE(A.Predecode);
  EXPECT_TRUE(A.WriteJson);
  EXPECT_EQ(A.JsonPath, "custom.json");

  RunnerOptions RO = toRunnerOptions(A);
  EXPECT_EQ(RO.Threads, 3u);
  EXPECT_FALSE(RO.Predecode);
}

TEST(BenchArgs, DefaultsAndNoJson) {
  const char *Argv[] = {"t", "--no-json"};
  BenchArgs A = parseBenchArgs(2, const_cast<char **>(Argv), "mytable");
  EXPECT_TRUE(A.Ok);
  EXPECT_EQ(A.Threads, 0u) << "0 = all cores";
  EXPECT_TRUE(A.Predecode);
  EXPECT_FALSE(A.WriteJson);
  EXPECT_EQ(A.JsonPath, "BENCH_mytable.json");
}

TEST(BenchArgs, ParsesNoJit) {
  const char *Argv[] = {"t", "--no-jit"};
  BenchArgs A = parseBenchArgs(2, const_cast<char **>(Argv), "t");
  EXPECT_TRUE(A.Ok);
  EXPECT_FALSE(A.JIT);
  RunnerOptions RO = toRunnerOptions(A);
  EXPECT_FALSE(RO.JIT);
}

TEST(BenchArgs, ParsesMaxInsts) {
  const char *Argv[] = {"t", "--max-insts=123456"};
  BenchArgs A = parseBenchArgs(2, const_cast<char **>(Argv), "t");
  EXPECT_TRUE(A.Ok);
  EXPECT_EQ(A.MaxInsts, 123456u);
  RunnerOptions RO = toRunnerOptions(A);
  EXPECT_EQ(RO.MaxInsts, 123456u);
}

TEST(BenchArgs, RejectsUnknownFlag) {
  const char *Argv[] = {"t", "--frobnicate"};
  BenchArgs A = parseBenchArgs(2, const_cast<char **>(Argv), "t");
  EXPECT_FALSE(A.Ok);
}

} // namespace
