//===- tests/jit/jit_unit_test.cpp - JIT building blocks --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the native tier's building blocks: the W^X code buffer
/// (reservation, on-demand commit, jump patching, protection flips), the
/// JITProgram compile/chain/run surface, the run-lock used to serialize
/// drivers, and side-exit state reconstruction across repeated runs of
/// one memoized program.
///
/// Everything native is guarded on jit::nativeAvailability() — on hosts
/// without executable mappings these tests degrade to checking the clean
/// refusal paths.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "jit/CodeBuffer.h"
#include "jit/JIT.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "sim/Predecode.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace vpo;

namespace {

bool nativeOk() { return jit::nativeAvailability().Ok; }

TEST(NativeAvailability, ProbeIsStableAndReasoned) {
  const jit::Availability &A = jit::nativeAvailability();
  // Once probed, the answer never changes for the process lifetime.
  EXPECT_EQ(&A, &jit::nativeAvailability());
  if (!A.Ok) {
    EXPECT_STRNE(A.Reason, "") << "refusals must carry a reason token";
  }
}

TEST(CodeBuffer, CommitsPagesOnDemandAndPatches) {
  auto Buf = jit::CodeBuffer::create(1 << 20);
  if (!Buf) {
    EXPECT_FALSE(nativeOk()) << "native probe passed but create() failed";
    return;
  }
  EXPECT_EQ(Buf->used(), 0u);
  EXPECT_EQ(Buf->committed(), 0u);
  EXPECT_TRUE(Buf->writable());

  // Append well past one page in odd-sized chunks; offsets are dense and
  // the committed prefix grows to cover them.
  uint8_t Chunk[197];
  std::memset(Chunk, 0x90, sizeof(Chunk)); // nop sled
  size_t Expected = 0;
  for (int I = 0; I < 50; ++I) {
    size_t Off = ~size_t(0);
    ASSERT_TRUE(Buf->append(Chunk, sizeof(Chunk), Off));
    EXPECT_EQ(Off, Expected);
    Expected += sizeof(Chunk);
  }
  EXPECT_EQ(Buf->used(), Expected);
  EXPECT_GE(Buf->committed(), Expected);
  EXPECT_GT(Buf->committed(), size_t(4096));

  // patch32 rewrites exactly four bytes.
  Buf->patch32(100, int32_t(0xdeadbeef));
  int32_t V = 0;
  std::memcpy(&V, Buf->base() + 100, 4);
  EXPECT_EQ(V, int32_t(0xdeadbeef));

  // Exhaustion: a reservation-sized append must fail cleanly.
  std::vector<uint8_t> Huge((1 << 20) + 1, 0x90);
  size_t Off = 0;
  EXPECT_FALSE(Buf->append(Huge.data(), Huge.size(), Off));
}

TEST(CodeBuffer, ExecutesEmittedCode) {
  auto Buf = jit::CodeBuffer::create(1 << 16);
  if (!Buf || !nativeOk())
    return;
  // mov eax, 0x2a; ret
  const uint8_t Code[] = {0xb8, 0x2a, 0x00, 0x00, 0x00, 0xc3};
  size_t Off = 0;
  ASSERT_TRUE(Buf->append(Code, sizeof(Code), Off));
  ASSERT_TRUE(Buf->makeExecutable());
  EXPECT_FALSE(Buf->writable());
  using Fn = int (*)();
  EXPECT_EQ(reinterpret_cast<Fn>(const_cast<uint8_t *>(Buf->base()))(), 42);
  // Flip back and patch the immediate: W^X round trip.
  ASSERT_TRUE(Buf->makeWritable());
  Buf->patch32(1, 7);
  ASSERT_TRUE(Buf->makeExecutable());
  EXPECT_EQ(reinterpret_cast<Fn>(const_cast<uint8_t *>(Buf->base()))(), 7);
}

/// Parses \p Text and predecodes its first function for alpha.
struct DecodedFixture {
  std::unique_ptr<Module> M;
  TargetMachine TM = makeAlphaTarget();
  DecodedFunction DF;

  explicit DecodedFixture(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    std::string DecErr;
    EXPECT_TRUE(predecodeFunction(*M->functions().front(), TM, DF, DecErr))
        << DecErr;
  }
};

const char *kSumLoop = "func @sum(r1) {\n"
                       "e:\n"
                       "  r2 = mov 0\n"
                       "  jmp body\n"
                       "body:\n"
                       "  r2 = add r2, r1\n"
                       "  r1 = sub r1, 1\n"
                       "  br.gts r1, 0, body, done\n"
                       "done:\n"
                       "  ret r2\n"
                       "}\n";

TEST(JITProgram, CompileChainsAndRuns) {
  DecodedFixture FX(kSumLoop);
  auto JP = jit::JITProgram::create(FX.DF, 1 << 20);
  if (!nativeOk()) {
    EXPECT_EQ(JP, nullptr);
    return;
  }
  ASSERT_NE(JP, nullptr);
  ASSERT_EQ(JP->numBlocks(), 3u);
  EXPECT_FALSE(JP->compiled(0));

  // Compile the loop body first (as promotion would), then the others.
  ASSERT_TRUE(JP->compileBlock(1));
  ASSERT_TRUE(JP->compileBlock(0));
  ASSERT_TRUE(JP->compileBlock(2));
  EXPECT_TRUE(JP->compiled(0) && JP->compiled(1) && JP->compiled(2));
  EXPECT_EQ(JP->stats().BlocksCompiled, 3u);
  EXPECT_GT(JP->stats().BytesEmitted, 0u);
  EXPECT_EQ(JP->codeBytes(), JP->stats().BytesEmitted);

  // Run the whole function natively from the entry block.
  Memory Mem;
  std::vector<uint64_t> Vals(FX.DF.poolSize());
  for (size_t I = 0; I < FX.DF.ConstPool.size(); ++I)
    Vals[FX.DF.NumRegs + I] = FX.DF.ConstPool[I];
  Vals[1] = 1000; // r1
  jit::ExecState S;
  S.Vals = Vals.data();
  S.MemData = Mem.data();
  S.MemSize = Mem.size();
  S.StepsRemaining = 1 << 20;
  ASSERT_EQ(JP->run(0, S), jit::ExitKind::Ret);
  EXPECT_EQ(S.ReturnValue, uint64_t(1000) * 1001 / 2);
  // 2 entry ops + 3 * 1000 body ops + 1 ret.
  EXPECT_EQ((uint64_t(1) << 20) - S.StepsRemaining, 2u + 3000u + 1u);
  EXPECT_EQ(S.Branches, 1000u + 1u); // jmp + 999 back-edges + exit br
}

TEST(JITProgram, BudgetGuardDeoptsBeforeBlockEffects) {
  DecodedFixture FX(kSumLoop);
  auto JP = jit::JITProgram::create(FX.DF, 1 << 20);
  if (!JP)
    return;
  ASSERT_TRUE(JP->compileBlock(0));
  ASSERT_TRUE(JP->compileBlock(1));
  ASSERT_TRUE(JP->compileBlock(2));

  Memory Mem;
  std::vector<uint64_t> Vals(FX.DF.poolSize());
  for (size_t I = 0; I < FX.DF.ConstPool.size(); ++I)
    Vals[FX.DF.NumRegs + I] = FX.DF.ConstPool[I];
  Vals[1] = 1000;
  jit::ExecState S;
  S.Vals = Vals.data();
  S.MemData = Mem.data();
  S.MemSize = Mem.size();
  S.StepsRemaining = 4; // entry (2) fits; first body entry (3) does not
  ASSERT_EQ(JP->run(0, S), jit::ExitKind::Deopt);
  EXPECT_EQ(static_cast<jit::DeoptReason>(S.Deopt),
            jit::DeoptReason::Budget);
  EXPECT_EQ(S.ResumeBlock, 1u);
  // The guard fired before any body effect: exactly the entry block's two
  // ops were charged, and r2 still holds the pre-body value.
  EXPECT_EQ(S.StepsRemaining, 2u);
  EXPECT_EQ(Vals[2], 0u);
  EXPECT_EQ(Vals[1], 1000u);
}

TEST(JITProgram, ColdTargetDeoptRecordsResumeBlock) {
  DecodedFixture FX(kSumLoop);
  auto JP = jit::JITProgram::create(FX.DF, 1 << 20);
  if (!JP)
    return;
  // Only the entry compiles; its jmp to the (cold) body must deopt with
  // ResumeBlock = 1 and the entry's effects committed.
  ASSERT_TRUE(JP->compileBlock(0));

  Memory Mem;
  std::vector<uint64_t> Vals(FX.DF.poolSize());
  for (size_t I = 0; I < FX.DF.ConstPool.size(); ++I)
    Vals[FX.DF.NumRegs + I] = FX.DF.ConstPool[I];
  Vals[1] = 5;
  jit::ExecState S;
  S.Vals = Vals.data();
  S.MemData = Mem.data();
  S.MemSize = Mem.size();
  S.StepsRemaining = 100;
  ASSERT_EQ(JP->run(0, S), jit::ExitKind::Deopt);
  EXPECT_EQ(static_cast<jit::DeoptReason>(S.Deopt),
            jit::DeoptReason::ColdTarget);
  EXPECT_EQ(S.ResumeBlock, 1u);
  EXPECT_EQ(S.StepsRemaining, 98u); // entry's 2 ops charged
  EXPECT_EQ(S.Branches, 1u);        // the jmp itself

  // Compiling the body later patches the recorded site: the same entry
  // now chains straight through to Ret.
  ASSERT_TRUE(JP->compileBlock(1));
  ASSERT_TRUE(JP->compileBlock(2));
  Vals[1] = 5;
  Vals[2] = 0;
  S.StepsRemaining = 100;
  S.Branches = 0;
  ASSERT_EQ(JP->run(0, S), jit::ExitKind::Ret);
  EXPECT_EQ(S.ReturnValue, 15u);
}

TEST(JITProgram, RunLockSerializesDrivers) {
  DecodedFixture FX(kSumLoop);
  auto JP = jit::JITProgram::create(FX.DF, 1 << 20);
  if (!JP)
    return;
  ASSERT_TRUE(JP->tryAcquire());
  EXPECT_FALSE(JP->tryAcquire()) << "second driver must lose the lock";
  JP->release();
  EXPECT_TRUE(JP->tryAcquire());
  JP->release();
}

TEST(JITProgram, ExhaustedCodeReservationFailsBlockCleanly) {
  // One giant block whose emitted code cannot fit a single-page
  // reservation: the compile fails, is remembered as failed, and the
  // driver keeps interpreting — nothing crashes, nothing half-patches.
  std::string Text = "func @big(r1) {\ne:\n";
  for (int I = 0; I < 2000; ++I)
    Text += "  r1 = add r1, 7\n";
  Text += "  ret r1\n}\n";
  DecodedFixture FX(Text);
  auto JP = jit::JITProgram::create(FX.DF, 4096);
  if (!JP)
    return;
  EXPECT_FALSE(JP->compileBlock(0));
  EXPECT_TRUE(JP->compileFailed(0));
  EXPECT_FALSE(JP->compiled(0));
  EXPECT_GT(JP->stats().CompileFailures, 0u);

  // And the tiered engine still produces the exact result through the
  // interpreter tier despite the permanently-failed block.
  Memory Mem;
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITHotThreshold = 1;
  O.JITMaxCodeBytes = 4096;
  Interpreter I(FX.TM, Mem, O);
  RunResult R = I.run(*FX.M->functions().front(), {1});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ReturnValue, 1 + 2000 * 7);
}

/// Hotness accumulates across run(DecodedFunction) calls on one
/// Interpreter (the memoized program), and a later mutation of the source
/// function is caught by the identity revalidation.
TEST(JITMemo, HotnessPersistsAcrossRuns) {
  std::string Err;
  auto M = parseModule(kSumLoop, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  TargetMachine TM = makeAlphaTarget();
  DecodedFunction DF;
  std::string DecErr;
  ASSERT_TRUE(predecodeFunction(F, TM, DF, DecErr)) << DecErr;

  Memory Mem;
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITHotThreshold = 6; // crossed only by accumulation across runs
  Interpreter I(TM, Mem, O);
  for (int Rep = 0; Rep < 20; ++Rep) {
    RunResult R = I.run(DF, {50});
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.ReturnValue, 50 * 51 / 2);
    EXPECT_EQ(R.Instructions, 2u + 3u * 50u + 1u);
  }
}

/// Trace invalidation end to end: a cached-and-compiled function that is
/// then mutated must execute its *new* body (stale native code would
/// return the old sum).
TEST(JITMemo, MutationInvalidatesCompiledTraces) {
  std::string Err;
  auto M = parseModule(kSumLoop, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  TargetMachine TM = makeAlphaTarget();

  Memory Mem;
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITHotThreshold = 1;
  Interpreter I(TM, Mem, O);
  RunResult Before = I.run(F, {100});
  ASSERT_TRUE(Before.ok()) << Before.Error;
  EXPECT_EQ(Before.ReturnValue, 100 * 101 / 2);
  uint64_t V0 = F.version();

  // Mutate the body: add r2, r1 -> add r2, 1 turns sum into a count.
  BasicBlock *Body = F.blocks()[1].get();
  Body->insts()[0].B = Operand::imm(1);
  EXPECT_NE(F.version(), V0) << "mutation must bump the version";

  RunResult After = I.run(F, {100});
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.ReturnValue, 100);

  // And the reference engine agrees on the mutated body.
  Memory MemRef;
  Interpreter Ref(TM, MemRef, InterpreterOptions{/*Predecode=*/false});
  EXPECT_EQ(Ref.run(F, {100}).ReturnValue, 100);
}

} // namespace
