//===- tests/jit/jit_differential_test.cpp - three-engine oracle -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential suite for the functional tiered engine (interpreter + JIT,
/// InterpreterOptions::EnableJIT). The cycle-accurate reference walk is
/// the executable specification; the tiered engine must reproduce every
/// *architectural* observable bit for bit — status, diagnostic text,
/// return value, instruction and memory-reference counts, and the final
/// memory image — while reporting Cycles = 0 and empty cache stats.
///
/// Thresholds are forced low so hot blocks actually promote to native
/// code (where the platform supports it); on platforms without native
/// support the same tests exercise the interpreted tier, which must be
/// equally exact.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "jit/JIT.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "sim/Predecode.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace vpo;

namespace {

/// Interpreter options for the tiered engine with promotion forced early,
/// so even short runs reach native code where the platform has it.
InterpreterOptions jitOptions(uint64_t Threshold = 2) {
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITHotThreshold = Threshold;
  return O;
}

/// Asserts the tiered engine reproduced every architectural observable of
/// the reference run, and that it reported no timing (the functional
/// engine's contract: Cycles = 0, no cache model).
void expectSameArch(const RunResult &Ref, const RunResult &Jit,
                    const std::string &What) {
  EXPECT_EQ(Ref.Exit, Jit.Exit) << What;
  EXPECT_EQ(Ref.Error, Jit.Error) << What;
  EXPECT_EQ(Ref.ReturnValue, Jit.ReturnValue) << What;
  EXPECT_EQ(Ref.Instructions, Jit.Instructions) << What;
  EXPECT_EQ(Ref.Loads, Jit.Loads) << What;
  EXPECT_EQ(Ref.Stores, Jit.Stores) << What;
  EXPECT_EQ(Ref.LoadBytes, Jit.LoadBytes) << What;
  EXPECT_EQ(Ref.StoreBytes, Jit.StoreBytes) << What;
  EXPECT_EQ(Ref.Branches, Jit.Branches) << What;
  EXPECT_EQ(Jit.Cycles, 0u) << "functional engine must not model cycles: "
                            << What;
  EXPECT_EQ(Jit.Cache.Accesses, 0u) << What;
  EXPECT_EQ(Jit.ICache.Accesses, 0u) << What;
}

/// Runs compiled \p F through the reference engine and the tiered engine
/// on identically-prepared memories and asserts architectural equality,
/// including the final memory image.
void runRefVsJit(const Workload &W, Function &F, const TargetMachine &TM,
                 const SetupOptions &SO, const std::string &What) {
  Memory MemRef, MemJit;
  SetupResult SRef = W.setup(MemRef, SO);
  SetupResult SJit = W.setup(MemJit, SO);
  ASSERT_EQ(SRef.Args, SJit.Args) << "setup must be deterministic: " << What;

  Interpreter Ref(TM, MemRef, InterpreterOptions{/*Predecode=*/false});
  Interpreter Jit(TM, MemJit, jitOptions());
  RunResult RRef = Ref.run(F, SRef.Args);
  RunResult RJit = Jit.run(F, SJit.Args);

  expectSameArch(RRef, RJit, What);
  EXPECT_EQ(std::memcmp(MemRef.data(), MemJit.data(), MemRef.size()), 0)
      << "final memory images differ: " << What;
}

/// The full evaluation matrix at a reduced problem size: every workload,
/// on each of the three target models, under each paper configuration.
/// (predecode_test.cpp covers reference-vs-predecode on the same matrix;
/// together the two suites pin all three engines to each other.)
TEST(JITDifferential, EveryWorkloadTargetAndConfig) {
  const char *Targets[] = {"alpha", "m88100", "m68030"};
  SetupOptions SO;
  SO.N = 768;
  SO.Width = 24;
  SO.Height = 24;

  for (const auto &W : allWorkloads()) {
    for (const char *Target : Targets) {
      TargetMachine TM = makeTargetByName(Target);
      for (const PipelineConfig &PC : paperConfigs()) {
        Module M;
        Function *F = W->build(M);
        compileFunction(*F, TM, PC.Options);
        runRefVsJit(*W, *F, TM, SO,
                    std::string(W->name()) + "/" + Target + "/" + PC.Name);
      }
    }
  }
}

/// Skewed and overlapping layouts push the coalescer's run-time checks
/// onto their safe paths — heavy branching the compiled traces must
/// side-exit through exactly like the interpreter.
TEST(JITDifferential, SkewedAndOverlappingLayouts) {
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;

  for (const auto &W : allWorkloads()) {
    for (int Overlap = 0; Overlap <= 1; ++Overlap) {
      SetupOptions SO;
      SO.N = 768;
      SO.Width = 24;
      SO.Height = 24;
      SO.Skew = 4;
      SO.OverlapMode = Overlap;
      Module M;
      Function *F = W->build(M);
      compileFunction(*F, TM, CO);
      runRefVsJit(*W, *F, TM, SO,
                  std::string(W->name()) + "/skew4/overlap" +
                      std::to_string(Overlap));
    }
  }
}

/// Runs \p Text through the reference engine and the tiered engine (with
/// promotion at the *first* block entry, so trap and deopt paths execute
/// natively where supported) and asserts identical outcomes including the
/// diagnostic string. \returns the shared exit status.
RunResult::Status runTextBoth(const std::string &Text,
                              std::vector<int64_t> Args,
                              const TargetMachine &TM,
                              uint64_t MaxSteps = 500'000'000) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_NE(M, nullptr) << Err;
  Memory MemRef, MemJit;
  Interpreter Ref(TM, MemRef, InterpreterOptions{/*Predecode=*/false});
  Interpreter Jit(TM, MemJit, jitOptions(/*Threshold=*/1));
  RunResult RRef = Ref.run(*M->functions().front(), Args, MaxSteps);
  RunResult RJit = Jit.run(*M->functions().front(), Args, MaxSteps);
  expectSameArch(RRef, RJit, Text);
  EXPECT_EQ(std::memcmp(MemRef.data(), MemJit.data(), MemRef.size()), 0)
      << "final memory images differ: " << Text;
  return RJit.Exit;
}

TEST(JITDifferential, UnalignedTrapMessagesMatch) {
  // The diagnostic embeds the faulting address and the printed
  // instruction; the native trap stub's (kind, op, address) record must
  // rebuild the same string.
  Memory Probe;
  uint64_t A = Probe.allocate(64, 8);
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i32.u [r1+2]\n"
                        "  ret r2\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, makeAlphaTarget()),
            RunResult::Status::UnalignedTrap);
}

TEST(JITDifferential, OutOfBoundsTrapMessagesMatch) {
  // Below the 4 KB guard page and beyond the arena, loads and stores.
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i8.u [r1]\n"
                        "  ret r2\n"
                        "}\n",
                        {0}, makeAlphaTarget()),
            RunResult::Status::OutOfBounds);
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  store.i64 [r1], 255\n"
                        "  ret 0\n"
                        "}\n",
                        {int64_t(1) << 40}, makeAlphaTarget()),
            RunResult::Status::OutOfBounds);
}

TEST(JITDifferential, DivideByZeroTrapMessagesMatch) {
  for (const char *Op : {"divs", "divu", "rems", "remu"}) {
    EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                          "e:\n"
                          "  r2 = " +
                              std::string(Op) +
                              " r1, 0\n"
                              "  ret r2\n"
                              "}\n",
                          {5}, makeAlphaTarget()),
              RunResult::Status::DivideByZero);
  }
}

/// A trap in the middle of a hot loop body: the loop spins natively for
/// many iterations before the faulting one, so the trap stub's counter
/// compensation (prefix-only effects of the faulting iteration) is what
/// keeps Instructions/Loads exact.
TEST(JITDifferential, TrapAfterHotLoopMatches) {
  Memory Probe;
  uint64_t Base = Probe.allocate(4096, 8);
  // Walks 8 bytes per iteration until it runs off the end of the arena
  // (~2M natively-executed iterations in), faulting on a load with a
  // partially-updated iteration state.
  EXPECT_EQ(runTextBoth("func @f(r1, r2) {\n"
                        "e:\n"
                        "  r3 = mov 0\n"
                        "  jmp body\n"
                        "body:\n"
                        "  r4 = load.i64.u [r1]\n"
                        "  r3 = add r3, r4\n"
                        "  r1 = add r1, 8\n"
                        "  r2 = sub r2, 1\n"
                        "  br.gts r2, 0, body, done\n"
                        "done:\n"
                        "  ret r3\n"
                        "}\n",
                        {static_cast<int64_t>(Base), 3 << 20},
                        makeAlphaTarget()),
            RunResult::Status::OutOfBounds);
}

/// Zero-trip loops: the body block never becomes hot, and on forced-hot
/// settings the compiled entry block must branch around it exactly like
/// the interpreter.
TEST(JITDifferential, ZeroTripLoopMatches) {
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = mov 0\n"
                        "  br.gts r1, 0, body, done\n"
                        "body:\n"
                        "  r2 = add r2, r1\n"
                        "  r1 = sub r1, 1\n"
                        "  br.gts r1, 0, body, done\n"
                        "done:\n"
                        "  ret r2\n"
                        "}\n",
                        {0}, makeAlphaTarget()),
            RunResult::Status::Ok);
}

/// MaxSteps exhaustion inside a compiled trace: the block-entry budget
/// guard deopts, the interpreter replays the block per-op, and the run
/// stops at exactly the reference instruction with the same diagnostic.
TEST(JITDifferential, StepLimitExhaustionDeoptMatches) {
  for (uint64_t MaxSteps : {997u, 998u, 999u, 1000u}) {
    EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                          "e:\n"
                          "  r2 = add r1, 1\n"
                          "  jmp e\n"
                          "}\n",
                          {0}, makeAlphaTarget(), MaxSteps),
              RunResult::Status::StepLimit);
  }
}

TEST(JITDifferential, MalformedIRRejectedBeforeExecution) {
  std::string Err;
  auto M = parseModule("func @f(r1) {\ne:\n  ret r1\n}\n", &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  Instruction Bad;
  Bad.Op = Opcode::Mov;
  Bad.Dst = Reg(1);
  Bad.A = Reg(9999); // beyond the allocator bound
  F.entry()->insertAt(0, Bad);

  Memory Mem;
  Interpreter I(makeAlphaTarget(), Mem, jitOptions());
  RunResult R = I.run(F, {0});
  EXPECT_EQ(R.Exit, RunResult::Status::MalformedIR);
  EXPECT_EQ(R.Instructions, 0u);

  // And the diagnostic matches the reference engine's byte for byte.
  Memory MemRef;
  Interpreter Ref(makeAlphaTarget(), MemRef,
                  InterpreterOptions{/*Predecode=*/false});
  EXPECT_EQ(Ref.run(F, {0}).Error, R.Error);
}

/// The repeated-run entry point run(DecodedFunction): the JIT program is
/// memoized inside the Interpreter, hotness accumulates across calls, and
/// every repeat must still match the one-shot reference result.
TEST(JITDifferential, DecodedFunctionReuseMatches) {
  auto W = makeWorkloadByName("image_add");
  ASSERT_NE(W, nullptr);
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  compileFunction(*F, TM, CO);

  DecodedFunction DF;
  std::string Error;
  ASSERT_TRUE(predecodeFunction(*F, TM, DF, Error)) << Error;

  SetupOptions SO;
  SO.N = 768;
  Memory MemRef;
  SetupResult SRef = W->setup(MemRef, SO);
  Interpreter Ref(TM, MemRef, InterpreterOptions{/*Predecode=*/false});
  RunResult Baseline = Ref.run(*F, SRef.Args);
  ASSERT_TRUE(Baseline.ok()) << Baseline.Error;

  for (int Rep = 0; Rep < 5; ++Rep) {
    Memory Mem;
    SetupResult S = W->setup(Mem, SO);
    Interpreter I(TM, Mem, jitOptions());
    RunResult R = I.run(DF, S.Args);
    expectSameArch(Baseline, R, "decoded rep " + std::to_string(Rep));
    EXPECT_EQ(std::memcmp(MemRef.data(), Mem.data(), Mem.size()), 0);
  }
}

/// Looks up \p Key in a remark's ordered args. \returns "" when absent.
std::string remarkArg(const Remark &R, const char *Key) {
  for (const auto &KV : R.Args)
    if (std::strcmp(KV.first, Key) == 0)
      return KV.second;
  return "";
}

/// The telemetry contract: a hot run emits one jit-summary remark, and on
/// native-capable hosts it proves promotion + native entries actually
/// happened (this is the test that fails if the tier silently never
/// engages).
TEST(JITTelemetry, SummaryRemarkProvesNativeExecution) {
  std::string Err;
  auto M = parseModule("func @hot(r1) {\n"
                       "e:\n"
                       "  r2 = mov 0\n"
                       "  jmp body\n"
                       "body:\n"
                       "  r2 = add r2, r1\n"
                       "  r1 = sub r1, 1\n"
                       "  br.gts r1, 0, body, done\n"
                       "done:\n"
                       "  ret r2\n"
                       "}\n",
                       &Err);
  ASSERT_NE(M, nullptr) << Err;

  CollectingRemarkSink Sink;
  InterpreterOptions O = jitOptions(/*Threshold=*/4);
  O.Remarks = &Sink;
  Memory Mem;
  Interpreter I(makeAlphaTarget(), Mem, O);
  RunResult R = I.run(*M->functions().front(), {10000});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ReturnValue, int64_t(10000) * 10001 / 2);

  if (jit::nativeAvailability().Ok) {
    ASSERT_EQ(Sink.count("jit-summary"), 1u) << Sink.renderAll();
    const Remark *Summary = nullptr;
    for (const Remark &Rm : Sink.remarks())
      if (std::strcmp(Rm.Reason, "jit-summary") == 0)
        Summary = &Rm;
    ASSERT_NE(Summary, nullptr);
    EXPECT_EQ(Summary->Fn, "hot");
    EXPECT_NE(remarkArg(*Summary, "blocks-compiled"), "0");
    EXPECT_NE(remarkArg(*Summary, "native-entries"), "0");
    EXPECT_NE(remarkArg(*Summary, "promotions"), "0");
  } else {
    // No native tier: the engine must say why, once, with the probe's
    // stable reason token.
    ASSERT_EQ(Sink.count("jit-disabled"), 1u) << Sink.renderAll();
    EXPECT_EQ(Sink.count("jit-summary"), 0u);
  }
}

/// JITNative = false (service rung-2 / --no-jit): the engine stays on the
/// interpreted tier, reports reason "native-off", and still matches the
/// reference exactly.
TEST(JITTelemetry, NativeOffStaysInterpretedAndExact) {
  std::string Err;
  auto M = parseModule("func @f(r1) {\n"
                       "e:\n"
                       "  r2 = mov 0\n"
                       "  jmp body\n"
                       "body:\n"
                       "  r2 = add r2, r1\n"
                       "  r1 = sub r1, 1\n"
                       "  br.gts r1, 0, body, done\n"
                       "done:\n"
                       "  ret r2\n"
                       "}\n",
                       &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();

  CollectingRemarkSink Sink;
  InterpreterOptions O = jitOptions();
  O.JITNative = false;
  O.Remarks = &Sink;
  Memory MemJit, MemRef;
  Interpreter Jit(makeAlphaTarget(), MemJit, O);
  Interpreter Ref(makeAlphaTarget(), MemRef,
                  InterpreterOptions{/*Predecode=*/false});
  RunResult RJit = Jit.run(F, {500});
  RunResult RRef = Ref.run(F, {500});
  expectSameArch(RRef, RJit, "native-off");

  ASSERT_EQ(Sink.count("jit-disabled"), 1u) << Sink.renderAll();
  const Remark &D = Sink.remarks().front();
  EXPECT_EQ(remarkArg(D, "reason"), "native-off");
}

/// Remarks are read-only telemetry: running with and without a sink must
/// produce identical results (observer-effect guard for the jit remarks).
TEST(JITTelemetry, SinkDoesNotPerturbExecution) {
  auto W = makeWorkloadByName("image_add");
  ASSERT_NE(W, nullptr);
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  compileFunction(*F, TM, CO);

  SetupOptions SO;
  SO.N = 768;

  Memory MemA, MemB;
  SetupResult SA = W->setup(MemA, SO);
  SetupResult SB = W->setup(MemB, SO);
  CollectingRemarkSink Sink;
  InterpreterOptions WithSink = jitOptions();
  WithSink.Remarks = &Sink;
  Interpreter A(TM, MemA, jitOptions());
  Interpreter B(TM, MemB, WithSink);
  RunResult RA = A.run(*F, SA.Args);
  RunResult RB = B.run(*F, SB.Args);
  expectSameArch(RA, RB, "observer effect");
  EXPECT_EQ(RA.Cycles, RB.Cycles);
  EXPECT_EQ(std::memcmp(MemA.data(), MemB.data(), MemA.size()), 0);
}

} // namespace
