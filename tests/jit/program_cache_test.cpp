//===- tests/jit/program_cache_test.cpp - program cache ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the process-global program cache (sim/ProgramCache.h): the
/// identity-keyed reuse of verified + predecoded (+ JIT) forms across
/// Interpreter::run(Function) calls, invalidation-by-version on IR
/// mutation, target-fingerprint separation, and LRU eviction.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "sim/ProgramCache.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

std::unique_ptr<Module> parseOne(const std::string &Text) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

const char *kAddFunc = "func @f(r1) {\n"
                       "e:\n"
                       "  r2 = add r1, 1\n"
                       "  ret r2\n"
                       "}\n";

TEST(ProgramCache, RepeatedLookupsHitAndShare) {
  programCacheClear();
  auto M = parseOne(kAddFunc);
  Function &F = *M->functions().front();
  TargetMachine TM = makeAlphaTarget();

  ProgramCacheStats S0 = programCacheStats();
  auto P1 = getOrBuildProgram(F, TM);
  auto P2 = getOrBuildProgram(F, TM);
  ASSERT_NE(P1, nullptr);
  EXPECT_EQ(P1.get(), P2.get()) << "same revision must share one entry";
  EXPECT_TRUE(P1->VerifyOk);
  EXPECT_TRUE(P1->DecodeOk);
  EXPECT_EQ(P1->DF.source(), &F);

  ProgramCacheStats S1 = programCacheStats();
  EXPECT_EQ(S1.Misses, S0.Misses + 1);
  EXPECT_EQ(S1.Hits, S0.Hits + 1);
}

TEST(ProgramCache, MutationChangesTheKey) {
  programCacheClear();
  auto M = parseOne(kAddFunc);
  Function &F = *M->functions().front();
  TargetMachine TM = makeAlphaTarget();

  auto P1 = getOrBuildProgram(F, TM);
  F.entry()->insts()[0].B = Operand::imm(2); // bumps version()
  auto P2 = getOrBuildProgram(F, TM);
  EXPECT_NE(P1.get(), P2.get()) << "mutated function must rebuild";

  // Both entries stay alive and usable (shared_ptr ownership): the old
  // revision's decoded form still points at the function object.
  EXPECT_TRUE(P1->DecodeOk);
  EXPECT_TRUE(P2->DecodeOk);
}

TEST(ProgramCache, TargetSpecSeparatesEntries) {
  programCacheClear();
  auto M = parseOne(kAddFunc);
  Function &F = *M->functions().front();

  auto PAlpha = getOrBuildProgram(F, makeTargetByName("alpha"));
  auto PM88 = getOrBuildProgram(F, makeTargetByName("m88100"));
  EXPECT_NE(PAlpha.get(), PM88.get())
      << "different target specs must not share predecoded forms";
  // Re-requesting either is a pure hit.
  EXPECT_EQ(getOrBuildProgram(F, makeTargetByName("alpha")).get(),
            PAlpha.get());
}

TEST(ProgramCache, VerificationFailureIsCachedToo) {
  programCacheClear();
  auto M = parseOne(kAddFunc);
  Function &F = *M->functions().front();
  Instruction Bad;
  Bad.Op = Opcode::Mov;
  Bad.Dst = Reg(1);
  Bad.A = Reg(9999);
  F.entry()->insertAt(0, Bad);

  TargetMachine TM = makeAlphaTarget();
  ProgramCacheStats S0 = programCacheStats();
  auto P1 = getOrBuildProgram(F, TM);
  EXPECT_FALSE(P1->VerifyOk);
  EXPECT_FALSE(P1->VerifyProblems.empty());
  // The negative result is reused, not recomputed.
  auto P2 = getOrBuildProgram(F, TM);
  EXPECT_EQ(P1.get(), P2.get());
  EXPECT_EQ(programCacheStats().Misses, S0.Misses + 1);

  // And the interpreter surfaces it as MalformedIR on every engine.
  Memory Mem;
  Interpreter I(TM, Mem);
  RunResult R = I.run(F, {0});
  EXPECT_EQ(R.Exit, RunResult::Status::MalformedIR);
}

TEST(ProgramCache, EvictsLeastRecentlyUsed) {
  programCacheClear();
  TargetMachine TM = makeAlphaTarget();
  ProgramCacheStats S0 = programCacheStats();

  // More distinct functions than the cache holds: the tail must be
  // evicted without disturbing correctness of later lookups.
  std::vector<std::unique_ptr<Module>> Keep;
  for (int I = 0; I < 80; ++I) {
    auto M = parseOne(kAddFunc);
    getOrBuildProgram(*M->functions().front(), TM);
    Keep.push_back(std::move(M));
  }
  ProgramCacheStats S1 = programCacheStats();
  EXPECT_EQ(S1.Misses, S0.Misses + 80);
  EXPECT_GT(S1.Evictions, S0.Evictions);

  // An evicted function simply rebuilds on next use.
  auto P = getOrBuildProgram(*Keep.front()->functions().front(), TM);
  EXPECT_TRUE(P->DecodeOk);
}

/// End to end through the interpreter: repeated run(F) calls stop paying
/// verify + predecode after the first (this was the PR's first satellite
/// fix — run() used to re-lower every call).
TEST(ProgramCache, InterpreterRunsHitTheCache) {
  programCacheClear();
  auto M = parseOne(kAddFunc);
  Function &F = *M->functions().front();
  TargetMachine TM = makeAlphaTarget();

  Memory Mem;
  Interpreter I(TM, Mem);
  ProgramCacheStats S0 = programCacheStats();
  for (int Rep = 0; Rep < 10; ++Rep) {
    RunResult R = I.run(F, {int64_t(Rep)});
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.ReturnValue, Rep + 1);
  }
  ProgramCacheStats S1 = programCacheStats();
  EXPECT_EQ(S1.Misses, S0.Misses + 1);
  EXPECT_GE(S1.Hits, S0.Hits + 9);
}

} // namespace
