//===- tests/jit/jit_quarantine_test.cpp - native-fault quarantine --------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The self-healing contract of the native tier: a hardware fault inside
/// emitted code (proved with the seeded wild-store injector,
/// InterpreterOptions::JITPlantWildStore) must be contained — the
/// faulting block is quarantined (permanent deopt, chain sites
/// un-patched, never recompiled), the run resumes on the interpreter at
/// the exact faulting op and produces the byte-identical reference
/// result, and telemetry records a structured jit-native-fault remark
/// plus native-faults / blocks-quarantined counters in jit-summary.
///
/// The VPO_NO_JIT / JITNative=false side of the contract rides along:
/// with native execution off, the fault handlers are never installed
/// (NativeFaultScope::installCount() stays zero) and results are
/// byte-identical anyway.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "jit/JIT.h"
#include "jit/NativeFault.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

using namespace vpo;

namespace {

/// A two-block hot loop with memory traffic: the load/store counters and
/// the memory image make corrupted-but-unquarantined execution visible.
const char *LoopKernel = "func @k(r1, r2) {\n"
                         "e:\n"
                         "  r3 = mov 0\n"
                         "  r4 = mov 0\n"
                         "  jmp head\n"
                         "head:\n"
                         "  br.lts r4, r2, body, done\n"
                         "body:\n"
                         "  r5 = load.i16.s [r1]\n"
                         "  r3 = add r3, r5\n"
                         "  r1 = add r1, 2\n"
                         "  r4 = add r4, 1\n"
                         "  jmp head\n"
                         "done:\n"
                         "  ret r3\n"
                         "}\n";

void fillArena(Memory &Mem) {
  for (uint64_t A = 4096; A < 4096 + 2048; A += 2)
    Mem.tryWrite(A, 2, (A / 2) % 251);
}

std::string remarkArg(const Remark &R, const char *Key) {
  for (const auto &KV : R.Args)
    if (std::strcmp(KV.first, Key) == 0)
      return KV.second;
  return "";
}

const Remark *findRemark(const CollectingRemarkSink &Sink,
                         const char *Reason) {
  for (const Remark &R : Sink.remarks())
    if (std::strcmp(R.Reason, Reason) == 0)
      return &R;
  return nullptr;
}

/// Reference result: the cycle-accurate IR walk, no JIT anywhere near it.
RunResult referenceRun(Function &F, int64_t N) {
  Memory Mem;
  fillArena(Mem);
  Interpreter I(makeAlphaTarget(), Mem,
                InterpreterOptions{/*Predecode=*/false});
  return I.run(F, {4096, N});
}

void expectSameArch(const RunResult &Ref, const RunResult &Got) {
  EXPECT_EQ(Ref.Exit, Got.Exit);
  EXPECT_EQ(Ref.Error, Got.Error);
  EXPECT_EQ(Ref.ReturnValue, Got.ReturnValue);
  EXPECT_EQ(Ref.Instructions, Got.Instructions);
  EXPECT_EQ(Ref.Loads, Got.Loads);
  EXPECT_EQ(Ref.Stores, Got.Stores);
  EXPECT_EQ(Ref.LoadBytes, Got.LoadBytes);
  EXPECT_EQ(Ref.StoreBytes, Got.StoreBytes);
  EXPECT_EQ(Ref.Branches, Got.Branches);
}

/// Plant a wild store in the first compiled block: the fault must yield
/// the reference-identical result, one jit-native-fault remark, and a
/// quarantine recorded in jit-summary.
TEST(Quarantine, PlantedWildStoreMatchesReference) {
  if (!jit::nativeAvailability().Ok)
    GTEST_SKIP() << "native tier unavailable: "
                 << jit::nativeAvailability().Reason;

  std::string Err;
  auto M = parseModule(LoopKernel, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  RunResult Ref = referenceRun(F, 200);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  CollectingRemarkSink Sink;
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITHotThreshold = 2;
  O.JITPlantWildStore = 1;
  O.Remarks = &Sink;
  Memory MemJit, MemRef;
  fillArena(MemJit);
  fillArena(MemRef);
  Interpreter I(makeAlphaTarget(), MemJit, O);
  RunResult R = I.run(F, {4096, 200});

  ASSERT_TRUE(R.ok()) << R.Error;
  expectSameArch(Ref, R);
  EXPECT_EQ(std::memcmp(MemJit.data(), MemRef.data(), MemJit.size()), 0)
      << "quarantine replay corrupted the memory image";

  ASSERT_EQ(Sink.count("jit-native-fault"), 1u) << Sink.renderAll();
  const Remark *Fault = findRemark(Sink, "jit-native-fault");
  ASSERT_NE(Fault, nullptr);
  EXPECT_EQ(remarkArg(*Fault, "kind"), "segv");
  EXPECT_EQ(remarkArg(*Fault, "attributed"), "true");
  EXPECT_FALSE(remarkArg(*Fault, "block").empty());
  EXPECT_FALSE(remarkArg(*Fault, "pc-off").empty());

  const Remark *Summary = findRemark(Sink, "jit-summary");
  ASSERT_NE(Summary, nullptr) << Sink.renderAll();
  EXPECT_EQ(remarkArg(*Summary, "native-faults"), "1");
  EXPECT_EQ(remarkArg(*Summary, "blocks-quarantined"), "1");

  // Second run of the same function: the quarantined block must never
  // recompile — no new fault, cumulative counters unchanged, result
  // still exact (the block runs interpreted forever).
  CollectingRemarkSink Sink2;
  InterpreterOptions O2 = O;
  O2.Remarks = &Sink2;
  Memory MemJit2, MemRef2;
  fillArena(MemJit2);
  fillArena(MemRef2);
  Interpreter I2(makeAlphaTarget(), MemJit2, O2);
  RunResult R2 = I2.run(F, {4096, 200});
  ASSERT_TRUE(R2.ok()) << R2.Error;
  expectSameArch(Ref, R2);
  EXPECT_EQ(std::memcmp(MemJit2.data(), MemRef2.data(), MemJit2.size()), 0);
  EXPECT_EQ(Sink2.count("jit-native-fault"), 0u) << Sink2.renderAll();
  const Remark *Summary2 = findRemark(Sink2, "jit-summary");
  ASSERT_NE(Summary2, nullptr) << Sink2.renderAll();
  EXPECT_EQ(remarkArg(*Summary2, "native-faults"), "1");
  EXPECT_EQ(remarkArg(*Summary2, "blocks-quarantined"), "1");
}

/// Plant in the *second* compiled block: by then the first block has
/// chained a direct jump to it, and quarantine must un-patch that chain
/// site back to the deopt stub — otherwise the next native entry jumps
/// straight back into the corrupted code.
TEST(Quarantine, ChainSitesUnpatchedOnQuarantine) {
  if (!jit::nativeAvailability().Ok)
    GTEST_SKIP() << "native tier unavailable: "
                 << jit::nativeAvailability().Reason;

  std::string Err;
  auto M = parseModule(LoopKernel, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  RunResult Ref = referenceRun(F, 500);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  CollectingRemarkSink Sink;
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITHotThreshold = 2;
  O.JITPlantWildStore = 2;
  O.Remarks = &Sink;
  Memory MemJit, MemRef;
  fillArena(MemJit);
  fillArena(MemRef);
  Interpreter I(makeAlphaTarget(), MemJit, O);
  RunResult R = I.run(F, {4096, 500});

  ASSERT_TRUE(R.ok()) << R.Error;
  expectSameArch(Ref, R);
  EXPECT_EQ(std::memcmp(MemJit.data(), MemRef.data(), MemJit.size()), 0);
  // Exactly one fault: were the chain site still patched to the
  // quarantined entry, the loop would re-fault (or worse) every
  // iteration.
  EXPECT_EQ(Sink.count("jit-native-fault"), 1u) << Sink.renderAll();
  const Remark *Summary = findRemark(Sink, "jit-summary");
  ASSERT_NE(Summary, nullptr) << Sink.renderAll();
  EXPECT_EQ(remarkArg(*Summary, "native-faults"), "1");
  EXPECT_EQ(remarkArg(*Summary, "blocks-quarantined"), "1");
}

/// With native execution off, the plant is inert and the fault handlers
/// are never installed — the VPO_NO_JIT=1 CI pass runs this same test
/// with nativeAvailability() vetoed, proving byte-identical interpreted
/// behavior with zero signal-handler footprint.
TEST(Quarantine, NativeOffNeverInstallsHandlers) {
  const uint64_t Before = jit::NativeFaultScope::installCount();
  EXPECT_FALSE(jit::NativeFaultScope::handlersActive());

  std::string Err;
  auto M = parseModule(LoopKernel, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  RunResult Ref = referenceRun(F, 300);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  CollectingRemarkSink Sink;
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITNative = false; // interpreted tier only
  O.JITHotThreshold = 2;
  O.JITPlantWildStore = 1; // must be inert with the native tier off
  O.Remarks = &Sink;
  Memory MemJit, MemRef;
  fillArena(MemJit);
  fillArena(MemRef);
  Interpreter I(makeAlphaTarget(), MemJit, O);
  RunResult R = I.run(F, {4096, 300});

  ASSERT_TRUE(R.ok()) << R.Error;
  expectSameArch(Ref, R);
  EXPECT_EQ(std::memcmp(MemJit.data(), MemRef.data(), MemJit.size()), 0);
  EXPECT_EQ(Sink.count("jit-native-fault"), 0u);
  EXPECT_EQ(jit::NativeFaultScope::installCount(), Before)
      << "fault handlers must only exist while native code runs";
  // When the probe vetoed native execution for the whole process
  // (VPO_NO_JIT=1, non-x86-64), no test can ever have installed them.
  if (!jit::nativeAvailability().Ok) {
    EXPECT_EQ(jit::NativeFaultScope::installCount(), 0u);
  }
}

/// Handlers are scoped: installed during a native run, gone after it.
TEST(Quarantine, HandlersRemovedAfterCleanNativeRun) {
  if (!jit::nativeAvailability().Ok)
    GTEST_SKIP() << "native tier unavailable: "
                 << jit::nativeAvailability().Reason;

  std::string Err;
  auto M = parseModule(LoopKernel, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();

  const uint64_t Before = jit::NativeFaultScope::installCount();
  CollectingRemarkSink Sink;
  InterpreterOptions O;
  O.EnableJIT = true;
  O.JITHotThreshold = 2;
  O.Remarks = &Sink;
  Memory Mem;
  fillArena(Mem);
  Interpreter I(makeAlphaTarget(), Mem, O);
  RunResult R = I.run(F, {4096, 200});
  ASSERT_TRUE(R.ok()) << R.Error;

  const Remark *Summary = findRemark(Sink, "jit-summary");
  ASSERT_NE(Summary, nullptr) << Sink.renderAll();
  ASSERT_NE(remarkArg(*Summary, "native-entries"), "0")
      << "loop never promoted; the scope was never exercised";
  EXPECT_GT(jit::NativeFaultScope::installCount(), Before)
      << "native entries must have armed the fault scope";
  EXPECT_FALSE(jit::NativeFaultScope::handlersActive())
      << "handlers must be removed once native code is not running";
  EXPECT_EQ(Sink.count("jit-native-fault"), 0u) << Sink.renderAll();
}

} // namespace
