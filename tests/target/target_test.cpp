//===- tests/target/target_test.cpp - target + legalize ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table I properties of the three machine descriptions, and the semantic
/// correctness of legalization: narrow references expanded for the Alpha,
/// field inserts expanded for the 88100, identity on the 68030.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "sim/Interpreter.h"
#include "target/Legalize.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

unsigned countOp(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->insts())
      if (I.Op == Op)
        ++N;
  return N;
}

TEST(TargetMachine, TableIProperties) {
  TargetMachine Alpha = makeAlphaTarget();
  EXPECT_EQ(Alpha.name(), "alpha");
  EXPECT_FALSE(Alpha.isLegalLoad(MemWidth::W1, false));
  EXPECT_FALSE(Alpha.isLegalLoad(MemWidth::W2, false));
  EXPECT_TRUE(Alpha.isLegalLoad(MemWidth::W4, false));
  EXPECT_TRUE(Alpha.isLegalLoad(MemWidth::W8, false));
  EXPECT_TRUE(Alpha.isLegalLoad(MemWidth::W4, true)); // f32 exists
  EXPECT_TRUE(Alpha.hasUnalignedWideLoad());
  EXPECT_TRUE(Alpha.hasNativeInsert());
  EXPECT_TRUE(Alpha.requiresNaturalAlignment());
  EXPECT_EQ(Alpha.maxMemWidthBytes(), 8u);

  TargetMachine M88 = makeM88100Target();
  EXPECT_TRUE(M88.isLegalLoad(MemWidth::W1, false));
  EXPECT_FALSE(M88.hasNativeInsert());
  EXPECT_FALSE(M88.hasUnalignedWideLoad());
  EXPECT_TRUE(M88.requiresNaturalAlignment());

  TargetMachine M68 = makeM68030Target();
  EXPECT_TRUE(M68.isLegalLoad(MemWidth::W1, false));
  EXPECT_FALSE(M68.requiresNaturalAlignment());
  EXPECT_EQ(M68.maxMemWidthBytes(), 4u);
  EXPECT_LT(M68.iCacheBytes(), makeAlphaTarget().iCacheBytes());
}

TEST(TargetMachine, ByName) {
  EXPECT_EQ(makeTargetByName("alpha").name(), "alpha");
  EXPECT_EQ(makeTargetByName("m88100").name(), "m88100");
  EXPECT_EQ(makeTargetByName("m68030").name(), "m68030");
}

TEST(TargetMachine, LatencyAndIssue) {
  TargetMachine Alpha = makeAlphaTarget();
  Instruction Ld;
  Ld.Op = Opcode::Load;
  Ld.Dst = Reg(2);
  Ld.Addr = Address(Reg(1), 0);
  Ld.W = MemWidth::W4;
  EXPECT_EQ(Alpha.latency(Ld), 3u);
  EXPECT_EQ(Alpha.issueCycles(Ld), 1u); // fully pipelined

  Instruction Add;
  Add.Op = Opcode::Add;
  Add.Dst = Reg(3);
  Add.A = Operand(Reg(1));
  Add.B = Operand::imm(1);
  EXPECT_EQ(Alpha.issueCycles(Add), 1u);

  // The 68030 is not pipelined: occupancy tracks latency.
  TargetMachine M68 = makeM68030Target();
  EXPECT_GE(M68.issueCycles(Ld), M68.spec().MemIssueCycles);
  EXPECT_GE(M68.issueCycles(Add), M68.spec().AluLatency);
}

TEST(Legalize, AlphaNarrowLoadBecomesWideLoadPlusExtract) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i8.u [r1+3]\n"
           "  ret r2\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  LegalizeStats Stats = legalizeFunction(*P.F, TM);
  EXPECT_EQ(Stats.NarrowLoadsExpanded, 1u);
  EXPECT_EQ(countOp(*P.F, Opcode::Load), 0u);
  EXPECT_EQ(countOp(*P.F, Opcode::LoadWideU), 1u);
  EXPECT_EQ(countOp(*P.F, Opcode::ExtractF), 1u);

  std::vector<std::string> Problems;
  EXPECT_TRUE(verifyFunction(*P.F, Problems)) << Problems.front();

  Memory Mem;
  uint64_t A = Mem.allocate(16, 8);
  for (unsigned I = 0; I < 16; ++I)
    Mem.write(A + I, 1, 0x10 + I);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*P.F, {static_cast<int64_t>(A)});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ReturnValue, 0x13);
}

TEST(Legalize, AlphaNarrowLoadSignExtends) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i16.s [r1+6]\n"
           "  ret r2\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  legalizeFunction(*P.F, TM);
  Memory Mem;
  uint64_t A = Mem.allocate(16, 8);
  Mem.write(A + 6, 2, 0xff80);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*P.F, {static_cast<int64_t>(A)});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ReturnValue, -128);
}

TEST(Legalize, AlphaNarrowStoreIsReadModifyWrite) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  store.i8 [r1+5], 171\n"
           "  ret 0\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  LegalizeStats Stats = legalizeFunction(*P.F, TM);
  EXPECT_EQ(Stats.NarrowStoresExpanded, 1u);
  EXPECT_EQ(countOp(*P.F, Opcode::LoadWideU), 1u);
  EXPECT_EQ(countOp(*P.F, Opcode::InsertF), 1u);
  // The surviving store is full width.
  for (const auto &BB : P.F->blocks())
    for (const Instruction &I : BB->insts())
      if (I.Op == Opcode::Store)
        EXPECT_EQ(I.W, MemWidth::W8);

  Memory Mem;
  uint64_t A = Mem.allocate(16, 8);
  for (unsigned I = 0; I < 16; ++I)
    Mem.write(A + I, 1, 0x20 + I);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*P.F, {static_cast<int64_t>(A)});
  ASSERT_TRUE(R.ok()) << R.Error;
  // Target byte changed, every neighbour preserved.
  for (unsigned I = 0; I < 16; ++I)
    EXPECT_EQ(Mem.read(A + I, 1), I == 5 ? 0xabu : 0x20u + I) << "byte " << I;
}

TEST(Legalize, M88100InsertExpandsToMaskShiftOr) {
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  r3 = insertf.i16 r1, 2, r2\n"
           "  ret r3\n"
           "}\n");
  TargetMachine TM = makeM88100Target();
  LegalizeStats Stats = legalizeFunction(*P.F, TM);
  EXPECT_EQ(Stats.InsertsExpanded, 1u);
  EXPECT_EQ(countOp(*P.F, Opcode::InsertF), 0u);

  Memory Mem;
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(
      *P.F, {static_cast<int64_t>(0x1122334455667788ull), 0xabcd});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(static_cast<uint64_t>(R.ReturnValue), 0x11223344abcd7788ull);
}

TEST(Legalize, M68030IsIdentity) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i8.u [r1]\n"
           "  store.i16 [r1+2], r2\n"
           "  ret r2\n"
           "}\n");
  TargetMachine TM = makeM68030Target();
  std::string Before = printFunction(*P.F);
  LegalizeStats Stats = legalizeFunction(*P.F, TM);
  EXPECT_EQ(Stats.NarrowLoadsExpanded, 0u);
  EXPECT_EQ(Stats.NarrowStoresExpanded, 0u);
  EXPECT_EQ(printFunction(*P.F), Before);
}

TEST(Legalize, MemoryReferenceCountIsOnePerNarrowLoad) {
  // The paper's Alpha cost model: a legalized narrow load issues exactly
  // one memory reference (the ldq_u); the extract is a register op.
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i16.u [r1]\n"
           "  r3 = load.i16.u [r1+2]\n"
           "  r4 = add r2, r3\n"
           "  ret r4\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  legalizeFunction(*P.F, TM);
  unsigned MemRefs = 0;
  for (const auto &BB : P.F->blocks())
    for (const Instruction &I : BB->insts())
      if (I.isMemory())
        ++MemRefs;
  EXPECT_EQ(MemRefs, 2u);
}

} // namespace
