//===- tests/analysis/offset_range_test.cpp - domain properties -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the OffsetRange abstract domain. Random abstract
/// values are built exclusively through the public constructors and
/// transfer functions (so every tested value is one the analysis can
/// actually produce), then checked against the lattice laws and against
/// the concretization oracle containsConcrete:
///
///   * join is commutative, associative, idempotent, and an upper bound;
///   * every transfer function over-approximates the corresponding
///     concrete 64-bit operation on sampled members;
///   * widening chains terminate;
///   * the congruence/exactness queries agree with the samples.
///
//===----------------------------------------------------------------------===//

#include "analysis/OffsetRange.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace vpo;

namespace {

/// Fixed concrete bindings for the four parameters random values may
/// reference. Mid-range so sampled offsets never overflow.
const int64_t ParamVals[4] = {1 << 20, (1 << 20) + 4096, 3 << 20,
                              (3 << 20) + 37};

/// Membership in gamma(V) with the parameter environment above.
bool contains(const OffsetRange &V, int64_t C) {
  int64_t Base = V.isParam() ? ParamVals[V.paramIdx()] : 0;
  return V.containsConcrete(Base, C);
}

/// A random "leaf" abstract value: one of the public constructors.
OffsetRange randomLeaf(RNG &R) {
  switch (R.nextBelow(6)) {
  case 0:
    return OffsetRange::bottom();
  case 1:
    return OffsetRange::unknown();
  case 2:
    return OffsetRange::boolRange();
  case 3:
    return OffsetRange::param(static_cast<unsigned>(R.nextBelow(4)));
  default:
    return OffsetRange::number(static_cast<int64_t>(R.nextBelow(512)) - 128);
  }
}

/// A random abstract value reachable through the transfer functions: a
/// leaf mutated by a few random domain operations. Constants stay small
/// so concrete mirrors of the operations cannot overflow.
OffsetRange randomValue(RNG &R) {
  OffsetRange V = randomLeaf(R);
  unsigned Ops = static_cast<unsigned>(R.nextBelow(4));
  for (unsigned I = 0; I < Ops; ++I) {
    switch (R.nextBelow(7)) {
    case 0:
      V = OffsetRange::add(V, randomLeaf(R));
      break;
    case 1:
      V = OffsetRange::sub(V, randomLeaf(R));
      break;
    case 2:
      V = OffsetRange::mulConst(V, static_cast<int64_t>(R.nextBelow(17)) - 8);
      break;
    case 3:
      V = OffsetRange::shlConst(V, static_cast<int64_t>(R.nextBelow(7)));
      break;
    case 4:
      V = OffsetRange::andMask(V, (int64_t(1) << R.nextInRange(1, 12)) - 1);
      break;
    case 5:
      V = OffsetRange::join(V, randomLeaf(R));
      break;
    default:
      V = OffsetRange::extRange(V, R.nextBelow(2) ? 16 : 8,
                                R.nextBelow(2) != 0);
      break;
    }
  }
  return V;
}

/// Samples concrete members of gamma(V): candidate offsets from the
/// interval endpoints and the congruence residue, filtered through
/// containsConcrete. Empty for bottom (and possibly for values whose
/// members all lie outside the candidate window, which is fine — the
/// properties are vacuous on an empty sample).
std::vector<int64_t> sampleMembers(const OffsetRange &V, RNG &R) {
  std::vector<int64_t> Out;
  if (V.isBottom())
    return Out;
  int64_t Base = V.isParam() ? ParamVals[V.paramIdx()] : 0;
  std::vector<int64_t> Offs;
  if (V.hasLo())
    Offs.push_back(V.lo());
  if (V.hasHi())
    Offs.push_back(V.hi());
  int64_t Anchor = V.hasLo() ? V.lo() : (V.hasHi() ? V.hi() - 64 : 0);
  if (V.mod() >= 2) {
    // First congruence-class member at or above the anchor, plus a few
    // strides onward.
    int64_t First =
        Anchor + floorMod(V.rem() - Anchor, V.mod());
    for (int K = 0; K < 4; ++K)
      Offs.push_back(First + K * static_cast<int64_t>(V.mod()));
  } else {
    for (int K = -2; K <= 4; ++K)
      Offs.push_back(Anchor + K);
    Offs.push_back(V.rem()); // exact values
  }
  Offs.push_back(static_cast<int64_t>(R.nextBelow(256)) - 64);
  for (int64_t Off : Offs) {
    int64_t C;
    if (__builtin_add_overflow(Base, Off, &C))
      continue;
    if (V.containsConcrete(Base, C))
      Out.push_back(C);
  }
  return Out;
}

TEST(OffsetRange, ConstructorsAndPredicates) {
  OffsetRange N = OffsetRange::number(5);
  EXPECT_TRUE(N.isNumber());
  int64_t V = 0;
  EXPECT_TRUE(N.isExact(V));
  EXPECT_EQ(V, 5);
  EXPECT_TRUE(contains(N, 5));
  EXPECT_FALSE(contains(N, 6));
  // Exact values get a pinned interval from normalization.
  EXPECT_TRUE(N.hasLo() && N.hasHi());
  EXPECT_EQ(N.lo(), 5);
  EXPECT_EQ(N.hi(), 5);

  OffsetRange P = OffsetRange::param(2);
  EXPECT_TRUE(P.isParam());
  EXPECT_EQ(P.paramIdx(), 2u);
  EXPECT_TRUE(contains(P, ParamVals[2]));
  EXPECT_FALSE(contains(P, ParamVals[2] + 1));

  OffsetRange B = OffsetRange::bottom();
  EXPECT_TRUE(B.isBottom());
  EXPECT_FALSE(contains(B, 0));

  OffsetRange T = OffsetRange::unknown();
  EXPECT_TRUE(T.isTop());
  EXPECT_TRUE(contains(T, INT64_MIN));
  EXPECT_TRUE(contains(T, INT64_MAX));
  EXPECT_EQ(OffsetRange(), T);
}

TEST(OffsetRange, FloorModBasics) {
  EXPECT_EQ(floorMod(-1, 8), 7);
  EXPECT_EQ(floorMod(15, 8), 7);
  EXPECT_EQ(floorMod(-16, 16), 0);
  EXPECT_EQ(floorMod(5, 1), 0);
  EXPECT_EQ(floorMod(5, 0), 0);
}

TEST(OffsetRange, JoinLattice) {
  RNG R(101);
  for (int I = 0; I < 500; ++I) {
    OffsetRange A = randomValue(R), B = randomValue(R), C = randomValue(R);
    // Commutativity, idempotence, associativity (values are normalized,
    // so structural equality is the right comparison).
    EXPECT_EQ(OffsetRange::join(A, B), OffsetRange::join(B, A))
        << A.str() << " | " << B.str();
    EXPECT_EQ(OffsetRange::join(A, A), A) << A.str();
    OffsetRange AB_C = OffsetRange::join(OffsetRange::join(A, B), C);
    OffsetRange A_BC = OffsetRange::join(A, OffsetRange::join(B, C));
    EXPECT_EQ(AB_C, A_BC)
        << A.str() << " | " << B.str() << " | " << C.str();
    // Upper bound.
    OffsetRange J = OffsetRange::join(A, B);
    EXPECT_TRUE(A.leq(J)) << A.str() << " !<= " << J.str();
    EXPECT_TRUE(B.leq(J)) << B.str() << " !<= " << J.str();
  }
}

TEST(OffsetRange, LeqOrder) {
  RNG R(202);
  OffsetRange Top = OffsetRange::unknown();
  OffsetRange Bot = OffsetRange::bottom();
  for (int I = 0; I < 300; ++I) {
    OffsetRange A = randomValue(R);
    EXPECT_TRUE(A.leq(A)) << A.str();
    EXPECT_TRUE(Bot.leq(A));
    EXPECT_TRUE(A.leq(Top));
    // leq is a sound inclusion: members of A are members of any upper B.
    OffsetRange B = OffsetRange::join(A, randomValue(R));
    for (int64_t C : sampleMembers(A, R))
      EXPECT_TRUE(contains(B, C))
          << C << " in " << A.str() << " but not in join " << B.str();
  }
}

TEST(OffsetRange, JoinSoundOnSamples) {
  RNG R(303);
  for (int I = 0; I < 400; ++I) {
    OffsetRange A = randomValue(R), B = randomValue(R);
    OffsetRange J = OffsetRange::join(A, B);
    for (int64_t C : sampleMembers(A, R))
      EXPECT_TRUE(contains(J, C))
          << C << " in " << A.str() << " lost by join " << J.str();
    for (int64_t C : sampleMembers(B, R))
      EXPECT_TRUE(contains(J, C))
          << C << " in " << B.str() << " lost by join " << J.str();
  }
}

TEST(OffsetRange, AddSubSoundOnSamples) {
  RNG R(404);
  for (int I = 0; I < 400; ++I) {
    OffsetRange A = randomValue(R), B = randomValue(R);
    OffsetRange Sum = OffsetRange::add(A, B);
    OffsetRange Diff = OffsetRange::sub(A, B);
    for (int64_t CA : sampleMembers(A, R))
      for (int64_t CB : sampleMembers(B, R)) {
        int64_t S, D;
        if (!__builtin_add_overflow(CA, CB, &S))
          EXPECT_TRUE(contains(Sum, S))
              << CA << "+" << CB << " not in add(" << A.str() << ", "
              << B.str() << ") = " << Sum.str();
        if (!__builtin_sub_overflow(CA, CB, &D))
          EXPECT_TRUE(contains(Diff, D))
              << CA << "-" << CB << " not in sub(" << A.str() << ", "
              << B.str() << ") = " << Diff.str();
      }
  }
}

TEST(OffsetRange, UnaryTransfersSoundOnSamples) {
  RNG R(505);
  for (int I = 0; I < 400; ++I) {
    OffsetRange A = randomValue(R);
    int64_t Mul = static_cast<int64_t>(R.nextBelow(19)) - 9;
    int64_t Sh = static_cast<int64_t>(R.nextBelow(7));
    int64_t Mask = (int64_t(1) << R.nextInRange(1, 12)) - 1;
    unsigned Bits = R.nextBelow(2) ? 16 : 8;
    bool SE = R.nextBelow(2) != 0;
    OffsetRange VMul = OffsetRange::mulConst(A, Mul);
    OffsetRange VShl = OffsetRange::shlConst(A, Sh);
    OffsetRange VAnd = OffsetRange::andMask(A, Mask);
    OffsetRange VExt = OffsetRange::extRange(A, Bits, SE);
    for (int64_t C : sampleMembers(A, R)) {
      int64_t P;
      if (!__builtin_mul_overflow(C, Mul, &P))
        EXPECT_TRUE(contains(VMul, P))
            << C << "*" << Mul << " not in " << VMul.str() << " from "
            << A.str();
      if (!__builtin_mul_overflow(C, int64_t(1) << Sh, &P))
        EXPECT_TRUE(contains(VShl, P))
            << C << "<<" << Sh << " not in " << VShl.str() << " from "
            << A.str();
      EXPECT_TRUE(contains(VAnd, C & Mask))
          << C << "&" << Mask << " not in " << VAnd.str() << " from "
          << A.str();
      // Concrete Ext: take the low Bits of the 64-bit pattern, extend.
      uint64_t U = static_cast<uint64_t>(C) & ((uint64_t(1) << Bits) - 1);
      int64_t E;
      if (SE && (U & (uint64_t(1) << (Bits - 1))))
        E = static_cast<int64_t>(U | (~uint64_t(0) << Bits));
      else
        E = static_cast<int64_t>(U);
      EXPECT_TRUE(contains(VExt, E))
          << "ext" << Bits << "(" << C << ")=" << E << " not in "
          << VExt.str() << " from " << A.str();
    }
  }
}

TEST(OffsetRange, BoolRangeIsZeroOne) {
  OffsetRange B = OffsetRange::boolRange();
  EXPECT_TRUE(contains(B, 0));
  EXPECT_TRUE(contains(B, 1));
  EXPECT_FALSE(contains(B, 2));
  EXPECT_FALSE(contains(B, -1));
}

TEST(OffsetRange, WidenIsUpperBoundOfJoin) {
  RNG R(606);
  for (int I = 0; I < 400; ++I) {
    OffsetRange Old = randomValue(R), New = randomValue(R);
    OffsetRange J = OffsetRange::join(Old, New);
    OffsetRange W = OffsetRange::widen(Old, New);
    EXPECT_TRUE(J.leq(W))
        << "join " << J.str() << " !<= widen " << W.str() << " (old "
        << Old.str() << ", new " << New.str() << ")";
  }
}

TEST(OffsetRange, WideningChainsTerminate) {
  RNG R(707);
  for (int Trial = 0; Trial < 200; ++Trial) {
    // Emulate a loop header: Seed flows in from the preheader, the body
    // adds a random step (and occasionally another random contribution),
    // widen folds the back edge.
    OffsetRange Seed = randomValue(R);
    OffsetRange Step =
        OffsetRange::number(static_cast<int64_t>(R.nextBelow(64)) - 16);
    OffsetRange H = Seed;
    int Iters = 0;
    for (; Iters < 200; ++Iters) {
      OffsetRange Body = OffsetRange::add(H, Step);
      if (R.nextBelow(4) == 0)
        Body = OffsetRange::join(Body, randomLeaf(R));
      OffsetRange NewIn = OffsetRange::join(Seed, Body);
      OffsetRange W = OffsetRange::widen(H, NewIn);
      if (W == H)
        break;
      H = W;
    }
    EXPECT_LT(Iters, 200)
        << "widening chain failed to stabilize from " << Seed.str()
        << " step " << Step.str() << "; stuck at " << H.str();
    // Once stable, the header state is a post-fixpoint.
    OffsetRange Again =
        OffsetRange::widen(H, OffsetRange::join(Seed, OffsetRange::add(H, Step)));
    EXPECT_EQ(Again, H);
  }
}

TEST(OffsetRange, LoopJoinKeepsStrideFact) {
  // The pattern the analysis lives on: p, p+16, p+32, ... joined at a
  // header keeps "multiple of 16 from param" under widening.
  OffsetRange P = OffsetRange::param(0);
  OffsetRange H = P;
  for (int I = 0; I < 10; ++I)
    H = OffsetRange::widen(
        H, OffsetRange::join(P, OffsetRange::add(H, OffsetRange::number(16))));
  EXPECT_TRUE(H.isParam());
  EXPECT_EQ(H.mod(), 16u);
  EXPECT_EQ(H.rem(), 0);
  EXPECT_TRUE(H.hasLo());
  EXPECT_EQ(H.lo(), 0);
  EXPECT_FALSE(H.hasHi()) << H.str();
  int64_t Res = 0;
  EXPECT_TRUE(H.offsetCongruentTo(8, Res));
  EXPECT_EQ(Res, 0);
  EXPECT_FALSE(H.offsetCongruentTo(32, Res));
}

TEST(OffsetRange, OffsetCongruentToAgreesWithSamples) {
  RNG R(808);
  const uint64_t Mods[] = {1, 2, 4, 8, 16, 3, 6};
  for (int I = 0; I < 300; ++I) {
    OffsetRange A = randomValue(R);
    if (A.isBottom())
      continue;
    int64_t Base = A.isParam() ? ParamVals[A.paramIdx()] : 0;
    for (uint64_t M : Mods) {
      int64_t Res;
      if (!A.offsetCongruentTo(M, Res))
        continue;
      for (int64_t C : sampleMembers(A, R))
        EXPECT_EQ(floorMod(C - Base, M), Res)
            << A.str() << " claims offset % " << M << " == " << Res
            << " but member " << C << " disagrees";
    }
  }
}

TEST(OffsetRange, ExactQueries) {
  int64_t V = 0;
  EXPECT_TRUE(OffsetRange::add(OffsetRange::number(3), OffsetRange::number(4))
                  .isExact(V));
  EXPECT_EQ(V, 7);
  // isExact reports an exact *offset*: param(1) is exactly param1 + 0.
  ASSERT_TRUE(OffsetRange::param(1).isExact(V));
  EXPECT_EQ(V, 0);
  int64_t Res = 0;
  EXPECT_TRUE(OffsetRange::number(13).offsetCongruentTo(5, Res));
  EXPECT_EQ(Res, 3);
  EXPECT_TRUE(OffsetRange::number(-3).offsetCongruentTo(8, Res));
  EXPECT_EQ(Res, 5);
}

TEST(OffsetRange, AndMaskExactOnKnownResidue) {
  // join(5, 21) = [5,21] mod 16 rem 5; masking with 15 recovers exactly 5.
  OffsetRange V =
      OffsetRange::join(OffsetRange::number(5), OffsetRange::number(21));
  EXPECT_EQ(V.mod(), 16u);
  EXPECT_EQ(V.rem(), 5);
  OffsetRange Masked = OffsetRange::andMask(V, 15);
  int64_t E = 0;
  ASSERT_TRUE(Masked.isExact(E)) << Masked.str();
  EXPECT_EQ(E, 5);
}

TEST(OffsetRange, AndMaskOnParamForgetsBaseButBounds) {
  // A param's absolute residue is unknown, so masking must not claim
  // exactness — only the [0, Mask] range.
  OffsetRange P = OffsetRange::param(3);
  OffsetRange Masked = OffsetRange::andMask(P, 15);
  EXPECT_TRUE(Masked.isNumber());
  int64_t E;
  EXPECT_FALSE(Masked.isExact(E));
  EXPECT_TRUE(contains(Masked, 0));
  EXPECT_TRUE(contains(Masked, 15));
  EXPECT_FALSE(contains(Masked, 16));
}

TEST(OffsetRange, OverflowingBoundsDropToTop) {
  // Documented behavior: interval bounds that would overflow are dropped
  // rather than wrapped, and the exactness claim is given up.
  OffsetRange Big = OffsetRange::number(INT64_MAX);
  OffsetRange R = OffsetRange::add(Big, OffsetRange::number(1));
  EXPECT_TRUE(R.isTop()) << R.str();
  OffsetRange Neg = OffsetRange::sub(OffsetRange::number(INT64_MIN),
                                     OffsetRange::number(1));
  EXPECT_TRUE(Neg.isTop()) << Neg.str();
}

TEST(OffsetRange, BottomPropagatesThroughTransfers) {
  OffsetRange B = OffsetRange::bottom();
  EXPECT_TRUE(OffsetRange::add(B, OffsetRange::number(1)).isBottom());
  EXPECT_TRUE(OffsetRange::sub(OffsetRange::param(0), B).isBottom());
  EXPECT_TRUE(OffsetRange::mulConst(B, 4).isBottom());
  EXPECT_TRUE(OffsetRange::shlConst(B, 2).isBottom());
  EXPECT_TRUE(OffsetRange::andMask(B, 7).isBottom());
  EXPECT_TRUE(OffsetRange::extRange(B, 16, false).isBottom());
  EXPECT_EQ(OffsetRange::join(B, OffsetRange::number(9)),
            OffsetRange::number(9));
  EXPECT_EQ(OffsetRange::widen(B, OffsetRange::param(1)),
            OffsetRange::param(1));
}

TEST(OffsetRange, SameParamDifferenceCancelsBase) {
  // (param0 + 12) - (param0 + 4) is the exact number 8.
  OffsetRange A =
      OffsetRange::add(OffsetRange::param(0), OffsetRange::number(12));
  OffsetRange B =
      OffsetRange::add(OffsetRange::param(0), OffsetRange::number(4));
  OffsetRange D = OffsetRange::sub(A, B);
  EXPECT_TRUE(D.isNumber());
  int64_t V = 0;
  ASSERT_TRUE(D.isExact(V)) << D.str();
  EXPECT_EQ(V, 8);
  // Cross-parameter differences know nothing.
  OffsetRange X = OffsetRange::sub(OffsetRange::param(0),
                                   OffsetRange::param(1));
  EXPECT_TRUE(X.isTop());
  // param + param has no single surviving base.
  EXPECT_TRUE(OffsetRange::add(OffsetRange::param(0), OffsetRange::param(1))
                  .isTop());
}

} // namespace
