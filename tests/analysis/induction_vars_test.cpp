//===- tests/analysis/induction_vars_test.cpp - IV edge cases ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases of induction-variable recognition that the dataflow suite's
/// happy paths do not cover: the exact increment shapes accepted, the
/// zero-net-step disqualification, multi-block loops, non-canonical latch
/// compares, and descending accumulated steps. These pin down the
/// contract the offset analysis and the coalescer's footprint clamping
/// rely on.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

/// Runs loop discovery and wraps the innermost loop's scalar info.
struct LoopEnv {
  CFG G;
  DominatorTree DT;
  LoopInfo LI;

  explicit LoopEnv(Function &F) : G(F), DT(G), LI(G, DT) {}

  const Loop &inner() const { return *LI.loops().front(); }
};

TEST(InductionVars, ZeroNetStepIsNotAnIV) {
  // r1 += 2 then r1 -= 2 is loop-invariant in effect, but it is not a
  // usable IV: partitions keyed on it would have stride 0.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 2\n"
           "  r3 = load.i8.u [r1]\n"
           "  r1 = sub r1, 2\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, 100, body, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  LoopEnv E(*P.F);
  LoopScalarInfo LSI(E.inner(), *P.F);
  EXPECT_EQ(LSI.ivFor(Reg(1)), nullptr);
  ASSERT_NE(LSI.ivFor(Reg(2)), nullptr);
  EXPECT_EQ(LSI.ivFor(Reg(2))->StepPerIteration, 1);
}

TEST(InductionVars, RegisterAmountIncrementIsNotAnIV) {
  // The step must be an immediate: r1 += r3 with invariant r3 is still
  // rejected (the partition stride would not be a compile-time constant).
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i8.u [r1]\n"
           "  r1 = add r1, r3\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, 100, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  LoopEnv E(*P.F);
  LoopScalarInfo LSI(E.inner(), *P.F);
  EXPECT_EQ(LSI.ivFor(Reg(1)), nullptr);
  EXPECT_TRUE(LSI.isInvariant(Reg(3)));
}

TEST(InductionVars, ImmediateMinusRegIsNotAnIncrement) {
  // r1 = 100 - r1 redefines r1 every iteration but is a reflection, not
  // a step; treating it as one would corrupt accumulated offsets.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = sub 100, r1\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, 100, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  LoopEnv E(*P.F);
  LoopScalarInfo LSI(E.inner(), *P.F);
  EXPECT_EQ(LSI.ivFor(Reg(1)), nullptr);
  EXPECT_FALSE(LSI.isInvariant(Reg(1)));
}

TEST(InductionVars, ImmediateLimitBound) {
  Parsed P("func @f(r1) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 1\n"
           "  br.lts r1, 100, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  LoopEnv E(*P.F);
  LoopScalarInfo LSI(E.inner(), *P.F);
  auto B = LSI.bound();
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->IV.Id, 1u);
  ASSERT_TRUE(B->Limit.isImm());
  EXPECT_EQ(B->Limit.imm(), 100);
  EXPECT_EQ(B->ContinueCond, CondCode::LTs);
}

TEST(InductionVars, BothOperandsVariantMeansNoBound) {
  // Two IVs racing each other: neither side of the latch compare is
  // invariant, so there is no normalized bound to clamp footprints with.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 1\n"
           "  r2 = add r2, 2\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  LoopEnv E(*P.F);
  LoopScalarInfo LSI(E.inner(), *P.F);
  ASSERT_NE(LSI.ivFor(Reg(1)), nullptr);
  ASSERT_NE(LSI.ivFor(Reg(2)), nullptr);
  EXPECT_FALSE(LSI.bound().has_value());
}

TEST(InductionVars, MultiBlockLoopIncrementInLatch) {
  // In a multi-block loop the unique latch is the increment block; an IV
  // stepped there is recognized.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp head\n"
           "head:\n"
           "  r3 = load.i8.u [r1]\n"
           "  br.eq r3, 0, latch, latch\n"
           "latch:\n"
           "  r1 = add r1, 4\n"
           "  br.ltu r1, r2, head, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  LoopEnv E(*P.F);
  const Loop &L = E.inner();
  ASSERT_EQ(L.latches().size(), 1u);
  LoopScalarInfo LSI(L, *P.F);
  const InductionVar *IV = LSI.ivFor(Reg(1));
  ASSERT_NE(IV, nullptr);
  EXPECT_EQ(IV->StepPerIteration, 4);
}

TEST(InductionVars, MultiBlockLoopIncrementOutsideLatchRejected) {
  // The same step placed in the header of a two-block loop is not
  // counted: accumulated offsets are only well-defined relative to the
  // increment block, and that block is pinned to the latch.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp head\n"
           "head:\n"
           "  r1 = add r1, 4\n"
           "  r3 = load.i8.u [r1]\n"
           "  br.eq r3, 0, latch, latch\n"
           "latch:\n"
           "  br.ltu r1, r2, head, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  LoopEnv E(*P.F);
  LoopScalarInfo LSI(E.inner(), *P.F);
  EXPECT_EQ(LSI.ivFor(Reg(1)), nullptr);
}

TEST(InductionVars, MixedStepsAndDescendingAccumulation) {
  // add 8 / sub 3 nets +5 per iteration; a descending partner nets -4.
  // accumulatedIVSteps must expose the per-increment prefix sums the
  // partition offsets are built from, in both directions.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i8.u [r1]\n"
           "  r1 = add r1, 8\n"
           "  r5 = load.i8.u [r2]\n"
           "  r2 = sub r2, 4\n"
           "  r1 = sub r1, 3\n"
           "  br.ltu r1, r3, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  LoopEnv E(*P.F);
  LoopScalarInfo LSI(E.inner(), *P.F);
  const InductionVar *Up = LSI.ivFor(Reg(1));
  const InductionVar *Down = LSI.ivFor(Reg(2));
  ASSERT_NE(Up, nullptr);
  ASSERT_NE(Down, nullptr);
  EXPECT_EQ(Up->StepPerIteration, 5);
  EXPECT_EQ(Down->StepPerIteration, -4);
  EXPECT_EQ(Up->IncIdxs.size(), 2u);

  const BasicBlock *Body = P.F->findBlock("body");
  auto Acc = accumulatedIVSteps(*Body, LSI);
  ASSERT_EQ(Acc.size(), Body->size());
  // Before each instruction: nothing accumulated until the add at index
  // 1, then +8 until the sub at index 4, then +5.
  EXPECT_EQ(Acc[0][1], 0);
  EXPECT_EQ(Acc[1][1], 0);
  EXPECT_EQ(Acc[2][1], 8);
  EXPECT_EQ(Acc[4][1], 8);
  EXPECT_EQ(Acc[5][1], 5);
  EXPECT_EQ(Acc[3][2], 0);
  EXPECT_EQ(Acc[4][2], -4);

  // isIVIncrement classification matches the accumulation points.
  EXPECT_TRUE(isIVIncrement(LSI, *Body, 1));
  EXPECT_TRUE(isIVIncrement(LSI, *Body, 3));
  EXPECT_TRUE(isIVIncrement(LSI, *Body, 4));
  EXPECT_FALSE(isIVIncrement(LSI, *Body, 0));
  EXPECT_FALSE(isIVIncrement(LSI, *Body, 5));
}

} // namespace
