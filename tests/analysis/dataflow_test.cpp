//===- tests/analysis/dataflow_test.cpp - liveness/IV/partitions -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "ir/Function.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

/// A canonical counted loop: two IV pointers, one accumulator.
const char *DotLoop = "func @f(r1, r2, r3) {\n"
                      "entry:\n"
                      "  r4 = mov 0\n"
                      "  r5 = shl r3, 1\n"
                      "  r6 = add r1, r5\n"
                      "  br.les r3, 0, exit, body\n"
                      "body:\n"
                      "  r7 = load.i16.s [r1]\n"
                      "  r8 = load.i16.s [r2+4]\n"
                      "  r9 = mul r7, r8\n"
                      "  r4 = add r4, r9\n"
                      "  r1 = add r1, 2\n"
                      "  r2 = add r2, 2\n"
                      "  br.ltu r1, r6, body, exit\n"
                      "exit:\n"
                      "  ret r4\n"
                      "}\n";

TEST(Liveness, AccumulatorLiveAroundLoop) {
  Parsed P(DotLoop);
  CFG G(*P.F);
  Liveness LV(G);
  BasicBlock *Body = P.F->findBlock("body");
  BasicBlock *Exit = P.F->findBlock("exit");
  // r4 (accumulator) is live into the body, out of it, and into the exit.
  EXPECT_TRUE(LV.liveIn(Body, Reg(4)));
  EXPECT_TRUE(LV.liveOut(Body, Reg(4)));
  EXPECT_TRUE(LV.liveIn(Exit, Reg(4)));
  // r7 (a loaded temp) is not live into the body.
  EXPECT_FALSE(LV.liveIn(Body, Reg(7)));
  EXPECT_FALSE(LV.liveIn(Exit, Reg(7)));
  // The limit r6 is live throughout the loop.
  EXPECT_TRUE(LV.liveIn(Body, Reg(6)));
  // r5 is consumed in the entry block only.
  EXPECT_FALSE(LV.liveIn(Body, Reg(5)));
}

TEST(Liveness, LiveAfterWithinBlock) {
  Parsed P(DotLoop);
  CFG G(*P.F);
  Liveness LV(G);
  BasicBlock *Body = P.F->findBlock("body");
  // After instruction 0 (load r7), r7 is live (used by the mul at 2).
  EXPECT_TRUE(LV.liveAfter(Body, 0, Reg(7)));
  // After the mul (index 2), r7 is dead.
  EXPECT_FALSE(LV.liveAfter(Body, 2, Reg(7)));
  // r9 dead after the accumulate at index 3.
  EXPECT_TRUE(LV.liveAfter(Body, 2, Reg(9)));
  EXPECT_FALSE(LV.liveAfter(Body, 3, Reg(9)));
}

TEST(InductionVars, BasicDetection) {
  Parsed P(DotLoop);
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  LoopScalarInfo LSI(*LI.loops().front(), *P.F);

  ASSERT_EQ(LSI.inductionVars().size(), 2u);
  const InductionVar *IV1 = LSI.ivFor(Reg(1));
  const InductionVar *IV2 = LSI.ivFor(Reg(2));
  ASSERT_NE(IV1, nullptr);
  ASSERT_NE(IV2, nullptr);
  EXPECT_EQ(IV1->StepPerIteration, 2);
  EXPECT_EQ(IV2->StepPerIteration, 2);
  EXPECT_EQ(IV1->IncIdxs.size(), 1u);

  // r4 is redefined by a non-constant add (r4 = r4 + r9): not an IV.
  EXPECT_EQ(LSI.ivFor(Reg(4)), nullptr);
  EXPECT_EQ(LSI.defCount(Reg(4)), 1u);
  EXPECT_FALSE(LSI.isInvariant(Reg(4)));
  EXPECT_TRUE(LSI.isInvariant(Reg(6)));
  EXPECT_TRUE(LSI.isInvariant(Operand::imm(3)));
}

TEST(InductionVars, BoundDetection) {
  Parsed P(DotLoop);
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  LoopScalarInfo LSI(*LI.loops().front(), *P.F);
  ASSERT_TRUE(LSI.bound().has_value());
  EXPECT_EQ(LSI.bound()->IV, Reg(1));
  EXPECT_EQ(LSI.bound()->ContinueCond, CondCode::LTu);
  ASSERT_TRUE(LSI.bound()->Limit.isReg());
  EXPECT_EQ(LSI.bound()->Limit.reg(), Reg(6));
}

TEST(InductionVars, SwappedBoundOperands) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 4\n"
           "  br.gtu r2, r1, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  LoopScalarInfo LSI(*LI.loops().front(), *P.F);
  // `limit > iv` normalizes to `iv < limit`.
  ASSERT_TRUE(LSI.bound().has_value());
  EXPECT_EQ(LSI.bound()->IV, Reg(1));
  EXPECT_EQ(LSI.bound()->ContinueCond, CondCode::LTu);
}

TEST(InductionVars, DescendingIV) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = sub r1, 1\n"
           "  br.gtu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  LoopScalarInfo LSI(*LI.loops().front(), *P.F);
  const InductionVar *IV = LSI.ivFor(Reg(1));
  ASSERT_NE(IV, nullptr);
  EXPECT_EQ(IV->StepPerIteration, -1);
  ASSERT_TRUE(LSI.bound().has_value());
  EXPECT_EQ(LSI.bound()->ContinueCond, CondCode::GTu);
}

TEST(InductionVars, MultipleIncrementsSum) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 2\n"
           "  r3 = load.i8.u [r1]\n"
           "  r1 = add r1, 2\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  LoopScalarInfo LSI(*LI.loops().front(), *P.F);
  const InductionVar *IV = LSI.ivFor(Reg(1));
  ASSERT_NE(IV, nullptr);
  EXPECT_EQ(IV->StepPerIteration, 4);
  EXPECT_EQ(IV->IncIdxs.size(), 2u);
}

TEST(InductionVars, AccumulatedSteps) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r3 = load.i8.u [r1]\n"
           "  r1 = add r1, 1\n"
           "  r4 = load.i8.u [r1]\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  auto Acc = accumulatedIVSteps(*L.singleBodyBlock(), LSI);
  EXPECT_TRUE(Acc[0].empty());
  EXPECT_EQ(Acc[2][1], 1); // second load sees +1
  EXPECT_EQ(Acc[4][1], 2); // terminator sees +2
  EXPECT_FALSE(isIVIncrement(LSI, *L.singleBodyBlock(), 0));
  EXPECT_TRUE(isIVIncrement(LSI, *L.singleBodyBlock(), 1));
  EXPECT_TRUE(isIVIncrement(LSI, *L.singleBodyBlock(), 3));
}

TEST(MemoryPartitions, BasicClassification) {
  Parsed P(DotLoop);
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  MemoryPartitions MP(L, LSI);
  ASSERT_TRUE(MP.allClassified());
  ASSERT_EQ(MP.partitions().size(), 2u);
  const Partition *P1 = MP.partitionForBase(Reg(1));
  const Partition *P2 = MP.partitionForBase(Reg(2));
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  EXPECT_TRUE(P1->BaseIsIV);
  EXPECT_EQ(P1->Step, 2);
  ASSERT_EQ(P1->Refs.size(), 1u);
  EXPECT_EQ(P1->Refs[0].Offset, 0);
  EXPECT_EQ(P2->Refs[0].Offset, 4);
  EXPECT_TRUE(P1->Refs[0].IsLoad);
  EXPECT_EQ(P1->Refs[0].W, MemWidth::W2);
  EXPECT_TRUE(P1->Refs[0].SignExtend);
  EXPECT_EQ(MP.partitionIdFor(0), 0);
  EXPECT_EQ(MP.partitionIdFor(1), 1);
  EXPECT_EQ(MP.partitionIdFor(2), -1) << "mul is not a memory reference";
}

TEST(MemoryPartitions, OffsetsAccountForMidBlockIncrements) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r3 = load.i8.u [r1]\n"
           "  r1 = add r1, 1\n"
           "  r4 = load.i8.u [r1]\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  MemoryPartitions MP(L, LSI);
  ASSERT_TRUE(MP.allClassified());
  const Partition *Part = MP.partitionForBase(Reg(1));
  ASSERT_NE(Part, nullptr);
  ASSERT_EQ(Part->Refs.size(), 2u);
  // Both loads have displacement 0, but the second executes after an
  // increment: offsets relative to iteration start are 0 and 1.
  EXPECT_EQ(Part->Refs[0].Offset, 0);
  EXPECT_EQ(Part->Refs[1].Offset, 1);
}

TEST(MemoryPartitions, UnclassifiableBase) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r3 = mul r1, 2\n"
           "  r4 = load.i8.u [r3]\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  MemoryPartitions MP(L, LSI);
  // r3 is redefined each iteration by a non-increment: no constant offset.
  EXPECT_FALSE(MP.allClassified());
}

TEST(MemoryPartitions, InvariantBasePartition) {
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i16.s [r3+6]\n"
           "  store.i16 [r1], r4\n"
           "  r1 = add r1, 2\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  MemoryPartitions MP(L, LSI);
  ASSERT_TRUE(MP.allClassified());
  const Partition *Inv = MP.partitionForBase(Reg(3));
  ASSERT_NE(Inv, nullptr);
  EXPECT_FALSE(Inv->BaseIsIV);
  EXPECT_EQ(Inv->Step, 0);
  EXPECT_EQ(Inv->Refs[0].Offset, 6);
  const Partition *St = MP.partitionForBase(Reg(1));
  ASSERT_NE(St, nullptr);
  EXPECT_TRUE(St->Refs[0].IsStore);
}

TEST(MemoryPartitions, MultiBlockLoopRefused) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp head\n"
           "head:\n"
           "  r3 = load.i8.u [r1]\n"
           "  br.lts r3, 0, skip, latch\n"
           "skip:\n"
           "  jmp latch\n"
           "latch:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, head, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  MemoryPartitions MP(L, LSI);
  EXPECT_FALSE(MP.allClassified());
}

} // namespace
