//===- tests/analysis/loop_info_test.cpp - loop structure -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural loop-discovery coverage: nesting, ordering, preheaders,
/// exit blocks, multiple latches. The offset propagation's widening-point
/// selection and the coalescer's dispatch splicing both consume these
/// fields, so their exact shapes are pinned here.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

struct LoopEnv {
  CFG G;
  DominatorTree DT;
  LoopInfo LI;

  explicit LoopEnv(Function &F) : G(F), DT(G), LI(G, DT) {}
};

TEST(LoopInfo, SingleBlockLoopStructure) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  LoopEnv E(*P.F);
  ASSERT_EQ(E.LI.loops().size(), 1u);
  const Loop &L = *E.LI.loops().front();
  BasicBlock *Body = P.F->findBlock("body");
  EXPECT_EQ(L.header(), Body);
  ASSERT_EQ(L.latches().size(), 1u);
  EXPECT_EQ(L.latches().front(), Body);
  EXPECT_EQ(L.blocks().size(), 1u);
  EXPECT_EQ(L.singleBodyBlock(), Body);
  EXPECT_EQ(L.parent(), nullptr);
  EXPECT_TRUE(L.isInnermost());
  EXPECT_TRUE(L.contains(Body));
  EXPECT_FALSE(L.contains(P.F->findBlock("exit")));
  EXPECT_EQ(L.preheader(E.G), P.F->entry());
  std::vector<BasicBlock *> Exits = L.exitBlocks(E.G);
  ASSERT_EQ(Exits.size(), 1u);
  EXPECT_EQ(Exits.front(), P.F->findBlock("exit"));
  EXPECT_EQ(E.LI.loopFor(Body), E.LI.loops().front().get());
  EXPECT_EQ(E.LI.loopFor(P.F->entry()), nullptr);
}

TEST(LoopInfo, NestedLoopsInnermostFirst) {
  // outer: counts r1; inner: counts r2 inside each outer iteration.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp outer\n"
           "outer:\n"
           "  r2 = mov 0\n"
           "  jmp inner\n"
           "inner:\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, r3, inner, tail\n"
           "tail:\n"
           "  r1 = add r1, 1\n"
           "  br.lts r1, r3, outer, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  LoopEnv E(*P.F);
  ASSERT_EQ(E.LI.loops().size(), 2u);
  const Loop *Inner = E.LI.loops()[0].get();
  const Loop *Outer = E.LI.loops()[1].get();
  BasicBlock *InnerBB = P.F->findBlock("inner");
  BasicBlock *OuterBB = P.F->findBlock("outer");
  BasicBlock *TailBB = P.F->findBlock("tail");
  // Innermost-first ordering.
  EXPECT_EQ(Inner->header(), InnerBB);
  EXPECT_EQ(Outer->header(), OuterBB);
  EXPECT_EQ(Inner->parent(), Outer);
  EXPECT_EQ(Outer->parent(), nullptr);
  EXPECT_TRUE(Inner->isInnermost());
  EXPECT_FALSE(Outer->isInnermost());
  // The outer loop spans all three blocks; it is not single-body.
  EXPECT_EQ(Outer->blocks().size(), 3u);
  EXPECT_TRUE(Outer->contains(InnerBB));
  EXPECT_EQ(Outer->singleBodyBlock(), nullptr);
  // The inner loop's preheader is the outer block.
  EXPECT_EQ(Inner->preheader(E.G), OuterBB);
  // Exit blocks: inner exits into tail (still inside outer), outer exits
  // into exit.
  std::vector<BasicBlock *> InnerExits = Inner->exitBlocks(E.G);
  ASSERT_EQ(InnerExits.size(), 1u);
  EXPECT_EQ(InnerExits.front(), TailBB);
  std::vector<BasicBlock *> OuterExits = Outer->exitBlocks(E.G);
  ASSERT_EQ(OuterExits.size(), 1u);
  EXPECT_EQ(OuterExits.front(), P.F->findBlock("exit"));
  // loopFor returns the innermost containing loop.
  EXPECT_EQ(E.LI.loopFor(InnerBB), Inner);
  EXPECT_EQ(E.LI.loopFor(TailBB), Outer);
  EXPECT_EQ(E.LI.loopFor(OuterBB), Outer);
}

TEST(LoopInfo, MultiExitLoop) {
  // An early break gives the loop two distinct exit blocks.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp head\n"
           "head:\n"
           "  r3 = load.i8.u [r1]\n"
           "  br.eq r3, 0, found, next\n"
           "next:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, head, done\n"
           "found:\n"
           "  ret r1\n"
           "done:\n"
           "  ret 0\n"
           "}\n");
  LoopEnv E(*P.F);
  ASSERT_EQ(E.LI.loops().size(), 1u);
  const Loop &L = *E.LI.loops().front();
  EXPECT_EQ(L.blocks().size(), 2u);
  std::vector<BasicBlock *> Exits = L.exitBlocks(E.G);
  ASSERT_EQ(Exits.size(), 2u);
  BasicBlock *Found = P.F->findBlock("found");
  BasicBlock *Done = P.F->findBlock("done");
  EXPECT_TRUE(std::find(Exits.begin(), Exits.end(), Found) != Exits.end());
  EXPECT_TRUE(std::find(Exits.begin(), Exits.end(), Done) != Exits.end());
}

TEST(LoopInfo, NoPreheaderWithTwoOutsideEntries) {
  // Two distinct outside predecessors of the header: preheader() must
  // refuse rather than pick one (the coalescer hoists checks there).
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  br.eq r1, 0, pre_a, pre_b\n"
           "pre_a:\n"
           "  jmp body\n"
           "pre_b:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  LoopEnv E(*P.F);
  ASSERT_EQ(E.LI.loops().size(), 1u);
  EXPECT_EQ(E.LI.loops().front()->preheader(E.G), nullptr);
}

TEST(LoopInfo, TwoLatchLoop) {
  // Both paths through the body branch back to the header: two latches,
  // still one loop, and singleBodyBlock stays null.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp head\n"
           "head:\n"
           "  br.eq r1, 0, even, odd\n"
           "even:\n"
           "  r1 = add r1, 2\n"
           "  br.ltu r1, r2, head, exit\n"
           "odd:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, head, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  LoopEnv E(*P.F);
  ASSERT_EQ(E.LI.loops().size(), 1u);
  const Loop &L = *E.LI.loops().front();
  EXPECT_EQ(L.header(), P.F->findBlock("head"));
  EXPECT_EQ(L.latches().size(), 2u);
  EXPECT_EQ(L.blocks().size(), 3u);
  EXPECT_EQ(L.singleBodyBlock(), nullptr);
  EXPECT_EQ(L.preheader(E.G), P.F->entry());
}

} // namespace
