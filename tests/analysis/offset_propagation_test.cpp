//===- tests/analysis/offset_propagation_test.cpp - soundness ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soundness wall for the loop-pointer analysis, in four layers:
///
///  1. Direct fixed-point checks on hand-written IR (valueAt facts,
///     unreachable blocks, stride/bound clamping).
///  2. A concrete mini-executor replayed against the abstract semantics
///     over generated fuzz kernels: loads return arbitrary values (the
///     analysis treats them as top and is path-insensitive, so *any*
///     CFG-respecting walk must be over-approximated), and every register
///     at every visited block entry — plus after every single
///     applyInstruction step — must be inside its abstract value.
///  3. Unit tests of the two coalescer queries, provablyDisjoint and
///     provablyAligned, on hand-built footprints and on real loops.
///  4. The differential gate: near-miss kernels (shared-base layouts at
///     the exact disjoint/overlap boundaries) must pass the full fuzz
///     oracle, the static disjointness proofs must actually fire on them
///     (non-vacuity), and a planted unsound-prove fault — which is
///     verifier-clean by construction — must be caught behaviorally.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "analysis/OffsetPropagation.h"
#include "fuzz/Campaign.h"
#include "fuzz/KernelGen.h"
#include "fuzz/Oracle.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "pipeline/Pipeline.h"
#include "support/RNG.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

//===----------------------------------------------------------------------===//
// Layer 1: fixed-point facts on hand-written IR
//===----------------------------------------------------------------------===//

TEST(OffsetPropagation, PointerIVFactsAtHeader) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r3 = load.i8.u [r1]\n"
           "  r1 = add r1, 2\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  OffsetPropagation OP(*P.F);
  ASSERT_TRUE(OP.converged());
  EXPECT_GE(OP.stats().Sweeps, 1u);
  BasicBlock *Body = P.F->findBlock("body");
  // At the header, r1 is param0 plus a non-negative multiple of 2.
  OffsetRange V = OP.valueAt(Body, Reg(1));
  EXPECT_TRUE(V.isParam()) << V.str();
  EXPECT_EQ(V.paramIdx(), 0u);
  EXPECT_EQ(V.mod(), 2u);
  EXPECT_EQ(V.rem(), 0);
  ASSERT_TRUE(V.hasLo());
  EXPECT_EQ(V.lo(), 0);
  EXPECT_FALSE(V.hasHi()) << "widening must have dropped the upper bound";
  // After the body, the cursor has advanced: lo becomes 2.
  OffsetRange After = OP.valueAfter(Body, Reg(1));
  ASSERT_TRUE(After.hasLo());
  EXPECT_EQ(After.lo(), 2);
  // The loaded byte is untracked.
  EXPECT_TRUE(OP.valueAt(P.F->findBlock("exit"), Reg(3)).isTop());
  // The limit parameter stays exactly param1 everywhere.
  OffsetRange Lim = OP.valueAt(Body, Reg(2));
  EXPECT_TRUE(Lim.isParam());
  EXPECT_EQ(Lim.paramIdx(), 1u);
  int64_t Off = -1;
  EXPECT_TRUE(Lim.isExact(Off));
  EXPECT_EQ(Off, 0);
}

TEST(OffsetPropagation, UnreachableBlockIsBottom) {
  Parsed P("func @f(r1) {\n"
           "entry:\n"
           "  jmp out\n"
           "dead:\n"
           "  r1 = add r1, 1\n"
           "  jmp out\n"
           "out:\n"
           "  ret r1\n"
           "}\n");
  OffsetPropagation OP(*P.F);
  ASSERT_TRUE(OP.converged());
  EXPECT_TRUE(OP.valueAt(P.F->findBlock("dead"), Reg(1)).isBottom());
  EXPECT_TRUE(OP.valueAfter(P.F->findBlock("dead"), Reg(1)).isBottom());
  // The join over reachable predecessors ignores the dead block.
  EXPECT_TRUE(OP.valueAt(P.F->findBlock("out"), Reg(1)).isParam());
}

TEST(OffsetPropagation, ScaledIndexKeepsAlignmentFact) {
  // q = p + 8*i never loses "multiple of 8 from param0".
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = mov 0\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = shl r3, 3\n"
           "  r5 = add r1, r4\n"
           "  r6 = load.i64.u [r5]\n"
           "  r3 = add r3, 1\n"
           "  br.lts r3, r2, body, exit\n"
           "exit:\n"
           "  ret r6\n"
           "}\n");
  OffsetPropagation OP(*P.F);
  ASSERT_TRUE(OP.converged());
  BasicBlock *Body = P.F->findBlock("body");
  OffsetRange V = OP.valueAfter(Body, Reg(5));
  EXPECT_TRUE(V.isParam()) << V.str();
  int64_t R = -1;
  ASSERT_TRUE(V.offsetCongruentTo(8, R)) << V.str();
  EXPECT_EQ(R, 0);
}

//===----------------------------------------------------------------------===//
// Layer 2: concrete mini-executor vs the abstract semantics
//===----------------------------------------------------------------------===//

bool evalCondConcrete(CondCode CC, uint64_t A, uint64_t B) {
  int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
  switch (CC) {
  case CondCode::EQ:
    return A == B;
  case CondCode::NE:
    return A != B;
  case CondCode::LTs:
    return SA < SB;
  case CondCode::LEs:
    return SA <= SB;
  case CondCode::GTs:
    return SA > SB;
  case CondCode::GEs:
    return SA >= SB;
  case CondCode::LTu:
    return A < B;
  case CondCode::LEu:
    return A <= B;
  case CondCode::GTu:
    return A > B;
  case CondCode::GEu:
    return A >= B;
  }
  return false;
}

/// Replays one concrete CFG walk of \p F against the abstract semantics.
/// Loads and other untracked definitions are havocked (pseudo-random), so
/// the walk exercises arbitrary data-dependent paths; the abstract
/// analysis is path-insensitive and treats those defs as top, so it must
/// over-approximate every such walk. The walk aborts (without failing) on
/// signed overflow in tracked arithmetic — the domain's documented no-wrap
/// region — or when the step budget runs out.
class ConcreteWalk {
public:
  ConcreteWalk(Function &F, const OffsetPropagation &OP,
               const std::vector<int64_t> &ParamVals, uint64_t HavocSeed)
      : F(F), OP(OP), ParamVals(ParamVals), Havoc(HavocSeed),
        Vals(F.regUpperBound(), 0) {
    const std::vector<Reg> &Params = F.params();
    for (size_t I = 0; I < Params.size(); ++I) {
      Vals[Params[I].Id] = static_cast<uint64_t>(ParamVals[I]);
      PathState[Params[I].Id] = OffsetRange::param(static_cast<unsigned>(I));
    }
  }

  unsigned checksPerformed() const { return Checks; }

  void run() {
    const BasicBlock *BB = F.entry();
    checkBlockEntry(BB);
    size_t Idx = 0;
    for (unsigned Step = 0; Step < 50000; ++Step) {
      if (Idx >= BB->size())
        return; // malformed fallthrough; the verifier owns that complaint
      const Instruction &I = BB->insts()[Idx];
      uint64_t A = evalOp(I.A), B = evalOp(I.B);
      // Control flow first.
      if (I.Op == Opcode::Br) {
        BB = evalCondConcrete(I.CC, A, B) ? I.TrueTarget : I.FalseTarget;
        checkBlockEntry(BB);
        Idx = 0;
        continue;
      }
      if (I.Op == Opcode::Jmp) {
        BB = I.TrueTarget;
        checkBlockEntry(BB);
        Idx = 0;
        continue;
      }
      if (I.Op == Opcode::Ret)
        return;
      if (!step(I))
        return; // overflow in tracked arithmetic: outside the test domain
      ++Idx;
    }
  }

private:
  uint64_t evalOp(const Operand &O) const {
    if (O.isImm())
      return static_cast<uint64_t>(O.imm());
    if (O.isReg())
      return Vals[O.reg().Id];
    return 0;
  }

  /// Executes one non-control instruction concretely, mirrors it
  /// abstractly, and checks containment of the defined value. \returns
  /// false when the walk must stop (signed overflow in an operation the
  /// domain tracks).
  bool step(const Instruction &I) {
    auto Def = I.def();
    uint64_t A = evalOp(I.A), B = evalOp(I.B);
    int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
    uint64_t Result = 0;
    int64_t Tmp;
    switch (I.Op) {
    case Opcode::Mov:
      Result = A;
      break;
    case Opcode::Add:
      if (__builtin_add_overflow(SA, SB, &Tmp))
        return false;
      Result = static_cast<uint64_t>(Tmp);
      break;
    case Opcode::Sub:
      if (__builtin_sub_overflow(SA, SB, &Tmp))
        return false;
      Result = static_cast<uint64_t>(Tmp);
      break;
    case Opcode::Mul:
      if (__builtin_mul_overflow(SA, SB, &Tmp))
        return false;
      Result = static_cast<uint64_t>(Tmp);
      break;
    case Opcode::Shl: {
      unsigned Sh = static_cast<unsigned>(B & 63);
      Result = A << Sh;
      if (static_cast<int64_t>(Result) >> Sh != SA)
        return false; // shifted bits out: signed overflow
      break;
    }
    case Opcode::ShrA:
      Result = static_cast<uint64_t>(SA >> (B & 63));
      break;
    case Opcode::ShrL:
      Result = A >> (B & 63);
      break;
    case Opcode::And:
      Result = A & B;
      break;
    case Opcode::Or:
      Result = A | B;
      break;
    case Opcode::Xor:
      Result = A ^ B;
      break;
    case Opcode::CmpSet:
      Result = evalCondConcrete(I.CC, A, B) ? 1 : 0;
      break;
    case Opcode::Select:
      Result = A != 0 ? B : evalOp(I.C);
      break;
    case Opcode::Ext: {
      unsigned Bits = widthBits(I.W);
      if (Bits >= 64) {
        Result = A;
      } else {
        uint64_t Low = A & ((uint64_t(1) << Bits) - 1);
        if (I.SignExtend && (Low & (uint64_t(1) << (Bits - 1))))
          Low |= ~uint64_t(0) << Bits;
        Result = Low;
      }
      break;
    }
    default:
      // Loads, divisions, FP, field ops: untracked by the analysis, so
      // any value is sound — havoc to explore data-dependent paths. Kept
      // small so downstream tracked arithmetic rarely hits the no-wrap
      // abort and walks stay long.
      Result = Havoc.next() & 0xFFFF;
      break;
    }

    // Mirror the step abstractly, then write the concrete register.
    OffsetPropagation::applyInstruction(PathState, I);
    if (!Def)
      return true;
    Vals[Def->Id] = Result;
    auto It = PathState.find(Def->Id);
    if (It != PathState.end())
      expectContained(It->second, Def->Id, "applyInstruction step");
    return true;
  }

  void checkBlockEntry(const BasicBlock *BB) {
    for (unsigned Id = 1; Id < F.regUpperBound(); ++Id) {
      OffsetRange V = OP.valueAt(BB, Reg(Id));
      EXPECT_FALSE(V.isBottom())
          << "walk reached '" << BB->name() << "' which the analysis "
          << "claims unreachable";
      if (V.isTop() || V.isBottom())
        continue;
      expectContained(V, Id, ("entry of '" + BB->name() + "'").c_str());
    }
  }

  void expectContained(const OffsetRange &V, unsigned Id, const char *Where) {
    int64_t C = static_cast<int64_t>(Vals[Id]);
    int64_t Base = 0;
    if (V.isParam()) {
      ASSERT_LT(V.paramIdx(), ParamVals.size());
      Base = ParamVals[V.paramIdx()];
    }
    ++Checks;
    EXPECT_TRUE(V.containsConcrete(Base, C))
        << "r" << Id << " = " << C << " escapes " << V.str() << " at "
        << Where << " in @" << F.name();
  }

  Function &F;
  const OffsetPropagation &OP;
  std::vector<int64_t> ParamVals;
  RNG Havoc;
  std::vector<uint64_t> Vals;
  OffsetPropagation::State PathState;
  unsigned Checks = 0;
};

/// Runs the differential walk over one generated kernel for several trip
/// counts and havoc streams. \returns the number of containment checks.
unsigned replayKernel(const std::string &IRText, uint64_t Seed) {
  Parsed P(IRText);
  if (!P.F)
    return 0;
  OffsetPropagation OP(*P.F);
  EXPECT_TRUE(OP.converged()) << "seed " << Seed;
  unsigned Checks = 0;
  const int64_t Trips[] = {0, 3, 7};
  for (int64_t N : Trips) {
    std::vector<int64_t> ParamVals;
    for (size_t I = 0; I + 1 < P.F->params().size(); ++I)
      ParamVals.push_back(int64_t(0x200000) * int64_t(I + 1) + 24);
    ParamVals.push_back(N); // trip count is always the last parameter
    for (uint64_t Hav = 1; Hav <= 2; ++Hav) {
      ConcreteWalk W(*P.F, OP, ParamVals, Seed * 97 + Hav);
      W.run();
      Checks += W.checksPerformed();
    }
  }
  return Checks;
}

TEST(OffsetPropagationSoundness, RandomKernelWalks) {
  unsigned TotalChecks = 0;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    fuzz::GeneratedKernel K =
        fuzz::generateKernel(fuzz::KernelSpec::random(Seed));
    TotalChecks += replayKernel(K.IRText, Seed);
  }
  // The suite must not silently go vacuous.
  EXPECT_GT(TotalChecks, 1000u);
}

TEST(OffsetPropagationSoundness, NearMissKernelWalks) {
  unsigned TotalChecks = 0;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    fuzz::GeneratedKernel K =
        fuzz::generateKernel(fuzz::nearMissSpec(Seed));
    TotalChecks += replayKernel(K.IRText, Seed);
  }
  EXPECT_GT(TotalChecks, 1000u);
}

//===----------------------------------------------------------------------===//
// Layer 3: the coalescer queries
//===----------------------------------------------------------------------===//

PartitionFootprint footprint(unsigned ParamIdx, uint64_t Mod, int64_t Rem,
                             std::vector<std::pair<int64_t, unsigned>> Refs) {
  PartitionFootprint FP;
  FP.Valid = true;
  FP.ParamIdx = ParamIdx;
  FP.Mod = Mod;
  FP.Rem = Rem;
  FP.Refs = std::move(Refs);
  FP.MinOff = FP.Refs.front().first;
  FP.MaxOffEnd = FP.Refs.front().first;
  for (const auto &[Off, W] : FP.Refs) {
    FP.MinOff = std::min(FP.MinOff, Off);
    FP.MaxOffEnd = std::max(FP.MaxOffEnd, Off + static_cast<int64_t>(W));
  }
  return FP;
}

TEST(ProvablyDisjoint, IntervalRule) {
  // Exact pointers 16 bytes apart, 4-byte refs.
  PartitionFootprint A = footprint(0, 0, 0, {{0, 4}});
  PartitionFootprint B = footprint(0, 0, 16, {{0, 4}});
  A.HasLo = A.HasHi = true;
  A.Lo = A.Hi = 0;
  B.HasLo = B.HasHi = true;
  B.Lo = B.Hi = 16;
  const char *Why = nullptr;
  EXPECT_TRUE(provablyDisjoint(A, B, &Why));
  EXPECT_STREQ(Why, "interval");
  EXPECT_TRUE(provablyDisjoint(B, A, &Why)) << "must be symmetric";
  // Shrink the gap to an overlap: [0,4) vs [2,6).
  B.Lo = B.Hi = 2;
  B.Rem = 2;
  EXPECT_FALSE(provablyDisjoint(A, B));
  // Exactly adjacent spans are disjoint: [0,4) vs [4,8).
  B.Lo = B.Hi = 4;
  B.Rem = 4;
  EXPECT_TRUE(provablyDisjoint(A, B, &Why));
}

TEST(ProvablyDisjoint, ResidueRule) {
  // Interleaved channels of one record stream: stride 8, bytes [0,4) vs
  // [4,8) in each record. No interval bound at all.
  PartitionFootprint A = footprint(0, 8, 0, {{0, 4}});
  PartitionFootprint B = footprint(0, 8, 4, {{0, 4}});
  const char *Why = nullptr;
  EXPECT_TRUE(provablyDisjoint(A, B, &Why));
  EXPECT_STREQ(Why, "residue-classes");
  // Overlap by one byte: [0,5) vs [4,8) mod 8.
  PartitionFootprint A5 = footprint(0, 8, 0, {{0, 4}, {4, 1}});
  EXPECT_FALSE(provablyDisjoint(A5, B));
  // A reference as wide as the stride covers the whole circle.
  PartitionFootprint Wide = footprint(0, 8, 0, {{0, 8}});
  EXPECT_FALSE(provablyDisjoint(Wide, B));
  // Different moduli fall back to the gcd: mod 16 rem 0 vs mod 8 rem 4
  // agree on circle 8 and stay disjoint.
  PartitionFootprint A16 = footprint(0, 16, 0, {{0, 4}});
  EXPECT_TRUE(provablyDisjoint(A16, B, &Why));
  EXPECT_STREQ(Why, "residue-classes");
  // gcd collapses to 1: nothing provable.
  PartitionFootprint A3 = footprint(0, 3, 0, {{0, 1}});
  EXPECT_FALSE(provablyDisjoint(A3, B));
}

TEST(ProvablyDisjoint, RequiresSameParamAndValidity) {
  PartitionFootprint A = footprint(0, 8, 0, {{0, 4}});
  PartitionFootprint B = footprint(1, 8, 4, {{0, 4}});
  EXPECT_FALSE(provablyDisjoint(A, B)) << "different parameters";
  PartitionFootprint C = footprint(0, 8, 4, {{0, 4}});
  C.Valid = false;
  EXPECT_FALSE(provablyDisjoint(A, C));
  EXPECT_FALSE(provablyDisjoint(C, A));
}

TEST(ProvablyDisjoint, InterleavedChannelsFromRealLoop) {
  // Even bytes read, odd bytes written, both cursors from one parameter:
  // the shape no-alias parameter facts can never separate.
  Parsed P("func @k(r1, r2) {\n"
           "entry:\n"
           "  r3 = add r1, 0\n"
           "  r4 = add r1, 1\n"
           "  r5 = mov 0\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r6 = load.i8.u [r3]\n"
           "  store.i8 [r4], r6\n"
           "  r3 = add r3, 2\n"
           "  r4 = add r4, 2\n"
           "  r5 = add r5, 1\n"
           "  br.lts r5, r2, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  MemoryPartitions MP(L, LSI);
  ASSERT_TRUE(MP.allClassified());
  const Partition *PA = MP.partitionForBase(Reg(3));
  const Partition *PB = MP.partitionForBase(Reg(4));
  ASSERT_NE(PA, nullptr);
  ASSERT_NE(PB, nullptr);
  OffsetPropagation OP(*P.F);
  ASSERT_TRUE(OP.converged());
  PartitionFootprint FA = computePartitionFootprint(OP, L, LSI, *PA);
  PartitionFootprint FB = computePartitionFootprint(OP, L, LSI, *PB);
  ASSERT_TRUE(FA.Valid);
  ASSERT_TRUE(FB.Valid);
  EXPECT_EQ(FA.ParamIdx, FB.ParamIdx);
  EXPECT_EQ(FA.Mod, 2u);
  EXPECT_EQ(FB.Mod, 2u);
  const char *Why = nullptr;
  EXPECT_TRUE(provablyDisjoint(FA, FB, &Why));
  EXPECT_STREQ(Why, "residue-classes");
}

TEST(ProvablyDisjoint, BoundClampEnablesIntervalRule) {
  // A bounded cursor walks [p, p+N) one byte at a time while a second
  // partition sits at [p+N, ...): only the loop-bound clamp makes the
  // interval rule fire.
  Parsed P("func @k(r1, r2) {\n"
           "entry:\n"
           "  r3 = add r1, 64\n"
           "  br.geu r1, r3, exit, body\n"
           "body:\n"
           "  r5 = load.i8.u [r1]\n"
           "  store.i8 [r3+0], r5\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r3, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = *LI.loops().front();
  LoopScalarInfo LSI(L, *P.F);
  ASSERT_TRUE(LSI.bound().has_value());
  MemoryPartitions MP(L, LSI);
  ASSERT_TRUE(MP.allClassified());
  OffsetPropagation OP(*P.F);
  ASSERT_TRUE(OP.converged());
  const Partition *Cur = MP.partitionForBase(Reg(1));
  const Partition *Dst = MP.partitionForBase(Reg(3));
  ASSERT_NE(Cur, nullptr);
  ASSERT_NE(Dst, nullptr);
  PartitionFootprint FC = computePartitionFootprint(OP, L, LSI, *Cur);
  PartitionFootprint FD = computePartitionFootprint(OP, L, LSI, *Dst);
  ASSERT_TRUE(FC.Valid);
  ASSERT_TRUE(FD.Valid);
  // The continuation condition r1 <u r3 (= param0 + 64) caps the cursor's
  // iteration-start offset at 63.
  ASSERT_TRUE(FC.HasHi);
  EXPECT_EQ(FC.Hi, 63);
  const char *Why = nullptr;
  EXPECT_TRUE(provablyDisjoint(FC, FD, &Why));
  EXPECT_STREQ(Why, "interval");
}

TEST(ProvablyAligned, ParamAlignmentAndCongruence) {
  Parsed P("func @a(r1, r2) {\n"
           "entry:\n"
           "  r3 = mov r1\n"
           "  r4 = mov 0\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r5 = load.i64.u [r3]\n"
           "  r3 = add r3, 8\n"
           "  r4 = add r4, 1\n"
           "  br.lts r4, r2, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  BasicBlock *Body = P.F->findBlock("body");
  {
    // Alignment of the parameter is unknown: congruence alone is not
    // enough, the preheader check must stay.
    OffsetPropagation OP(*P.F);
    ASSERT_TRUE(OP.converged());
    EXPECT_FALSE(provablyAligned(OP, Body, Reg(3), 0, 8));
  }
  P.F->paramInfo(0).KnownAlign = 8;
  {
    OffsetPropagation OP(*P.F);
    ASSERT_TRUE(OP.converged());
    EXPECT_TRUE(provablyAligned(OP, Body, Reg(3), 0, 8));
    // Misaligned start offset within the stride.
    EXPECT_FALSE(provablyAligned(OP, Body, Reg(3), 4, 8));
    // A full stride later is aligned again.
    EXPECT_TRUE(provablyAligned(OP, Body, Reg(3), 8, 8));
    // Narrower wide width divides the alignment.
    EXPECT_TRUE(provablyAligned(OP, Body, Reg(3), 0, 4));
    // Wider than the known alignment: congruence mod 16 is unknown.
    EXPECT_FALSE(provablyAligned(OP, Body, Reg(3), 0, 16));
  }
}

TEST(ProvablyAligned, AbsoluteNumberBaseNeedsNoParamFact) {
  // A Number-valued base carries its absolute residue, so no parameter
  // alignment declaration is needed.
  Parsed P("func @a(r1) {\n"
           "entry:\n"
           "  r2 = mov 4096\n"
           "  r3 = mov 0\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i32.u [r2]\n"
           "  r2 = add r2, 4\n"
           "  r3 = add r3, 1\n"
           "  br.lts r3, r1, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  OffsetPropagation OP(*P.F);
  ASSERT_TRUE(OP.converged());
  BasicBlock *Body = P.F->findBlock("body");
  EXPECT_TRUE(provablyAligned(OP, Body, Reg(2), 0, 4));
  EXPECT_FALSE(provablyAligned(OP, Body, Reg(2), 2, 4));
}

//===----------------------------------------------------------------------===//
// Layer 4: the differential gate over near-miss kernels
//===----------------------------------------------------------------------===//

TEST(NearMissGate, OracleCleanOnNearMissKernels) {
  // Every near-miss layout — exactly adjacent, disjoint by one, overlapping
  // by one, prime strides, identical starts — must survive the full
  // differential oracle: whatever the offset analysis proves, the
  // coalesced code must still match the O0 baseline on every scenario.
  fuzz::OracleOptions O;
  O.Targets = {"alpha"};
  O.CheckJIT = false;
  O.CheckTelemetry = false;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    fuzz::GeneratedKernel K =
        fuzz::generateKernel(fuzz::nearMissSpec(Seed));
    fuzz::OracleResult R = fuzz::checkKernel(K, O);
    EXPECT_TRUE(R.passed()) << "seed " << Seed << ": " << R.render();
  }
}

TEST(NearMissGate, AnalysisProvesPairsOnNearMissKernels) {
  // Non-vacuity of the oracle gate, analysis level: across the near-miss
  // seeds the footprint pass must discharge at least one partition pair
  // (otherwise the gate above never exercises a static proof). Whether
  // the coalescer then *consumes* a proof depends on the hazard window
  // of an accepted run; that end-to-end path is pinned by the
  // deinterleave test below and the remark goldens.
  TargetMachine TM = makeTargetByName("alpha");
  CompileOptions Opts;
  Opts.Mode = CoalesceMode::LoadsAndStores;
  unsigned SeedsWithProof = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    fuzz::GeneratedKernel K =
        fuzz::generateKernel(fuzz::nearMissSpec(Seed));
    Parsed P(K.IRText);
    ASSERT_NE(P.F, nullptr);
    CollectingRemarkSink Sink;
    Opts.Remarks = &Sink;
    compileFunction(*P.F, TM, Opts);
    for (const Remark &R : Sink.remarks())
      if (std::string(R.Reason) == "offset-propagation")
        for (const auto &Arg : R.Args)
          if (std::string(Arg.first) == "pairs-proven" &&
              Arg.second != "0") {
            ++SeedsWithProof;
            break;
          }
  }
  EXPECT_GT(SeedsWithProof, 0u)
      << "no near-miss kernel had a provable partition pair; "
         "the near-miss oracle gate is vacuous";
}

TEST(NearMissGate, DeinterleaveProofsReplaceRuntimeChecks) {
  // End-to-end: on the paper-style deinterleave kernel (read and write
  // cursors sharing one parameter, interleaved residue classes mod 16)
  // the run-time overlap check is discharged by the residue rule, with
  // no remaining deferrals, and the loop still coalesces.
  std::unique_ptr<Workload> W = makeWorkloadByName("deinterleave");
  ASSERT_NE(W, nullptr);
  Module M;
  Function *F = W->build(M);
  ASSERT_NE(F, nullptr);
  F->paramInfo(0).KnownAlign = 16;
  TargetMachine TM = makeTargetByName("alpha");
  CollectingRemarkSink Sink;
  CompileOptions Opts;
  Opts.Mode = CoalesceMode::LoadsAndStores;
  Opts.Remarks = &Sink;
  compileFunction(*F, TM, Opts);
  EXPECT_GE(Sink.count("alias-check-proven-disjoint"), 1u)
      << Sink.renderAll();
  EXPECT_EQ(Sink.count("alias-check-deferred"), 0u) << Sink.renderAll();
  EXPECT_GE(Sink.count("loop-coalesced"), 1u) << Sink.renderAll();
}

TEST(NearMissGate, ScaledStartOffsetAlignmentProvenStatic) {
  // The cursor starts at p + 8*k: the exact-chain alignment reasoning
  // gives up on the symbolic scaled offset, but the congruence domain
  // knows the offset is a multiple of 8 from p, so with 8-byte declared
  // base alignment the preheader alignment check is discharged by the
  // supplement — the `alignment-proven-static` path.
  Parsed P("func @a(r1, r2, r3) {\n"
           "entry:\n"
           "  r4 = shl r2, 3\n"
           "  r5 = add r1, r4\n"
           "  r6 = mov 0\n"
           "  br.les r3, 0, exit, body\n"
           "body:\n"
           "  r7 = load.i8.u [r5]\n"
           "  r8 = load.i8.u [r5+1]\n"
           "  r9 = load.i8.u [r5+2]\n"
           "  r10 = load.i8.u [r5+3]\n"
           "  r11 = load.i8.u [r5+4]\n"
           "  r12 = load.i8.u [r5+5]\n"
           "  r13 = load.i8.u [r5+6]\n"
           "  r14 = load.i8.u [r5+7]\n"
           "  r5 = add r5, 8\n"
           "  r6 = add r6, 1\n"
           "  br.lts r6, r3, body, exit\n"
           "exit:\n"
           "  ret r6\n"
           "}\n");
  ASSERT_NE(P.F, nullptr);
  P.F->paramInfo(0).KnownAlign = 8;
  TargetMachine TM = makeTargetByName("alpha");
  CollectingRemarkSink Sink;
  CompileOptions Opts;
  Opts.Mode = CoalesceMode::LoadsAndStores;
  Opts.Remarks = &Sink;
  compileFunction(*P.F, TM, Opts);
  EXPECT_GE(Sink.count("alignment-proven-static"), 1u) << Sink.renderAll();
  // Without the declared parameter alignment the congruence alone must
  // NOT discharge the check (mod-8 congruence to an unaligned base
  // proves nothing).
  Parsed P2(
      "func @a(r1, r2, r3) {\n"
      "entry:\n"
      "  r4 = shl r2, 3\n"
      "  r5 = add r1, r4\n"
      "  r6 = mov 0\n"
      "  br.les r3, 0, exit, body\n"
      "body:\n"
      "  r7 = load.i8.u [r5]\n"
      "  r8 = load.i8.u [r5+1]\n"
      "  r9 = load.i8.u [r5+2]\n"
      "  r10 = load.i8.u [r5+3]\n"
      "  r11 = load.i8.u [r5+4]\n"
      "  r12 = load.i8.u [r5+5]\n"
      "  r13 = load.i8.u [r5+6]\n"
      "  r14 = load.i8.u [r5+7]\n"
      "  r5 = add r5, 8\n"
      "  r6 = add r6, 1\n"
      "  br.lts r6, r3, body, exit\n"
      "exit:\n"
      "  ret r6\n"
      "}\n");
  ASSERT_NE(P2.F, nullptr);
  CollectingRemarkSink Sink2;
  Opts.Remarks = &Sink2;
  compileFunction(*P2.F, TM, Opts);
  EXPECT_EQ(Sink2.count("alignment-proven-static"), 0u)
      << Sink2.renderAll();
}

TEST(NearMissGate, PlantedUnsoundProveIsCaughtBehaviorally) {
  // The unsound-prove fault short-circuits the runtime-check dispatch to
  // the fast loop — exactly the bug an unsound disjointness proof would
  // cause. It is verifier-clean by design, so only the behavioral oracle
  // can catch it; a campaign over near-miss kernels must do so.
  fuzz::OracleOptions O;
  fuzz::InjectSpec Inject;
  Inject.AfterPass = "coalesce";
  Inject.Kind = FaultKind::UnsoundProve;
  Inject.Seed = 3;
  O.Inject = Inject;
  bool Caught = false;
  for (unsigned Case = 0; Case < 40 && !Caught; ++Case) {
    uint64_t Seed = fuzz::caseSeed(1, Case);
    fuzz::GeneratedKernel K =
        fuzz::generateKernel(fuzz::nearMissSpec(Seed));
    fuzz::OracleResult R = fuzz::checkKernel(K, O);
    EXPECT_NE(R.Kind, fuzz::FailKind::CompileIncident)
        << "unsound-prove must stay invisible to the verifier, got "
        << R.render();
    Caught = R.Kind == fuzz::FailKind::StatusDiverged ||
             R.Kind == fuzz::FailKind::ReturnDiverged ||
             R.Kind == fuzz::FailKind::MemoryDiverged ||
             R.Kind == fuzz::FailKind::EngineDiverged;
  }
  EXPECT_TRUE(Caught)
      << "a planted soundness bug survived the whole near-miss campaign";
}

} // namespace
