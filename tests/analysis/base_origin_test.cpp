//===- tests/analysis/base_origin_test.cpp ---------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/BaseOrigin.h"
#include "ir/Function.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

TEST(BaseOrigin, ParamItself) {
  Parsed P("func @f(r1) {\ne:\n  ret r1\n}\n");
  BaseOrigin O = traceBaseOrigin(*P.F, Reg(1));
  ASSERT_TRUE(O.traced());
  EXPECT_EQ(O.Param, Reg(1));
  EXPECT_TRUE(O.ExactOffset);
  EXPECT_EQ(O.Offset, 0);
}

TEST(BaseOrigin, ImmediateChain) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 16\n"
           "  r3 = sub r2, 4\n"
           "  r4 = mov r3\n"
           "  ret r4\n"
           "}\n");
  BaseOrigin O = traceBaseOrigin(*P.F, Reg(4));
  ASSERT_TRUE(O.traced());
  EXPECT_EQ(O.Param, Reg(1));
  EXPECT_TRUE(O.ExactOffset);
  EXPECT_EQ(O.Offset, 12);
}

TEST(BaseOrigin, AlignmentThroughOffset) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 4\n"
           "  r3 = add r1, 16\n"
           "  ret r2\n"
           "}\n");
  P.F->paramInfo(0).KnownAlign = 16;
  EXPECT_EQ(baseKnownAlignment(*P.F, Reg(1)), 16u);
  EXPECT_EQ(baseKnownAlignment(*P.F, Reg(2)), 4u) << "16-aligned + 4";
  EXPECT_EQ(baseKnownAlignment(*P.F, Reg(3)), 16u) << "16-aligned + 16";
}

TEST(BaseOrigin, NoAliasThroughDerivation) {
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  r3 = add r1, 100\n"
           "  ret r3\n"
           "}\n");
  EXPECT_FALSE(baseIsNoAlias(*P.F, Reg(3)));
  P.F->paramInfo(0).NoAlias = true;
  EXPECT_TRUE(baseIsNoAlias(*P.F, Reg(3)));
  EXPECT_FALSE(baseIsNoAlias(*P.F, Reg(2)));
}

TEST(BaseOrigin, RegisterPlusRegisterNeedsDistinguishedSide) {
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  r3 = add r1, r2\n"
           "  ret r3\n"
           "}\n");
  // Neither side declared: ambiguous.
  EXPECT_FALSE(traceBaseOrigin(*P.F, Reg(3)).traced());
  // Declaring r1 as the pointer resolves it, with an inexact offset.
  P.F->paramInfo(0).NoAlias = true;
  BaseOrigin O = traceBaseOrigin(*P.F, Reg(3));
  ASSERT_TRUE(O.traced());
  EXPECT_EQ(O.Param, Reg(1));
  EXPECT_FALSE(O.ExactOffset);
  EXPECT_TRUE(baseIsNoAlias(*P.F, Reg(3)));
  EXPECT_EQ(baseKnownAlignment(*P.F, Reg(3)), 1u)
      << "inexact offsets prove nothing about alignment";
  // Declaring both sides makes it ambiguous again.
  P.F->paramInfo(1).NoAlias = true;
  EXPECT_FALSE(traceBaseOrigin(*P.F, Reg(3)).traced());
}

TEST(BaseOrigin, InductionVariableSelfUpdatesIgnored) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = add r1, 8\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i8.u [r3]\n"
           "  r3 = add r3, 1\n"
           "  br.ltu r3, r2, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  BaseOrigin O = traceBaseOrigin(*P.F, Reg(3));
  ASSERT_TRUE(O.traced());
  EXPECT_EQ(O.Param, Reg(1));
  EXPECT_TRUE(O.ExactOffset) << "the *initial* value is r1+8";
  EXPECT_EQ(O.Offset, 8);
}

TEST(BaseOrigin, TwoInitializersAmbiguous) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  br.lts r1, 0, a, b\n"
           "a:\n"
           "  r3 = mov r1\n"
           "  jmp join\n"
           "b:\n"
           "  r3 = mov r2\n"
           "  jmp join\n"
           "join:\n"
           "  ret r3\n"
           "}\n");
  EXPECT_FALSE(traceBaseOrigin(*P.F, Reg(3)).traced());
}

TEST(BaseOrigin, LoadBreaksChain) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i64.u [r1]\n"
           "  r3 = add r2, 8\n"
           "  ret r3\n"
           "}\n");
  EXPECT_FALSE(traceBaseOrigin(*P.F, Reg(3)).traced());
}

} // namespace
