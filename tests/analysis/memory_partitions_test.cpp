//===- tests/analysis/memory_partitions_test.cpp - partitions ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partition classification beyond the dataflow suite's happy paths:
/// float and 64-bit widths, descending bases, mixed load/store
/// partitions, invariant bases with several displacements, and bases
/// clobbered by loads. The footprint builder consumes these records
/// verbatim, so their exact contents matter to the soundness wall.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"
#include "ir/Function.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

/// Loop discovery + scalar info + partitions for the innermost loop.
struct PartEnv {
  CFG G;
  DominatorTree DT;
  LoopInfo LI;
  LoopScalarInfo LSI;
  MemoryPartitions MP;

  explicit PartEnv(Function &F)
      : G(F), DT(G), LI(G, DT), LSI(*LI.loops().front(), F),
        MP(*LI.loops().front(), LSI) {}
};

TEST(MemoryPartitions, FloatAndWideWidths) {
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.f32 [r1]\n"
           "  r5 = load.f64 [r1+8]\n"
           "  r6 = load.i64.u [r1+16]\n"
           "  r1 = add r1, 24\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, r3, body, exit\n"
           "exit:\n"
           "  ret r2\n"
           "}\n");
  PartEnv E(*P.F);
  ASSERT_TRUE(E.MP.allClassified());
  const Partition *Part = E.MP.partitionForBase(Reg(1));
  ASSERT_NE(Part, nullptr);
  EXPECT_TRUE(Part->BaseIsIV);
  EXPECT_EQ(Part->Step, 24);
  ASSERT_EQ(Part->Refs.size(), 3u);
  EXPECT_TRUE(Part->Refs[0].IsFloat);
  EXPECT_EQ(Part->Refs[0].W, MemWidth::W4);
  EXPECT_EQ(Part->Refs[0].Offset, 0);
  EXPECT_TRUE(Part->Refs[1].IsFloat);
  EXPECT_EQ(Part->Refs[1].W, MemWidth::W8);
  EXPECT_EQ(Part->Refs[1].Offset, 8);
  EXPECT_FALSE(Part->Refs[2].IsFloat);
  EXPECT_EQ(Part->Refs[2].W, MemWidth::W8);
  EXPECT_EQ(Part->Refs[2].Offset, 16);
}

TEST(MemoryPartitions, DescendingBaseOffsets) {
  // The base walks down; a reference after the decrement sees -4
  // relative to the top of the iteration.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i32.u [r1]\n"
           "  r1 = sub r1, 4\n"
           "  r5 = load.i32.u [r1]\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, r3, body, exit\n"
           "exit:\n"
           "  ret r2\n"
           "}\n");
  PartEnv E(*P.F);
  ASSERT_TRUE(E.MP.allClassified());
  const Partition *Part = E.MP.partitionForBase(Reg(1));
  ASSERT_NE(Part, nullptr);
  EXPECT_EQ(Part->Step, -4);
  ASSERT_EQ(Part->Refs.size(), 2u);
  EXPECT_EQ(Part->Refs[0].Offset, 0);
  EXPECT_EQ(Part->Refs[1].Offset, -4);
}

TEST(MemoryPartitions, MixedLoadStoreOnePartition) {
  // Read-modify-write through one cursor: the load and the store land in
  // the same partition, and partitionIdFor maps exactly the memory
  // instructions.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i16.s [r1]\n"
           "  r4 = add r4, 1\n"
           "  store.i16 [r1], r4\n"
           "  r1 = add r1, 2\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, r3, body, exit\n"
           "exit:\n"
           "  ret r2\n"
           "}\n");
  PartEnv E(*P.F);
  ASSERT_TRUE(E.MP.allClassified());
  ASSERT_EQ(E.MP.partitions().size(), 1u);
  const Partition &Part = E.MP.partitions().front();
  ASSERT_EQ(Part.Refs.size(), 2u);
  EXPECT_TRUE(Part.Refs[0].IsLoad);
  EXPECT_TRUE(Part.Refs[0].SignExtend);
  EXPECT_FALSE(Part.Refs[0].IsStore);
  EXPECT_TRUE(Part.Refs[1].IsStore);
  EXPECT_FALSE(Part.Refs[1].IsLoad);
  EXPECT_EQ(Part.Refs[0].Offset, 0);
  EXPECT_EQ(Part.Refs[1].Offset, 0);
  // Instruction-to-partition mapping: only indices 0 and 2 are memory.
  EXPECT_EQ(E.MP.partitionIdFor(0), 0);
  EXPECT_EQ(E.MP.partitionIdFor(1), -1);
  EXPECT_EQ(E.MP.partitionIdFor(2), 0);
  EXPECT_EQ(E.MP.partitionIdFor(3), -1);
}

TEST(MemoryPartitions, InvariantBaseManyDisplacements) {
  // A loop-invariant table pointer with several displacements: one
  // partition, step 0, offsets straight from the displacements.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i32.u [r1]\n"
           "  r5 = load.i32.u [r1+4]\n"
           "  store.i32 [r1+8], r4\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, r3, body, exit\n"
           "exit:\n"
           "  ret r2\n"
           "}\n");
  PartEnv E(*P.F);
  ASSERT_TRUE(E.MP.allClassified());
  const Partition *Part = E.MP.partitionForBase(Reg(1));
  ASSERT_NE(Part, nullptr);
  EXPECT_FALSE(Part->BaseIsIV);
  EXPECT_EQ(Part->Step, 0);
  ASSERT_EQ(Part->Refs.size(), 3u);
  EXPECT_EQ(Part->Refs[0].Offset, 0);
  EXPECT_EQ(Part->Refs[1].Offset, 4);
  EXPECT_EQ(Part->Refs[2].Offset, 8);
  EXPECT_TRUE(Part->Refs[2].IsStore);
}

TEST(MemoryPartitions, LoadClobberedBaseUnclassifiable) {
  // Pointer chasing: the base is redefined by a load each iteration, so
  // no constant relative offset exists and the loop must be refused.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r4 = load.i32.u [r1+4]\n"
           "  r1 = load.i64.u [r1]\n"
           "  r2 = add r2, 1\n"
           "  br.lts r2, r3, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  PartEnv E(*P.F);
  EXPECT_FALSE(E.MP.allClassified());
  EXPECT_EQ(E.MP.partitionIdFor(0), -1);
  EXPECT_EQ(E.MP.partitionIdFor(1), -1);
}

} // namespace
