//===- tests/analysis/cfg_test.cpp - CFG/dominators/loops ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vpo;

namespace {

/// Parses one function and keeps the module alive.
struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

const char *DiamondText = "func @f(r1) {\n"
                          "entry:\n"
                          "  br.lts r1, 0, left, right\n"
                          "left:\n"
                          "  jmp join\n"
                          "right:\n"
                          "  jmp join\n"
                          "join:\n"
                          "  ret r1\n"
                          "}\n";

const char *LoopText = "func @f(r1, r2) {\n"
                       "entry:\n"
                       "  br.les r2, 0, exit, body\n"
                       "body:\n"
                       "  r1 = add r1, 1\n"
                       "  br.ltu r1, r2, body, exit\n"
                       "exit:\n"
                       "  ret r1\n"
                       "}\n";

const char *NestedText = "func @f(r1, r2) {\n"
                         "entry:\n"
                         "  jmp outer\n"
                         "outer:\n"
                         "  jmp inner\n"
                         "inner:\n"
                         "  r1 = add r1, 1\n"
                         "  br.ltu r1, r2, inner, latch\n"
                         "latch:\n"
                         "  r2 = add r2, 1\n"
                         "  br.ltu r2, 100, outer, exit\n"
                         "exit:\n"
                         "  ret r1\n"
                         "}\n";

TEST(CFG, DiamondPredecessors) {
  Parsed P(DiamondText);
  CFG G(*P.F);
  BasicBlock *Join = P.F->findBlock("join");
  auto Preds = G.predecessors(Join);
  EXPECT_EQ(Preds.size(), 2u);
  EXPECT_TRUE(G.predecessors(P.F->findBlock("entry")).empty());
}

TEST(CFG, ReversePostOrderStartsAtEntry) {
  Parsed P(DiamondText);
  CFG G(*P.F);
  ASSERT_FALSE(G.reversePostOrder().empty());
  EXPECT_EQ(G.reversePostOrder().front(), P.F->entry());
  // Join must come after both left and right.
  auto &RPO = G.reversePostOrder();
  auto Pos = [&RPO](BasicBlock *BB) {
    return std::find(RPO.begin(), RPO.end(), BB) - RPO.begin();
  };
  EXPECT_GT(Pos(P.F->findBlock("join")), Pos(P.F->findBlock("left")));
  EXPECT_GT(Pos(P.F->findBlock("join")), Pos(P.F->findBlock("right")));
}

TEST(CFG, UnreachableBlockDetected) {
  Parsed P("func @f(r1) {\n"
           "entry:\n"
           "  ret r1\n"
           "island:\n"
           "  ret r1\n"
           "}\n");
  CFG G(*P.F);
  EXPECT_FALSE(G.isUnreachable(P.F->findBlock("entry")));
  EXPECT_TRUE(G.isUnreachable(P.F->findBlock("island")));
  // Unreachable blocks still appear in the RPO tail.
  EXPECT_EQ(G.reversePostOrder().size(), 2u);
}

TEST(Dominators, Diamond) {
  Parsed P(DiamondText);
  CFG G(*P.F);
  DominatorTree DT(G);
  BasicBlock *Entry = P.F->findBlock("entry");
  BasicBlock *Left = P.F->findBlock("left");
  BasicBlock *Right = P.F->findBlock("right");
  BasicBlock *Join = P.F->findBlock("join");

  EXPECT_EQ(DT.idom(Entry), nullptr);
  EXPECT_EQ(DT.idom(Left), Entry);
  EXPECT_EQ(DT.idom(Right), Entry);
  EXPECT_EQ(DT.idom(Join), Entry) << "neither branch arm dominates join";

  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_TRUE(DT.dominates(Join, Join));
  EXPECT_FALSE(DT.dominates(Left, Join));
  EXPECT_FALSE(DT.dominates(Join, Entry));
}

TEST(Dominators, LoopBody) {
  Parsed P(LoopText);
  CFG G(*P.F);
  DominatorTree DT(G);
  BasicBlock *Body = P.F->findBlock("body");
  BasicBlock *Exit = P.F->findBlock("exit");
  EXPECT_TRUE(DT.dominates(P.F->entry(), Body));
  EXPECT_FALSE(DT.dominates(Body, Exit)) << "exit is reachable from entry";
  EXPECT_TRUE(DT.dominates(Body, Body));
}

TEST(Dominators, UnreachableDominatesNothing) {
  Parsed P("func @f(r1) {\n"
           "entry:\n"
           "  ret r1\n"
           "island:\n"
           "  ret r1\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  BasicBlock *Island = P.F->findBlock("island");
  EXPECT_FALSE(DT.dominates(Island, P.F->entry()));
  EXPECT_FALSE(DT.dominates(P.F->entry(), Island));
}

TEST(LoopInfo, SimpleLoop) {
  Parsed P(LoopText);
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = *LI.loops().front();
  BasicBlock *Body = P.F->findBlock("body");
  EXPECT_EQ(L.header(), Body);
  EXPECT_EQ(L.singleBodyBlock(), Body);
  EXPECT_TRUE(L.isInnermost());
  EXPECT_EQ(L.preheader(G), P.F->findBlock("entry"));
  auto Exits = L.exitBlocks(G);
  ASSERT_EQ(Exits.size(), 1u);
  EXPECT_EQ(Exits[0], P.F->findBlock("exit"));
  EXPECT_EQ(LI.loopFor(Body), &L);
  EXPECT_EQ(LI.loopFor(P.F->entry()), nullptr);
}

TEST(LoopInfo, NestedLoops) {
  Parsed P(NestedText);
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  // Innermost-first ordering.
  const Loop &Inner = *LI.loops()[0];
  const Loop &Outer = *LI.loops()[1];
  EXPECT_EQ(Inner.header(), P.F->findBlock("inner"));
  EXPECT_EQ(Outer.header(), P.F->findBlock("outer"));
  EXPECT_TRUE(Inner.isInnermost());
  EXPECT_FALSE(Outer.isInnermost());
  EXPECT_EQ(Inner.parent(), &Outer);
  EXPECT_EQ(Outer.parent(), nullptr);
  EXPECT_TRUE(Outer.contains(P.F->findBlock("inner")));
  EXPECT_FALSE(Inner.contains(P.F->findBlock("latch")));
  // loopFor returns the innermost containing loop.
  EXPECT_EQ(LI.loopFor(P.F->findBlock("inner")), &Inner);
  EXPECT_EQ(LI.loopFor(P.F->findBlock("latch")), &Outer);
  // The inner loop is multi-entry-free but not single-block from the
  // outer loop's perspective.
  EXPECT_EQ(Outer.singleBodyBlock(), nullptr);
}

TEST(LoopInfo, NoPreheaderWhenTwoOutsideEdges) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  br.lts r1, 0, pre1, pre2\n"
           "pre1:\n"
           "  jmp body\n"
           "pre2:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops().front()->preheader(G), nullptr);
}

TEST(LoopInfo, MultiBlockLoopBody) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp head\n"
           "head:\n"
           "  br.lts r1, 100, then, latch\n"
           "then:\n"
           "  r1 = add r1, 2\n"
           "  jmp latch\n"
           "latch:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, head, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  CFG G(*P.F);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = *LI.loops().front();
  EXPECT_EQ(L.blocks().size(), 3u);
  EXPECT_EQ(L.singleBodyBlock(), nullptr);
  ASSERT_EQ(L.latches().size(), 1u);
  EXPECT_EQ(L.latches()[0], P.F->findBlock("latch"));
}

} // namespace
