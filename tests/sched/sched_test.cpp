//===- tests/sched/sched_test.cpp - dependence DAG + scheduler -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "sched/DepGraph.h"
#include "sched/ListScheduler.h"
#include "sim/Interpreter.h"
#include "support/RNG.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

bool hasEdge(const DepGraph &DG, size_t From, size_t To, DepKind Kind) {
  for (const DepEdge &E : DG.edges())
    if (E.From == From && E.To == To && E.Kind == Kind)
      return true;
  return false;
}

TEST(DepGraph, RegisterDependences) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 1\n"  // 0
           "  r3 = add r2, 1\n"  // 1: RAW on 0
           "  r2 = add r1, 2\n"  // 2: WAW on 0, WAR on 1
           "  ret r3\n"          // 3
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  DepGraph DG(*P.F->entry(), TM);
  EXPECT_TRUE(hasEdge(DG, 0, 1, DepKind::RAW));
  EXPECT_TRUE(hasEdge(DG, 0, 2, DepKind::WAW));
  EXPECT_TRUE(hasEdge(DG, 1, 2, DepKind::WAR));
  EXPECT_TRUE(hasEdge(DG, 0, 3, DepKind::Ctrl));
  EXPECT_FALSE(hasEdge(DG, 1, 2, DepKind::RAW));
}

TEST(DepGraph, MemoryOrdering) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i8.u [r1]\n"   // 0
           "  r3 = load.i8.u [r1+1]\n" // 1: no edge to 0 (load-load)
           "  store.i8 [r1], r2\n"     // 2: Mem edges from 0 and 1
           "  r4 = load.i8.u [r1+2]\n" // 3: Mem edge from 2
           "  ret r4\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  DepGraph DG(*P.F->entry(), TM);
  EXPECT_FALSE(hasEdge(DG, 0, 1, DepKind::Mem));
  EXPECT_TRUE(hasEdge(DG, 0, 2, DepKind::Mem));
  EXPECT_TRUE(hasEdge(DG, 1, 2, DepKind::Mem));
  EXPECT_TRUE(hasEdge(DG, 2, 3, DepKind::Mem));
}

TEST(DepGraph, HeightsReflectCriticalPath) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i32.u [r1]\n" // long-latency producer
           "  r3 = add r2, 1\n"
           "  r4 = mov 7\n" // independent
           "  ret r3\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  DepGraph DG(*P.F->entry(), TM);
  // The load heads the critical path; the independent mov has a smaller
  // height.
  EXPECT_GT(DG.height(0), DG.height(2));
  EXPECT_GT(DG.height(0), DG.height(1));
}

TEST(ListScheduler, KeepsTerminatorLast) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i32.u [r1]\n"
           "  r3 = mov 1\n"
           "  r4 = add r2, r3\n"
           "  ret r4\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  ScheduleResult S = scheduleBlock(*P.F->entry(), TM);
  ASSERT_EQ(S.Order.size(), 4u);
  EXPECT_EQ(S.Order.back(), 3u);
  // Permutation property.
  std::set<size_t> Seen(S.Order.begin(), S.Order.end());
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(ListScheduler, HidesLoadLatency) {
  // Two independent load->use chains: a good schedule interleaves them.
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  r3 = load.i32.u [r1]\n"
           "  r4 = add r3, 1\n"
           "  r5 = load.i32.u [r2]\n"
           "  r6 = add r5, 1\n"
           "  r7 = add r4, r6\n"
           "  ret r7\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  unsigned Before = estimateBlockCycles(*P.F->entry(), TM);
  ScheduleResult S = scheduleBlock(*P.F->entry(), TM);
  EXPECT_LE(S.Cycles, Before);
  applySchedule(*P.F->entry(), S);
  unsigned After = estimateBlockCycles(*P.F->entry(), TM);
  EXPECT_LT(After, Before) << "interleaving should hide a load latency";
}

TEST(ListScheduler, RespectsDependences) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i8.u [r1]\n"
           "  store.i8 [r1+1], r2\n"
           "  r3 = load.i8.u [r1+1]\n"
           "  store.i8 [r1+2], r3\n"
           "  ret r3\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  ScheduleResult S = scheduleBlock(*P.F->entry(), TM);
  // Memory order must be preserved: position of each memory op in the new
  // order must be increasing.
  std::vector<size_t> PosOf(S.Order.size());
  for (size_t I = 0; I < S.Order.size(); ++I)
    PosOf[S.Order[I]] = I;
  EXPECT_LT(PosOf[0], PosOf[1]);
  EXPECT_LT(PosOf[1], PosOf[2]);
  EXPECT_LT(PosOf[2], PosOf[3]);
}

/// Property test: scheduling a random straight-line block never changes
/// its final architectural state.
TEST(ListScheduler, RandomBlocksPreserveSemantics) {
  TargetMachine TM = makeAlphaTarget();
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RNG R(Seed);
    Module M;
    Function *F = M.addFunction("f");
    Reg Base = F->addParam();
    IRBuilder B(F);
    B.createBlock("e");

    std::vector<Reg> Vals = {Base};
    auto AnyVal = [&]() { return Vals[R.nextBelow(Vals.size())]; };
    for (int I = 0; I < 24; ++I) {
      switch (R.nextBelow(6)) {
      case 0:
        Vals.push_back(B.add(AnyVal(), Operand::imm(R.nextInRange(-8, 8))));
        break;
      case 1:
        Vals.push_back(B.mul(AnyVal(), AnyVal()));
        break;
      case 2:
        Vals.push_back(B.xor_(AnyVal(), AnyVal()));
        break;
      case 3:
        Vals.push_back(
            B.load(Address(Base, R.nextInRange(0, 15) * 4), MemWidth::W4,
                   false));
        break;
      case 4:
        B.store(Address(Base, R.nextInRange(0, 15) * 4), AnyVal(),
                MemWidth::W4);
        break;
      case 5:
        Vals.push_back(B.shrL(AnyVal(), Operand::imm(R.nextBelow(8))));
        break;
      }
    }
    // Return a hash of all produced values so everything is live.
    Reg Acc = B.mov(Operand::imm(0));
    for (Reg V : Vals)
      B.aluTo(Acc, Opcode::Add, Acc, V);
    B.ret(Acc);

    auto RunOnce = [&](bool Scheduled) {
      Module M2;
      std::string Err;
      auto Clone = parseModule(
          // Round-trip through text for an easy deep copy.
          printFunction(*F), &Err);
      EXPECT_NE(Clone, nullptr) << Err;
      Function *FC = Clone->functions().front().get();
      if (Scheduled)
        applySchedule(*FC->entry(), scheduleBlock(*FC->entry(), TM));
      Memory Mem;
      uint64_t Addr = Mem.allocate(256, 8);
      for (unsigned I = 0; I < 256; ++I)
        Mem.write(Addr + I, 1, (Seed * 13 + I * 7) & 0xff);
      Interpreter Interp(TM, Mem);
      RunResult RR = Interp.run(*FC, {static_cast<int64_t>(Addr)});
      EXPECT_TRUE(RR.ok()) << RR.Error;
      std::vector<uint8_t> Bytes(Mem.data() + Addr, Mem.data() + Addr + 256);
      return std::make_pair(RR.ReturnValue, Bytes);
    };
    auto [RetA, MemA] = RunOnce(false);
    auto [RetB, MemB] = RunOnce(true);
    EXPECT_EQ(RetA, RetB) << "seed " << Seed;
    EXPECT_EQ(MemA, MemB) << "seed " << Seed;
  }
}

TEST(EstimateBlockCycles, SerialChainCostsLatencySum) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = mul r1, 3\n"
           "  r3 = mul r2, 3\n"
           "  r4 = mul r3, 3\n"
           "  ret r4\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget(); // MulLatency = 5
  unsigned Cycles = estimateBlockCycles(*P.F->entry(), TM);
  EXPECT_GE(Cycles, 15u);
}

} // namespace
