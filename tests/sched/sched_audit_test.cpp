//===- tests/sched/sched_audit_test.cpp - Fig. 3 audit oracle --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The exact-scheduler audit of the coalescer's Fig. 3 profitability
// verdicts. Three contracts under test:
//
//   1. the audit is strictly read-only — generated code is bit-identical
//      with the audit on, off, or unobserved;
//   2. budget exhaustion is reported as budget-exceeded, never silently
//      upgraded to a verdict;
//   3. a planted scheduling error (ProfitabilitySkew, the fuzzer's
//      SchedLength fault) is surfaced as profitability-flipped.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>

using namespace vpo;

namespace {

/// Compile one workload and return the final IR text (plus remarks via
/// \p Sink when given).
std::string compileToText(const char *Name, const TargetMachine &TM,
                          CompileOptions CO,
                          CollectingRemarkSink *Sink = nullptr) {
  Module M;
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  EXPECT_NE(W, nullptr) << Name;
  Function *F = W->build(M);
  CO.Remarks = Sink;
  compileFunction(*F, TM, CO);
  return printFunction(*F);
}

std::string argOf(const Remark &R, const char *Key) {
  for (const auto &KV : R.Args)
    if (std::string(KV.first) == Key)
      return KV.second;
  return "";
}

TEST(SchedAudit, AuditIsReadOnly) {
  // Same kernel three ways: audit observed, audit disabled, no sink at
  // all. The generated code must be byte-identical — the audit reads the
  // profitability clones and writes only remarks.
  for (const TargetMachine &TM : {makeAlphaTarget(), makeM68030Target()}) {
    CompileOptions CO;
    CO.Mode = CoalesceMode::LoadsAndStores;

    CollectingRemarkSink Audited, Silent;
    CompileOptions NoAudit = CO;
    NoAudit.SchedAudit = false;

    std::string WithAudit = compileToText("convolution", TM, CO, &Audited);
    std::string WithoutAudit =
        compileToText("convolution", TM, NoAudit, &Silent);
    std::string Unobserved = compileToText("convolution", TM, CO);

    EXPECT_EQ(WithAudit, WithoutAudit) << TM.name();
    EXPECT_EQ(WithAudit, Unobserved) << TM.name();
    EXPECT_GE(Audited.count("sched-audit"), 1u) << TM.name();
    EXPECT_EQ(Silent.count("sched-audit"), 0u) << TM.name();
  }
}

TEST(SchedAudit, CleanKernelConfirmsOptimalWithNoFlips) {
  // image_add on alpha: small loop bodies the search settles well within
  // the default budget. Every audit must reach a verdict, at least one
  // must be confirmed-optimal, and none may claim the heuristic verdict
  // was wrong.
  CollectingRemarkSink Sink;
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  compileToText("image_add", makeAlphaTarget(), CO, &Sink);

  unsigned Confirmed = 0;
  for (const Remark &R : Sink.remarks()) {
    if (std::string(R.Reason) != "sched-audit")
      continue;
    std::string Status = argOf(R, "status");
    EXPECT_NE(Status, "budget-exceeded") << R.Block;
    EXPECT_NE(Status, "flipped") << R.Block;
    if (Status == "confirmed-optimal")
      ++Confirmed;
  }
  EXPECT_GE(Confirmed, 1u);
  EXPECT_EQ(Sink.count("profitability-flipped"), 0u);
}

TEST(SchedAudit, ZeroBudgetIsReportedNotGuessed) {
  // With a zero state budget only the bound-equal fast path can decide.
  // Whatever the fast path cannot prove must come back budget-exceeded
  // after at most one aborted expansion per side — never a guessed
  // verdict.
  CollectingRemarkSink Sink;
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.SchedAuditBudget = 0;
  compileToText("dotproduct", makeAlphaTarget(), CO, &Sink);

  unsigned Exceeded = 0;
  for (const Remark &R : Sink.remarks()) {
    if (std::string(R.Reason) != "sched-audit")
      continue;
    EXPECT_LE(std::stoul(argOf(R, "states")), 2u) << R.Block;
    std::string Status = argOf(R, "status");
    EXPECT_TRUE(Status == "budget-exceeded" ||
                Status == "confirmed-optimal")
        << R.Block << ": " << Status;
    if (Status == "budget-exceeded")
      ++Exceeded;
  }
  // dotproduct/alpha is the known list-suboptimal case: its audit needs
  // real search, so at least one verdict must go unproven here.
  EXPECT_GE(Exceeded, 1u);
  EXPECT_EQ(Sink.count("profitability-flipped"), 0u)
      << "an unproven audit must not claim a flip";
}

TEST(SchedAudit, DefaultBudgetFindsTheDotproductGap) {
  // Same kernel with the default budget: the audit proves the coalesced
  // body's list schedule one cycle off optimal and says so.
  CollectingRemarkSink Sink;
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  compileToText("dotproduct", makeAlphaTarget(), CO, &Sink);
  ASSERT_GE(Sink.count("sched-optimality-gap"), 1u);
  for (const Remark &R : Sink.remarks()) {
    if (std::string(R.Reason) != "sched-optimality-gap")
      continue;
    unsigned List = std::stoul(argOf(R, "list-cycles"));
    unsigned Exact = std::stoul(argOf(R, "exact-cycles"));
    EXPECT_LT(Exact, List) << R.Block;
  }
}

TEST(SchedAudit, PlantedSkewIsFlaggedAsFlipped) {
  // ProfitabilitySkew inflates the coalesced side's heuristic length, so
  // the heuristic rejects loops the exact lengths prove profitable. The
  // audit must call every such verdict out as flipped — this is the
  // mechanism the fuzzer's SchedLength fault relies on.
  CollectingRemarkSink Sink;
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.ProfitabilitySkew = 500;
  compileToText("image_add", makeAlphaTarget(), CO, &Sink);

  ASSERT_GE(Sink.count("profitability-flipped"), 1u);
  unsigned FlippedStatuses = 0;
  for (const Remark &R : Sink.remarks()) {
    if (std::string(R.Reason) == "sched-audit" &&
        argOf(R, "status") == "flipped")
      ++FlippedStatuses;
    if (std::string(R.Reason) == "profitability-flipped") {
      EXPECT_EQ(argOf(R, "list-verdict"), "reject") << R.Block;
      EXPECT_EQ(argOf(R, "exact-verdict"), "keep") << R.Block;
    }
  }
  // Every flipped verdict appears under both remark kinds, so queries on
  // either name see the same incident count.
  EXPECT_EQ(FlippedStatuses, Sink.count("profitability-flipped"));
}

} // namespace
