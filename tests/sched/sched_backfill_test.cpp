//===- tests/sched/sched_backfill_test.cpp - DepGraph details --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// Backfill coverage for the dependence graph and list scheduler the
// exact scheduler builds on: the latency values edges actually carry,
// anti/output ordering over the coalescer's wide memory operations, and
// the scheduler's deterministic tie-breaking.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "sched/DepGraph.h"
#include "sched/ListScheduler.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

const DepEdge *findEdge(const DepGraph &DG, size_t From, size_t To,
                        DepKind Kind) {
  for (const DepEdge &E : DG.edges())
    if (E.From == From && E.To == To && E.Kind == Kind)
      return &E;
  return nullptr;
}

TEST(DepGraphBackfill, EdgeLatenciesMatchTheTargetModel) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i32.u [r1]\n" // 0
           "  r3 = add r2, 1\n"       // 1: RAW on the load
           "  r3 = add r1, 2\n"       // 2: WAW on 1, WAR on nothing yet
           "  r4 = add r3, r2\n"      // 3: RAW on 2 (ALU producer)
           "  ret r4\n"               // 4
           "}\n");
  for (const TargetMachine &TM :
       {makeAlphaTarget(), makeM88100Target(), makeM68030Target()}) {
    DepGraph DG(*P.F->entry(), TM);
    // A RAW edge carries the *producer's* full result latency.
    const DepEdge *LoadUse = findEdge(DG, 0, 1, DepKind::RAW);
    ASSERT_NE(LoadUse, nullptr) << TM.name();
    EXPECT_EQ(LoadUse->Latency, TM.latency(P.F->entry()->insts()[0]))
        << TM.name();
    const DepEdge *AddUse = findEdge(DG, 2, 3, DepKind::RAW);
    ASSERT_NE(AddUse, nullptr) << TM.name();
    EXPECT_EQ(AddUse->Latency, TM.latency(P.F->entry()->insts()[2]))
        << TM.name();
    // Output dependences only keep issue order (one cycle); anti
    // dependences are free — the reader just has to issue first.
    const DepEdge *Waw = findEdge(DG, 1, 2, DepKind::WAW);
    ASSERT_NE(Waw, nullptr) << TM.name();
    EXPECT_EQ(Waw->Latency, 1u) << TM.name();
  }
}

TEST(DepGraphBackfill, AntiDependenceIsZeroLatency) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 1\n" // 0
           "  r3 = add r2, 1\n" // 1: reads r2
           "  r2 = add r1, 2\n" // 2: WAR on 1
           "  ret r3\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  DepGraph DG(*P.F->entry(), TM);
  const DepEdge *War = findEdge(DG, 1, 2, DepKind::WAR);
  ASSERT_NE(War, nullptr);
  EXPECT_EQ(War->Latency, 0u);
}

TEST(DepGraphBackfill, WideLoadIsOrderedAgainstNarrowStores) {
  // The coalescer's wide loads must participate in memory ordering like
  // any load: a narrow store into the same line cannot float above the
  // wide load that reads it, nor can the wide load float above an
  // earlier narrow store it observes.
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  store.i8 [r1], r2\n"       // 0
           "  r3 = loadwu.i64 [r1]\n"    // 1: reads the stored byte
           "  store.i8 [r1+2], r2\n"     // 2: overwrites part of the line
           "  r4 = loadwu.i64 [r1+8]\n"  // 3
           "  ret r3\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  DepGraph DG(*P.F->entry(), TM);
  EXPECT_NE(findEdge(DG, 0, 1, DepKind::Mem), nullptr)
      << "wide load must see the earlier narrow store";
  EXPECT_NE(findEdge(DG, 1, 2, DepKind::Mem), nullptr)
      << "narrow store must stay below the wide load it would clobber";
  EXPECT_NE(findEdge(DG, 2, 3, DepKind::Mem), nullptr);
  // Independent loads stay unordered even when wide.
  EXPECT_EQ(findEdge(DG, 1, 3, DepKind::Mem), nullptr);
}

TEST(DepGraphBackfill, WideStorePairsCarryOutputOrdering) {
  // Two coalesced wide stores to adjacent lines plus a redefinition of
  // the data register: the store-store Mem edge and the WAR edge from
  // the first store's read of r2 to its redefinition must both exist, or
  // scheduling could emit the stores with the wrong value.
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  store.i64 [r1], r2\n"   // 0
           "  store.i64 [r1+8], r2\n" // 1: Mem after 0
           "  r2 = add r2, 1\n"       // 2: WAR on both stores
           "  store.i64 [r1+16], r2\n" // 3
           "  ret r2\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  DepGraph DG(*P.F->entry(), TM);
  EXPECT_NE(findEdge(DG, 0, 1, DepKind::Mem), nullptr);
  EXPECT_NE(findEdge(DG, 0, 2, DepKind::WAR), nullptr);
  EXPECT_NE(findEdge(DG, 1, 2, DepKind::WAR), nullptr);
  EXPECT_NE(findEdge(DG, 2, 3, DepKind::RAW), nullptr);
}

TEST(ListSchedulerBackfill, TieBreakIsProgramOrder) {
  // Four independent same-latency instructions: every permutation has
  // the same makespan, so the result is pure tie-break. The scheduler
  // must fall back to program order (smaller index first), giving
  // bit-identical compiles across runs.
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 1\n"
           "  r3 = add r1, 2\n"
           "  r4 = add r1, 3\n"
           "  r5 = add r1, 4\n"
           "  ret r1\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  ScheduleResult S = scheduleBlock(*P.F->entry(), TM);
  EXPECT_EQ(S.Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ListSchedulerBackfill, RepeatedSchedulingIsDeterministic) {
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  r3 = load.i32.u [r1]\n"
           "  r4 = load.i32.u [r2]\n"
           "  r5 = add r3, 1\n"
           "  r6 = add r4, 1\n"
           "  r7 = mul r5, r6\n"
           "  store.i32 [r1], r7\n"
           "  ret r7\n"
           "}\n");
  TargetMachine TM = makeM68030Target();
  ScheduleResult First = scheduleBlock(*P.F->entry(), TM);
  for (int I = 0; I < 10; ++I) {
    ScheduleResult Again = scheduleBlock(*P.F->entry(), TM);
    EXPECT_EQ(Again.Order, First.Order);
    EXPECT_EQ(Again.Cycles, First.Cycles);
  }
}

TEST(ListSchedulerBackfill, HigherPriorityChainIssuesFirst) {
  // A long-latency load chain and a short ALU chain, both ready at
  // cycle 0: the load must issue first (greater height) so its latency
  // overlaps the ALU work. This pins the documented priority rule, not
  // just the resulting makespan.
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 1\n"      // 0: short chain first in program order
           "  r3 = load.i32.u [r1]\n" // 1: critical path
           "  r4 = add r3, r2\n"
           "  ret r4\n"
           "}\n");
  TargetMachine TM = makeAlphaTarget();
  ScheduleResult S = scheduleBlock(*P.F->entry(), TM);
  ASSERT_GE(S.Order.size(), 2u);
  EXPECT_EQ(S.Order[0], 1u) << "load heads the critical path";
  EXPECT_EQ(S.Order[1], 0u);
}

} // namespace
