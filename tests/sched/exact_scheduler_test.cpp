//===- tests/sched/exact_scheduler_test.cpp - B&B scheduler ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The exact scheduler's contract: never longer than the list schedule,
// Proved only when minimality actually holds, BudgetExceeded (and nothing
// stronger) when the search is cut off, deterministic, and — as the
// opt-in pipeline pass — able to shorten a real workload's schedule
// without changing its semantics.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "sched/ExactScheduler.h"
#include "sched/ListScheduler.h"
#include "support/RNG.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

#include <set>

using namespace vpo;
using namespace vpo::test;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

TEST(ExactScheduler, SerialChainProvedByTheFastPath) {
  // A pure dependence chain has exactly one legal order; the list
  // makespan equals the critical-path bound, so the proof costs zero
  // search states.
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = mul r1, 3\n"
           "  r3 = mul r2, 3\n"
           "  r4 = mul r3, 3\n"
           "  ret r4\n"
           "}\n");
  ExactScheduleResult R =
      exactScheduleBlock(*P.F->entry(), makeAlphaTarget());
  EXPECT_TRUE(R.Proved);
  EXPECT_FALSE(R.Improved);
  EXPECT_FALSE(R.BudgetExceeded);
  EXPECT_TRUE(R.conclusive());
  EXPECT_EQ(R.StatesExplored, 0u);
  EXPECT_EQ(R.Best.Cycles, R.List.Cycles);
}

/// Two loads feeding one add: the bounds treat the loads as if both could
/// start at cycle 0, but single issue forces the second to cycle 1 — the
/// list schedule sits one cycle above the lower bound and only the search
/// can close the gap (by exhausting the alternatives).
const char *TwoLoadJoin = "func @f(r1) {\n"
                          "e:\n"
                          "  r2 = load.i32.u [r1]\n"
                          "  r3 = load.i32.u [r1+4]\n"
                          "  r4 = add r2, r3\n"
                          "  ret r4\n"
                          "}\n";

TEST(ExactScheduler, SearchProvesListOptimalWhenBoundsCannot) {
  Parsed P(TwoLoadJoin);
  ExactScheduleResult R =
      exactScheduleBlock(*P.F->entry(), makeAlphaTarget());
  EXPECT_TRUE(R.Proved);
  EXPECT_FALSE(R.Improved) << "both load orders cost the same";
  EXPECT_GT(R.StatesExplored, 0u)
      << "this block must require actual search, or the budget tests "
         "below test nothing";
  EXPECT_EQ(R.Best.Cycles, R.List.Cycles);
}

TEST(ExactScheduler, StateBudgetExhaustionIsReportedNotHidden) {
  Parsed P(TwoLoadJoin);
  ExactSchedulerOptions Opts;
  Opts.MaxStates = 1;
  ExactScheduleResult R =
      exactScheduleBlock(*P.F->entry(), makeAlphaTarget(), Opts);
  EXPECT_TRUE(R.BudgetExceeded);
  EXPECT_FALSE(R.Proved);
  EXPECT_FALSE(R.conclusive());
  // The incumbent is still the list schedule — callers can apply Best
  // unconditionally even on a cut-off search.
  EXPECT_EQ(R.Best.Cycles, R.List.Cycles);
  EXPECT_EQ(R.Best.Order, R.List.Order);
}

TEST(ExactScheduler, OversizeBlocksSkipTheSearchEntirely) {
  Parsed P(TwoLoadJoin);
  ExactSchedulerOptions Opts;
  Opts.MaxBlockSize = 3;
  ExactScheduleResult R =
      exactScheduleBlock(*P.F->entry(), makeAlphaTarget(), Opts);
  EXPECT_TRUE(R.BudgetExceeded);
  EXPECT_EQ(R.StatesExplored, 0u);
  EXPECT_EQ(R.Best.Cycles, R.List.Cycles);
}

TEST(ExactScheduler, NeverLongerThanListOnRandomBlocks) {
  // Property sweep over random straight-line blocks on all three
  // targets: Best is a legal permutation, never longer than List,
  // conclusive results are consistent, and the search is deterministic.
  TargetMachine Targets[] = {makeAlphaTarget(), makeM88100Target(),
                             makeM68030Target()};
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    RNG R(Seed);
    Module M;
    Function *F = M.addFunction("f");
    Reg Base = F->addParam();
    IRBuilder B(F);
    B.createBlock("e");

    std::vector<Reg> Vals = {Base};
    auto AnyVal = [&]() { return Vals[R.nextBelow(Vals.size())]; };
    for (int I = 0; I < 16; ++I) {
      switch (R.nextBelow(6)) {
      case 0:
        Vals.push_back(B.add(AnyVal(), Operand::imm(R.nextInRange(-8, 8))));
        break;
      case 1:
        Vals.push_back(B.mul(AnyVal(), AnyVal()));
        break;
      case 2:
        Vals.push_back(B.xor_(AnyVal(), AnyVal()));
        break;
      case 3:
        Vals.push_back(B.load(Address(Base, R.nextInRange(0, 15) * 4),
                              MemWidth::W4, false));
        break;
      case 4:
        B.store(Address(Base, R.nextInRange(0, 15) * 4), AnyVal(),
                MemWidth::W4);
        break;
      case 5:
        Vals.push_back(B.shrL(AnyVal(), Operand::imm(R.nextBelow(8))));
        break;
      }
    }
    Reg Acc = B.mov(Operand::imm(0));
    for (Reg V : Vals)
      B.aluTo(Acc, Opcode::Add, Acc, V);
    B.ret(Acc);

    for (const TargetMachine &TM : Targets) {
      ExactScheduleResult E1 = exactScheduleBlock(*F->entry(), TM);
      ExactScheduleResult E2 = exactScheduleBlock(*F->entry(), TM);

      EXPECT_LE(E1.Best.Cycles, E1.List.Cycles) << "seed " << Seed;
      EXPECT_EQ(E1.Improved, E1.Best.Cycles < E1.List.Cycles)
          << "seed " << Seed;
      // Best must be a permutation of the block ending in the terminator.
      std::set<size_t> Seen(E1.Best.Order.begin(), E1.Best.Order.end());
      EXPECT_EQ(Seen.size(), F->entry()->size()) << "seed " << Seed;
      EXPECT_EQ(E1.Best.Order.back(), F->entry()->size() - 1)
          << "seed " << Seed;
      // Deterministic: same block, same target, same result.
      EXPECT_EQ(E1.Best.Order, E2.Best.Order) << "seed " << Seed;
      EXPECT_EQ(E1.StatesExplored, E2.StatesExplored) << "seed " << Seed;

      // Applying Best must preserve the estimator's makespan claim.
      if (E1.conclusive()) {
        std::string Err;
        auto Clone = parseModule(printFunction(*F), &Err);
        ASSERT_NE(Clone, nullptr) << Err;
        BasicBlock &BB = *Clone->functions().front()->entry();
        applySchedule(BB, E1.Best);
        EXPECT_EQ(estimateBlockCycles(BB, TM), E1.Best.Cycles)
            << "seed " << Seed;
      }
    }
  }
}

TEST(ExactScheduler, PipelinePassShortensDotproductOnAlpha) {
  // dotproduct/alpha is the known case where the list heuristic leaves a
  // cycle on the table (the bench matrix's optimality-gap histogram).
  // The opt-in pass must recover it without changing semantics.
  std::unique_ptr<Workload> W = makeWorkloadByName("dotproduct");
  ASSERT_NE(W, nullptr);
  TargetMachine TM = makeAlphaTarget();
  SetupOptions SO;
  SO.N = 1024;

  CompileOptions ListCO;
  ListCO.Mode = CoalesceMode::LoadsAndStores;
  CompileOptions ExactCO = ListCO;
  ExactCO.ExactSched = true;
  CollectingRemarkSink Sink;
  ExactCO.Remarks = &Sink;

  DifferentialResult ListR = runDifferential(*W, TM, ListCO, SO);
  DifferentialResult ExactR = runDifferential(*W, TM, ExactCO, SO);
  ASSERT_TRUE(ListR.Match) << ListR.Why;
  ASSERT_TRUE(ExactR.Match) << ExactR.Why;
  EXPECT_LT(ExactR.Run.Cycles, ListR.Run.Cycles)
      << "exact scheduling should shorten the hot loop";

  // The pass reports what it did.
  ASSERT_GE(Sink.count("exact-schedule"), 1u);
  bool SawImprovement = false;
  for (const Remark &R : Sink.remarks())
    for (const auto &KV : R.Args)
      if (std::string(KV.first) == "improved" && KV.second == "true")
        SawImprovement = true;
  EXPECT_TRUE(SawImprovement);
}

TEST(ExactScheduler, PipelinePassNeverLengthensAnyTableWorkload) {
  // Across the full paper matrix the opt-in pass must be monotone:
  // cycles with ExactSched <= cycles without, semantics identical.
  const char *Names[] = {"convolution", "image_add", "image_add16",
                         "image_xor",   "translate", "eqntott",
                         "mirror",      "dotproduct"};
  TargetMachine Targets[] = {makeAlphaTarget(), makeM88100Target(),
                             makeM68030Target()};
  SetupOptions SO;
  SO.N = 512;
  SO.Width = 32;
  SO.Height = 32;
  for (const char *Name : Names) {
    std::unique_ptr<Workload> W = makeWorkloadByName(Name);
    ASSERT_NE(W, nullptr) << Name;
    for (const TargetMachine &TM : Targets) {
      CompileOptions ListCO;
      ListCO.Mode = CoalesceMode::LoadsAndStores;
      CompileOptions ExactCO = ListCO;
      ExactCO.ExactSched = true;
      DifferentialResult ListR = runDifferential(*W, TM, ListCO, SO);
      DifferentialResult ExactR = runDifferential(*W, TM, ExactCO, SO);
      ASSERT_TRUE(ListR.Match) << Name << "/" << TM.name() << ": "
                               << ListR.Why;
      ASSERT_TRUE(ExactR.Match) << Name << "/" << TM.name() << ": "
                                << ExactR.Why;
      EXPECT_LE(ExactR.Run.Cycles, ListR.Run.Cycles)
          << Name << "/" << TM.name();
    }
  }
}

} // namespace
