//===- tests/sched/reg_pressure_test.cpp - max-live estimator -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// The register-pressure half of the unroll clamp: the linear-scan
// max-live estimator (per class, under a schedule order), the spill-cost
// model shared with the simulator, and the end-to-end property the whole
// chain exists for — on a small register file, the pressure-clamped
// pipeline beats the i-cache-only heuristic in simulated cycles under
// the spill-charging cycle model.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "pipeline/Pipeline.h"
#include "sched/RegPressure.h"
#include "sim/Interpreter.h"
#include "support/Remark.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

TEST(RegPressure, DefsWithoutLaterUsesAreLiveOut) {
  // Values defined but never read again in the block are assumed live-out
  // (loop temporaries feeding the next iteration), so all three movs
  // overlap by the end of the block.
  Parsed P("func @f() {\n"
           "e:\n"
           "  r1 = mov 1\n"
           "  r2 = mov 2\n"
           "  r3 = mov 3\n"
           "  ret r1\n"
           "}\n");
  PressureEstimate E = estimateMaxLive(*P.F->entry());
  EXPECT_EQ(E.MaxLiveInt, 3u);
  EXPECT_EQ(E.MaxLiveFP, 0u);
}

TEST(RegPressure, ScheduleOrderChangesMaxLive) {
  // Program order retires r2 into its store before r3 exists; a
  // loads-first order keeps both loaded values live at once.
  Parsed P("func @f(r1, r2) {\n"
           "e:\n"
           "  r3 = load.i8.u [r1]\n"
           "  store.i8 [r2], r3\n"
           "  r4 = load.i8.u [r1+1]\n"
           "  store.i8 [r2+1], r4\n"
           "  ret r4\n"
           "}\n");
  const BasicBlock &BB = *P.F->entry();
  PressureEstimate Program = estimateMaxLive(BB);
  PressureEstimate LoadsFirst = estimateMaxLive(BB, {0, 2, 1, 3, 4});
  EXPECT_GT(LoadsFirst.MaxLiveInt, Program.MaxLiveInt);
}

TEST(RegPressure, FloatValuesCountAgainstTheFPClass) {
  // r2/r3/r4 carry FP values (FP loads and the fadd); only the address
  // base r1 occupies an integer register.
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.f32 [r1]\n"
           "  r3 = load.f32 [r1+4]\n"
           "  r4 = fadd r2, r3\n"
           "  store.f32 [r1+8], r4\n"
           "  ret r1\n"
           "}\n");
  PressureEstimate E = estimateMaxLive(*P.F->entry());
  EXPECT_EQ(E.MaxLiveInt, 1u);
  EXPECT_GE(E.MaxLiveFP, 2u);
}

TEST(RegPressure, SpillCountIsPerTargetAndPerClass) {
  PressureEstimate E;
  E.MaxLiveInt = 20;
  E.MaxLiveFP = 10;
  // alpha (28 int / 28 fp) and m88100 (26/26) hold this comfortably; the
  // m68030's 13 data + 7 fp registers overflow in both classes.
  EXPECT_EQ(spillCount(E, makeAlphaTarget()), 0u);
  EXPECT_EQ(spillCount(E, makeM88100Target()), 0u);
  EXPECT_EQ(spillCount(E, makeM68030Target()), (20u - 13u) + (10u - 7u));
}

TEST(RegPressure, SpillPenaltyIsConvexInTheOverflow) {
  TargetMachine TM = makeM68030Target();
  PressureEstimate One, Two, Four;
  One.MaxLiveInt = TM.intRegs() + 1;
  Two.MaxLiveInt = TM.intRegs() + 2;
  Four.MaxLiveInt = TM.intRegs() + 4;
  uint64_t Cost = spillCycleCost(TM);
  EXPECT_EQ(spillPenaltyCycles(One, TM), 1 * Cost);
  EXPECT_EQ(spillPenaltyCycles(Two, TM), 4 * Cost);
  EXPECT_EQ(spillPenaltyCycles(Four, TM), 16 * Cost);
  // Thrashing: doubling the overflow more than doubles the charge.
  EXPECT_GT(spillPenaltyCycles(Two, TM), 2 * spillPenaltyCycles(One, TM));
}

TEST(RegPressure, SmallBlocksChargeNothing) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 1\n"
           "  ret r2\n"
           "}\n");
  EXPECT_EQ(blockSpillCycles(*P.F->entry(), makeM68030Target()), 0u);
  EXPECT_EQ(blockSpillCycles(*P.F->entry(), makeAlphaTarget()), 0u);
}

/// Compile + simulate one workload configuration under the spill-charging
/// cycle model, verifying against the golden implementation.
uint64_t cyclesUnderPressureModel(const char *Name, const TargetMachine &TM,
                                  const CompileOptions &CO,
                                  RemarkSink *Sink = nullptr) {
  Module M;
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  Function *F = W->build(M);
  CompileOptions Eff = CO;
  Eff.Remarks = Sink;
  compileFunction(*F, TM, Eff);

  Memory Mem;
  SetupOptions SO;
  SO.N = 4096;
  SO.Width = 64;
  SO.Height = 64;
  SetupResult S = W->setup(Mem, SO);
  std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
  int64_t ExpectedRet = W->golden(Golden.data(), SO, S);

  InterpreterOptions IO;
  IO.ModelRegPressure = true;
  Interpreter Interp(TM, Mem, IO);
  RunResult R = Interp.run(*F, S.Args);
  EXPECT_TRUE(R.ok()) << Name << ": " << R.Error;
  EXPECT_EQ(R.ReturnValue, ExpectedRet) << Name;
  EXPECT_EQ(std::memcmp(Mem.data(), Golden.data(), Mem.size()), 0) << Name;
  return R.Cycles;
}

TEST(RegPressure, ClampBeatsICacheHeuristicOnM68030) {
  // convolution's unrolled body overflows the m68030's 13 data registers;
  // under the spill-charging model the i-cache-only factor is a
  // measurable regression the clamp avoids. The clamp must also never
  // cost cycles when it fires.
  TargetMachine TM = makeM68030Target();
  CompileOptions Heuristic;
  Heuristic.Mode = CoalesceMode::LoadsAndStores;
  Heuristic.PressureClamp = false;
  CompileOptions Clamped = Heuristic;
  Clamped.PressureClamp = true;

  uint64_t Unclamped = cyclesUnderPressureModel("convolution", TM, Heuristic);
  uint64_t ClampedCycles =
      cyclesUnderPressureModel("convolution", TM, Clamped);
  EXPECT_LT(ClampedCycles, Unclamped)
      << "pressure clamp should win on the small register file";
}

TEST(RegPressure, ClampIsANoOpOnWideRegisterFiles) {
  // The same workload on alpha (28+28 registers) never triggers the
  // clamp: both configurations must produce identical cycle counts.
  TargetMachine TM = makeAlphaTarget();
  CompileOptions Heuristic;
  Heuristic.Mode = CoalesceMode::LoadsAndStores;
  Heuristic.PressureClamp = false;
  CompileOptions Clamped = Heuristic;
  Clamped.PressureClamp = true;
  EXPECT_EQ(cyclesUnderPressureModel("convolution", TM, Clamped),
            cyclesUnderPressureModel("convolution", TM, Heuristic));
}

TEST(RegPressure, ClampEmitsARemarkWithTheDecisionEvidence) {
  TargetMachine TM = makeM68030Target();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.PressureClamp = true;
  CollectingRemarkSink Sink;
  cyclesUnderPressureModel("convolution", TM, CO, &Sink);
  ASSERT_GE(Sink.count("unroll-clamped-pressure"), 1u);
  for (const Remark &R : Sink.remarks()) {
    if (std::string(R.Reason) != "unroll-clamped-pressure")
      continue;
    // The remark must carry enough to recompute the marginal rule:
    // refused pressure, both spill figures, and the modeled saving.
    std::set<std::string> Keys;
    for (const auto &KV : R.Args)
      Keys.insert(KV.first);
    for (const char *K :
         {"from", "to", "max-live-int", "max-live-fp", "int-regs",
          "fp-regs", "spill-cycles", "rolled-spill-cycles",
          "saving-cycles"})
      EXPECT_TRUE(Keys.count(K)) << "missing arg " << K;
  }
}

} // namespace
