//===- tests/transform/strength_reduce_test.cpp ----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "transform/Cleanup.h"
#include "transform/StrengthReduce.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

/// Naive front-end shape: addr = base + (i << 1) recomputed per access.
/// Sums n shorts from r1; r2 = n.
const char *NaiveIndexLoop = "func @f(r1, r2) {\n"
                             "entry:\n"
                             "  r3 = mov 0\n" // i
                             "  r4 = mov 0\n" // sum
                             "  br.les r2, 0, exit, body\n"
                             "body:\n"
                             "  r5 = shl r3, 1\n"
                             "  r6 = add r1, r5\n"
                             "  r7 = load.i16.s [r6]\n"
                             "  r4 = add r4, r7\n"
                             "  r3 = add r3, 1\n"
                             "  br.lts r3, r2, body, exit\n"
                             "exit:\n"
                             "  ret r4\n"
                             "}\n";

int64_t runSum16(Function &F, int64_t N) {
  TargetMachine TM = makeAlphaTarget();
  Memory Mem;
  uint64_t A = Mem.allocate(2 * static_cast<size_t>(N) + 64, 8);
  for (int64_t I = 0; I < N; ++I)
    Mem.write(A + 2 * I, 2, static_cast<uint64_t>((I * 5 - 7) & 0xffff));
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(F, {static_cast<int64_t>(A), N});
  EXPECT_TRUE(R.ok()) << R.Error;
  return R.ReturnValue;
}

TEST(StrengthReduce, DerivesPointerFromShiftedIndex) {
  Parsed P(NaiveIndexLoop);
  StrengthReduceStats S = strengthReduce(*P.F);
  EXPECT_EQ(S.LoopsExamined, 1u);
  EXPECT_EQ(S.PointersDerived, 1u);
  EXPECT_EQ(S.RefsRewritten, 1u);
  // The load's base register is now advanced by 2 per iteration; after
  // cleanup the shl/add chain is gone.
  runCleanupPipeline(*P.F);
  BasicBlock *Body = P.F->findBlock("body");
  unsigned Shifts = 0;
  for (const Instruction &I : Body->insts())
    Shifts += I.Op == Opcode::Shl;
  EXPECT_EQ(Shifts, 0u);
}

TEST(StrengthReduce, SemanticsPreserved) {
  for (int64_t N : {0LL, 1LL, 7LL, 32LL}) {
    Parsed Plain(NaiveIndexLoop);
    Parsed Reduced(NaiveIndexLoop);
    strengthReduce(*Reduced.F);
    runCleanupPipeline(*Reduced.F);
    EXPECT_EQ(runSum16(*Plain.F, N), runSum16(*Reduced.F, N)) << N;
  }
}

TEST(StrengthReduce, SharesPointerAcrossSameKeyRefs) {
  // Two refs to the same (base, iv, scale): one derived pointer.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = mov 0\n"
           "  r4 = mov 0\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r5 = shl r3, 1\n"
           "  r6 = add r1, r5\n"
           "  r7 = load.i16.s [r6]\n"
           "  r8 = shl r3, 1\n"
           "  r9 = add r1, r8\n"
           "  store.i16 [r9], r7\n"
           "  r3 = add r3, 1\n"
           "  br.lts r3, r2, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  StrengthReduceStats S = strengthReduce(*P.F);
  EXPECT_EQ(S.PointersDerived, 1u);
  EXPECT_EQ(S.RefsRewritten, 2u);
  BasicBlock *Body = P.F->findBlock("body");
  // Both refs share the same base register now.
  Reg LoadBase, StoreBase;
  for (const Instruction &I : Body->insts()) {
    if (I.Op == Opcode::Load)
      LoadBase = I.Addr.Base;
    if (I.Op == Opcode::Store)
      StoreBase = I.Addr.Base;
  }
  EXPECT_EQ(LoadBase, StoreBase);
}

TEST(StrengthReduce, DistinctScalesGetDistinctPointers) {
  // A byte table indexed by i and a short table indexed by i.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  r4 = mov 0\n"
           "  r5 = mov 0\n"
           "  br.les r3, 0, exit, body\n"
           "body:\n"
           "  r6 = add r1, r4\n"
           "  r7 = load.i8.u [r6]\n"
           "  r8 = shl r4, 1\n"
           "  r9 = add r2, r8\n"
           "  r10 = load.i16.s [r9]\n"
           "  r5 = add r5, r7\n"
           "  r5 = add r5, r10\n"
           "  r4 = add r4, 1\n"
           "  br.lts r4, r3, body, exit\n"
           "exit:\n"
           "  ret r5\n"
           "}\n");
  StrengthReduceStats S = strengthReduce(*P.F);
  EXPECT_EQ(S.PointersDerived, 2u);
  EXPECT_EQ(S.RefsRewritten, 2u);
}

TEST(StrengthReduce, MulScaleSupported) {
  // Scale 3 (a struct-of-3-bytes stride): mul instead of shl.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = mov 0\n"
           "  r4 = mov 0\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r5 = mul r3, 3\n"
           "  r6 = add r1, r5\n"
           "  r7 = load.i8.u [r6]\n"
           "  r4 = add r4, r7\n"
           "  r3 = add r3, 1\n"
           "  br.lts r3, r2, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  StrengthReduceStats S = strengthReduce(*P.F);
  EXPECT_EQ(S.PointersDerived, 1u);
  // Semantics with the odd stride.
  TargetMachine TM = makeAlphaTarget();
  Memory Mem;
  uint64_t A = Mem.allocate(128, 8);
  for (unsigned I = 0; I < 128; ++I)
    Mem.write(A + I, 1, I);
  runCleanupPipeline(*P.F);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*P.F, {static_cast<int64_t>(A), 10});
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ReturnValue, 0 + 3 + 6 + 9 + 12 + 15 + 18 + 21 + 24 + 27);
}

TEST(StrengthReduce, LeavesPointerIVCodeAlone) {
  // Already pointer-based: nothing to do.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r3 = load.i8.u [r1]\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  StrengthReduceStats S = strengthReduce(*P.F);
  EXPECT_EQ(S.PointersDerived, 0u);
  EXPECT_EQ(S.RefsRewritten, 0u);
}

TEST(StrengthReduce, RefusesWhenIncrementSplitsChain) {
  // i changes between the address computation and the use: the cached
  // address is intentionally stale and must not be rewritten.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = mov 0\n"
           "  r4 = mov 0\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r5 = shl r3, 1\n"
           "  r6 = add r1, r5\n"
           "  r3 = add r3, 1\n"
           "  r7 = load.i16.s [r6]\n"
           "  r4 = add r4, r7\n"
           "  br.lts r3, r2, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  StrengthReduceStats S = strengthReduce(*P.F);
  EXPECT_EQ(S.RefsRewritten, 0u);
}

TEST(StrengthReduce, DescendingIndex) {
  // i counts down; derived pointer must step negatively.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = mov r2\n"
           "  r3 = sub r3, 1\n"
           "  r4 = mov 0\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r5 = shl r3, 1\n"
           "  r6 = add r1, r5\n"
           "  r7 = load.i16.s [r6]\n"
           "  r4 = add r4, r7\n"
           "  r3 = sub r3, 1\n"
           "  br.ges r3, 0, body, exit\n"
           "exit:\n"
           "  ret r4\n"
           "}\n");
  StrengthReduceStats S = strengthReduce(*P.F);
  EXPECT_EQ(S.PointersDerived, 1u);
  runCleanupPipeline(*P.F);
  EXPECT_EQ(runSum16(*P.F, 16),
            [] {
              int64_t Sum = 0;
              for (int64_t I = 0; I < 16; ++I)
                Sum += static_cast<int16_t>((I * 5 - 7) & 0xffff);
              return Sum;
            }());
}

} // namespace
