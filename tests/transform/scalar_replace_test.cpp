//===- tests/transform/scalar_replace_test.cpp -----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "transform/ScalarReplace.h"
#include "workloads/Workload.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

/// Three-tap FIR over bytes: out[i] = a[i] + a[i+1] + a[i+2].
/// Two of the three loads per iteration are last iteration's values.
const char *FirLoop = "func @fir(r1, r2, r3) {\n"
                      "entry:\n"
                      "  r4 = add r1, r3\n"
                      "  br.les r3, 0, exit, body\n"
                      "body:\n"
                      "  r5 = load.i8.u [r1]\n"
                      "  r6 = load.i8.u [r1+1]\n"
                      "  r7 = load.i8.u [r1+2]\n"
                      "  r8 = add r5, r6\n"
                      "  r9 = add r8, r7\n"
                      "  store.i8 [r2], r9\n"
                      "  r1 = add r1, 1\n"
                      "  r2 = add r2, 1\n"
                      "  br.ltu r1, r4, body, exit\n"
                      "exit:\n"
                      "  ret 0\n"
                      "}\n";

int64_t runFir(Function &F, int64_t N, uint64_t *RefsOut = nullptr,
               std::vector<uint8_t> *OutBytes = nullptr) {
  TargetMachine TM = makeAlphaTarget();
  Memory Mem;
  uint64_t A = Mem.allocate(static_cast<size_t>(N) + 64, 8);
  uint64_t B = Mem.allocate(static_cast<size_t>(N) + 64, 8);
  for (int64_t I = 0; I < N + 2; ++I)
    Mem.write(A + I, 1, static_cast<uint64_t>((I * 11 + 5) & 0xff));
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(F, {static_cast<int64_t>(A),
                               static_cast<int64_t>(B), N});
  EXPECT_TRUE(R.ok()) << R.Error;
  if (RefsOut)
    *RefsOut = R.MemRefs();
  if (OutBytes)
    OutBytes->assign(Mem.data() + B, Mem.data() + B + N);
  return R.ReturnValue;
}

TEST(ScalarReplace, ReplacesFirChainWithRestrict) {
  Parsed P(FirLoop);
  P.F->paramInfo(1).NoAlias = true; // out does not alias a
  ScalarReplaceStats S = replaceSubscriptedScalars(*P.F);
  EXPECT_EQ(S.ChainsReplaced, 1u);
  EXPECT_EQ(S.LoadsRemoved, 2u);
  // Only one load remains in the body.
  unsigned BodyLoads = 0;
  for (const Instruction &I : P.F->findBlock("body")->insts())
    BodyLoads += I.isLoad();
  EXPECT_EQ(BodyLoads, 1u);
}

TEST(ScalarReplace, RefusedWithoutAliasInformation) {
  Parsed P(FirLoop);
  ScalarReplaceStats S = replaceSubscriptedScalars(*P.F);
  EXPECT_EQ(S.ChainsReplaced, 0u)
      << "the out stream could overwrite the carried window";
}

TEST(ScalarReplace, SemanticsAndTraffic) {
  for (int64_t N : {0LL, 1LL, 2LL, 3LL, 17LL, 64LL}) {
    Parsed Plain(FirLoop);
    Parsed Opt(FirLoop);
    Opt.F->paramInfo(1).NoAlias = true;
    replaceSubscriptedScalars(*Opt.F);
    uint64_t RefsPlain = 0, RefsOpt = 0;
    std::vector<uint8_t> OutPlain, OutOpt;
    runFir(*Plain.F, N, &RefsPlain, &OutPlain);
    runFir(*Opt.F, N, &RefsOpt, &OutOpt);
    EXPECT_EQ(OutPlain, OutOpt) << "N=" << N;
    if (N > 3) {
      EXPECT_LT(RefsOpt, RefsPlain) << "N=" << N;
    }
  }
}

TEST(ScalarReplace, ZeroTripNeverTouchesMemory) {
  Parsed P(FirLoop);
  P.F->paramInfo(1).NoAlias = true;
  replaceSubscriptedScalars(*P.F);
  TargetMachine TM = makeAlphaTarget();
  Memory Mem; // nothing allocated
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*P.F, {4096, 8192, 0});
  EXPECT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.MemRefs(), 0u);
}

TEST(ScalarReplace, DescendingStream) {
  // out[i] = a[j] + a[j+1] with the a-pointer walking DOWN.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  r4 = add r1, r3\n" // a-pointer starts at the top window
           "  r5 = add r2, r3\n"
           "  br.les r3, 0, exit, body\n"
           "body:\n"
           "  r6 = load.i8.u [r4]\n"
           "  r7 = load.i8.u [r4+1]\n"
           "  r8 = add r6, r7\n"
           "  store.i8 [r2], r8\n"
           "  r4 = sub r4, 1\n"
           "  r2 = add r2, 1\n"
           "  br.ltu r2, r5, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  P.F->paramInfo(1).NoAlias = true;
  ScalarReplaceStats S = replaceSubscriptedScalars(*P.F);
  EXPECT_EQ(S.ChainsReplaced, 1u);
  // Differential against the unreplaced version.
  Parsed Plain("func @f(r1, r2, r3) {\n"
               "entry:\n"
               "  r4 = add r1, r3\n"
               "  r5 = add r2, r3\n"
               "  br.les r3, 0, exit, body\n"
               "body:\n"
               "  r6 = load.i8.u [r4]\n"
               "  r7 = load.i8.u [r4+1]\n"
               "  r8 = add r6, r7\n"
               "  store.i8 [r2], r8\n"
               "  r4 = sub r4, 1\n"
               "  r2 = add r2, 1\n"
               "  br.ltu r2, r5, body, exit\n"
               "exit:\n"
               "  ret 0\n"
               "}\n");
  auto Run = [](Function &F, int64_t N) {
    TargetMachine TM = makeAlphaTarget();
    Memory Mem;
    uint64_t A = Mem.allocate(static_cast<size_t>(N) + 64, 8);
    uint64_t B = Mem.allocate(static_cast<size_t>(N) + 64, 8);
    for (int64_t I = 0; I < N + 2; ++I)
      Mem.write(A + I, 1, static_cast<uint64_t>((I * 3 + 1) & 0xff));
    Interpreter Interp(TM, Mem);
    RunResult R = Interp.run(F, {static_cast<int64_t>(A),
                                 static_cast<int64_t>(B), N});
    EXPECT_TRUE(R.ok()) << R.Error;
    return std::vector<uint8_t>(Mem.data() + B, Mem.data() + B + N);
  };
  for (int64_t N : {1LL, 2LL, 9LL, 32LL})
    EXPECT_EQ(Run(*P.F, N), Run(*Plain.F, N)) << "N=" << N;
}

TEST(ScalarReplace, RefusedWhenStoreHitsWindow) {
  // In-place smoothing: the store writes into the carried window.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = add r1, r2\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r4 = load.i8.u [r1]\n"
           "  r5 = load.i8.u [r1+1]\n"
           "  r6 = add r4, r5\n"
           "  store.i8 [r1+1], r6\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r3, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  EXPECT_EQ(replaceSubscriptedScalars(*P.F).ChainsReplaced, 0u);
}

TEST(ScalarReplace, StoreBehindStreamIsFine) {
  // The store writes at offset -1: already consumed, never carried.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = add r1, r2\n"
           "  br.les r2, 0, exit, body\n"
           "body:\n"
           "  r4 = load.i8.u [r1]\n"
           "  r5 = load.i8.u [r1+1]\n"
           "  r6 = add r4, r5\n"
           "  store.i8 [r1-1], r6\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r3, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  EXPECT_EQ(replaceSubscriptedScalars(*P.F).ChainsReplaced, 1u);
}

TEST(ScalarReplace, ConvolutionCutsLoadsPerPixel) {
  // The flagship customer: 9 loads per pixel become 3.
  auto W = makeWorkloadByName("convolution");
  TargetMachine TM = makeAlphaTarget();
  uint64_t Refs[2];
  for (int Use = 0; Use < 2; ++Use) {
    Module M;
    Function *F = W->build(M);
    for (size_t P = 0; P < 3; ++P) // the three pointer parameters
      F->paramInfo(P).NoAlias = true;
    CompileOptions CO;
    CO.Mode = CoalesceMode::None;
    CO.Unroll = false;
    CO.ScalarReplace = Use == 1;
    CompileReport R = compileFunction(*F, TM, CO);
    if (Use == 1) {
      EXPECT_EQ(R.ScalarReplace.ChainsReplaced, 3u) << "three tap rows";
      EXPECT_EQ(R.ScalarReplace.LoadsRemoved, 6u);
    }

    Memory Mem;
    SetupOptions SO;
    SO.Width = 40;
    SO.Height = 12;
    SetupResult S = W->setup(Mem, SO);
    std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
    W->golden(Golden.data(), SO, S);
    Interpreter Interp(TM, Mem);
    RunResult Run = Interp.run(*F, S.Args);
    ASSERT_TRUE(Run.ok()) << Run.Error;
    EXPECT_EQ(std::memcmp(Mem.data(), Golden.data(), Mem.size()), 0)
        << "scalar-replace=" << Use;
    Refs[Use] = Run.MemRefs();
  }
  EXPECT_LT(Refs[1], Refs[0] * 2 / 3)
      << "two thirds of the tap loads must disappear";
}

} // namespace
