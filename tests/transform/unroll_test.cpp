//===- tests/transform/unroll_test.cpp -------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "transform/Unroll.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

/// A byte-summing loop: r1 = array base, r2 = byte count.
const char *SumLoop = "func @sum(r1, r2) {\n"
                      "entry:\n"
                      "  r3 = mov 0\n"
                      "  r4 = add r1, r2\n"
                      "  br.les r2, 0, exit, body\n"
                      "body:\n"
                      "  r5 = load.i8.u [r1]\n"
                      "  r3 = add r3, r5\n"
                      "  r1 = add r1, 1\n"
                      "  br.ltu r1, r4, body, exit\n"
                      "exit:\n"
                      "  ret r3\n"
                      "}\n";

struct LoopFixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  std::unique_ptr<CFG> G;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  Loop *L = nullptr;
  std::unique_ptr<LoopScalarInfo> LSI;

  explicit LoopFixture(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    F = M->functions().front().get();
    G = std::make_unique<CFG>(*F);
    DT = std::make_unique<DominatorTree>(*G);
    LI = std::make_unique<LoopInfo>(*G, *DT);
    EXPECT_FALSE(LI->loops().empty());
    L = LI->loops().front().get();
    LSI = std::make_unique<LoopScalarInfo>(*L, *F);
  }
};

int64_t runSum(Function &F, int64_t N, const TargetMachine &TM) {
  Memory Mem;
  uint64_t A = Mem.allocate(static_cast<size_t>(N) + 64, 8);
  for (int64_t I = 0; I < N; ++I)
    Mem.write(A + I, 1, static_cast<uint64_t>((I * 7 + 3) & 0xff));
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(F, {static_cast<int64_t>(A), N});
  EXPECT_TRUE(R.ok()) << R.Error;
  return R.ReturnValue;
}

int64_t expectedSum(int64_t N) {
  int64_t S = 0;
  for (int64_t I = 0; I < N; ++I)
    S += (I * 7 + 3) & 0xff;
  return S;
}

TEST(Unroll, CanUnrollValidLoop) {
  LoopFixture Fx(SumLoop);
  TargetMachine TM = makeAlphaTarget();
  EXPECT_EQ(canUnrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM),
            UnrollFailure::None);
}

TEST(Unroll, RejectsBadFactors) {
  LoopFixture Fx(SumLoop);
  TargetMachine TM = makeAlphaTarget();
  EXPECT_EQ(canUnrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 1, TM),
            UnrollFailure::BadFactor);
  EXPECT_EQ(canUnrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 3, TM),
            UnrollFailure::BadFactor);
}

TEST(Unroll, RejectsMultiBlockLoop) {
  LoopFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp head\n"
                 "head:\n"
                 "  r3 = load.i8.u [r1]\n"
                 "  br.lts r3, 0, skip, latch\n"
                 "skip:\n"
                 "  jmp latch\n"
                 "latch:\n"
                 "  r1 = add r1, 1\n"
                 "  br.ltu r1, r2, head, exit\n"
                 "exit:\n"
                 "  ret 0\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  EXPECT_EQ(canUnrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM),
            UnrollFailure::NotSingleBlock);
}

TEST(Unroll, RejectsNonCanonicalBound) {
  // Loop bound compares two loop-varying registers.
  LoopFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r1 = add r1, 1\n"
                 "  r2 = add r2, 2\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret r1\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  EXPECT_EQ(canUnrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM),
            UnrollFailure::NoCanonicalBound);
}

TEST(Unroll, RejectsEqualityBound) {
  LoopFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r1 = add r1, 1\n"
                 "  br.ne r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret r1\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  EXPECT_EQ(canUnrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM),
            UnrollFailure::UnsupportedBound);
}

TEST(Unroll, RejectsIVUsedAsValue) {
  // The IV feeds a multiply: its per-copy value would need materializing.
  LoopFixture Fx("func @f(r1, r2) {\n"
                 "entry:\n"
                 "  r3 = mov 0\n"
                 "  jmp body\n"
                 "body:\n"
                 "  r4 = mul r1, 3\n"
                 "  r3 = add r3, r4\n"
                 "  r1 = add r1, 1\n"
                 "  br.ltu r1, r2, body, exit\n"
                 "exit:\n"
                 "  ret r3\n"
                 "}\n");
  TargetMachine TM = makeAlphaTarget();
  EXPECT_EQ(canUnrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM),
            UnrollFailure::IVUsedOutsideAddress);
}

TEST(Unroll, ICacheHeuristicCapsFactor) {
  LoopFixture Fx(SumLoop);
  TargetMachine Tiny = makeM68030Target(); // 256-byte i-cache
  unsigned Factor = chooseUnrollFactor(*Fx.L, Tiny, 64);
  TargetMachine Big = makeAlphaTarget();
  unsigned FactorBig = chooseUnrollFactor(*Fx.L, Big, 64);
  EXPECT_LT(Factor, FactorBig);
  EXPECT_GE(Factor, 2u);
}

TEST(Unroll, ProducesExpectedStructure) {
  LoopFixture Fx(SumLoop);
  TargetMachine TM = makeAlphaTarget();
  UnrollResult UR;
  ASSERT_EQ(unrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM, UR),
            UnrollFailure::None);
  EXPECT_EQ(UR.Factor, 4u);
  ASSERT_NE(UR.UnrolledBody, nullptr);
  ASSERT_NE(UR.RemainderBody, nullptr);
  ASSERT_NE(UR.Setup, nullptr);
  ASSERT_NE(UR.Guard, nullptr);
  // The unrolled body has 4 loads with displacements 0..3 and one
  // combined increment of 4.
  unsigned Loads = 0;
  int64_t CombinedInc = 0;
  for (const Instruction &I : UR.UnrolledBody->insts()) {
    if (I.isLoad()) {
      EXPECT_EQ(I.Addr.Disp, Loads);
      ++Loads;
    }
    if (I.Op == Opcode::Add && I.Dst == Reg(1) && I.B.isImm())
      CombinedInc = I.B.imm();
  }
  EXPECT_EQ(Loads, 4u);
  EXPECT_EQ(CombinedInc, 4);
  // The original rolled body still exists and still has one load.
  unsigned RolledLoads = 0;
  for (const Instruction &I : UR.RolledBody->insts())
    RolledLoads += I.isLoad();
  EXPECT_EQ(RolledLoads, 1u);
}

TEST(Unroll, SemanticsAcrossTripCounts) {
  TargetMachine TM = makeAlphaTarget();
  for (int64_t N : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 100}) {
    LoopFixture Fx(SumLoop);
    UnrollResult UR;
    ASSERT_EQ(unrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM, UR),
              UnrollFailure::None);
    EXPECT_EQ(runSum(*Fx.F, N, TM), expectedSum(N)) << "N=" << N;
  }
}

TEST(Unroll, DescendingLoopSemantics) {
  const char *DescLoop = "func @f(r1, r2) {\n"
                         "entry:\n"
                         "  r3 = mov 0\n"
                         "  r4 = add r1, r2\n"
                         "  r4 = sub r4, 1\n"
                         "  br.les r2, 0, exit, body\n"
                         "body:\n"
                         "  r5 = load.i8.u [r4]\n"
                         "  r3 = add r3, r5\n"
                         "  r4 = sub r4, 1\n"
                         "  br.gtu r4, r1, body, exit\n"
                         "exit:\n"
                         "  ret r3\n"
                         "}\n";
  // Note: this loop sums bytes N-1 down to 1 (it stops when the pointer
  // equals the base), so compare against that reference.
  TargetMachine TM = makeAlphaTarget();
  for (int64_t N : {2, 4, 5, 8, 9, 33}) {
    LoopFixture Fx(DescLoop);
    UnrollResult UR;
    ASSERT_EQ(unrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 4, TM, UR),
              UnrollFailure::None)
        << "N=" << N;
    int64_t Expect = 0;
    for (int64_t I = 1; I < N; ++I)
      Expect += (I * 7 + 3) & 0xff;
    EXPECT_EQ(runSum(*Fx.F, N, TM), Expect) << "N=" << N;
  }
}

TEST(Unroll, MultipleIncrementsPerIteration) {
  const char *TwoStep = "func @f(r1, r2) {\n"
                        "entry:\n"
                        "  r3 = mov 0\n"
                        "  r4 = add r1, r2\n"
                        "  br.les r2, 0, exit, body\n"
                        "body:\n"
                        "  r5 = load.i8.u [r1]\n"
                        "  r1 = add r1, 1\n"
                        "  r6 = load.i8.u [r1]\n"
                        "  r1 = add r1, 1\n"
                        "  r7 = add r5, r6\n"
                        "  r3 = add r3, r7\n"
                        "  br.ltu r1, r4, body, exit\n"
                        "exit:\n"
                        "  ret r3\n"
                        "}\n";
  TargetMachine TM = makeAlphaTarget();
  for (int64_t N : {0, 2, 4, 6, 8, 10, 16, 18, 34}) {
    LoopFixture Fx(TwoStep);
    UnrollResult UR;
    ASSERT_EQ(unrollLoop(*Fx.F, *Fx.L, *Fx.LSI, 2, TM, UR),
              UnrollFailure::None);
    EXPECT_EQ(runSum(*Fx.F, N, TM), expectedSum(N)) << "N=" << N;
  }
}

TEST(Unroll, InexactStrideFallsBackToRolledLoop) {
  // A shortword loop whose byte span is odd: the setup's stride check
  // must route execution to the original loop (which then runs the
  // partial final iteration exactly as the rolled code would).
  const char *ShortLoop = "func @f(r1, r2) {\n"
                          "entry:\n"
                          "  r3 = mov 0\n"
                          "  r4 = add r1, r2\n"
                          "  br.les r2, 0, exit, body\n"
                          "body:\n"
                          "  r5 = load.i16.u [r1]\n"
                          "  r3 = add r3, r5\n"
                          "  r1 = add r1, 2\n"
                          "  br.ltu r1, r4, body, exit\n"
                          "exit:\n"
                          "  ret r3\n"
                          "}\n";
  TargetMachine TM = makeAlphaTarget();
  // Span 10 (5 shorts) and span 9 (4.5 shorts: inexact).
  for (int64_t Span : {10, 9}) {
    LoopFixture Rolled(ShortLoop);
    LoopFixture Unrolled(ShortLoop);
    UnrollResult UR;
    ASSERT_EQ(
        unrollLoop(*Unrolled.F, *Unrolled.L, *Unrolled.LSI, 4, TM, UR),
        UnrollFailure::None);
    EXPECT_EQ(runSum(*Unrolled.F, Span, TM), runSum(*Rolled.F, Span, TM))
        << "span=" << Span;
  }
}

} // namespace
