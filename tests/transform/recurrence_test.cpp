//===- tests/transform/recurrence_test.cpp ---------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "transform/Recurrence.h"
#include "workloads/Workload.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }

  unsigned countLoadsIn(const std::string &BlockName) const {
    BasicBlock *BB = F->findBlock(BlockName);
    EXPECT_NE(BB, nullptr);
    unsigned N = 0;
    for (const Instruction &I : BB->insts())
      N += I.isLoad();
    return N;
  }
};

/// Prefix-sum style recurrence: a[i] = a[i-1] + b[i] over bytes.
const char *PrefixLoop = "func @prefix(r1, r2, r3) {\n"
                         "entry:\n"
                         "  r4 = add r1, 1\n"
                         "  r5 = add r1, r3\n"
                         "  br.les r3, 1, exit, body\n"
                         "body:\n"
                         "  r6 = load.i8.u [r4-1]\n"
                         "  r7 = load.i8.u [r2]\n"
                         "  r8 = add r6, r7\n"
                         "  store.i8 [r4], r8\n"
                         "  r4 = add r4, 1\n"
                         "  r2 = add r2, 1\n"
                         "  br.ltu r4, r5, body, exit\n"
                         "exit:\n"
                         "  ret 0\n"
                         "}\n";

TEST(Recurrence, DetectsPrefixSum) {
  Parsed P(PrefixLoop);
  // Cross-partition store safety needs restrict on the other stream...
  // there is no other store, so nothing is required.
  RecurrenceStats S = optimizeRecurrences(*P.F);
  EXPECT_EQ(S.LoopsExamined, 1u);
  EXPECT_EQ(S.RecurrencesOptimized, 1u);
  // The a[i-1] load is gone from the body; only the b load remains.
  EXPECT_EQ(P.countLoadsIn("body"), 1u);
}

TEST(Recurrence, SemanticsPreserved) {
  TargetMachine TM = makeAlphaTarget();
  for (int64_t N : {0LL, 1LL, 2LL, 3LL, 17LL, 64LL}) {
    Parsed Plain(PrefixLoop);
    Parsed Opt(PrefixLoop);
    optimizeRecurrences(*Opt.F);
    auto Run = [&](Function &F) {
      Memory Mem;
      uint64_t A = Mem.allocate(256, 8);
      uint64_t B = Mem.allocate(256, 8);
      for (unsigned I = 0; I < 256; ++I) {
        Mem.write(A + I, 1, (I * 3 + 1) & 0xff);
        Mem.write(B + I, 1, (I * 5 + 2) & 0xff);
      }
      Interpreter Interp(TM, Mem);
      RunResult R = Interp.run(F, {static_cast<int64_t>(A),
                                   static_cast<int64_t>(B), N});
      EXPECT_TRUE(R.ok()) << R.Error;
      return std::make_pair(
          std::vector<uint8_t>(Mem.data() + A, Mem.data() + A + 256),
          R.MemRefs());
    };
    auto [MemPlain, RefsPlain] = Run(*Plain.F);
    auto [MemOpt, RefsOpt] = Run(*Opt.F);
    EXPECT_EQ(MemPlain, MemOpt) << "N=" << N;
    if (N > 2) {
      EXPECT_LT(RefsOpt, RefsPlain)
          << "one load per iteration must disappear, N=" << N;
    }
  }
}

TEST(Recurrence, ZeroTripNeverTouchesMemory) {
  Parsed P(PrefixLoop);
  optimizeRecurrences(*P.F);
  TargetMachine TM = makeAlphaTarget();
  Memory Mem;
  // No allocation at all: any access would be out of bounds. n = 0 must
  // not execute the carry pre-load.
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*P.F, {4096, 8192, 0});
  EXPECT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.MemRefs(), 0u);
}

TEST(Recurrence, RefusedWhenOtherStoreMayClobber) {
  // A second store stream without restrict: the carried value could be
  // overwritten in memory.
  Parsed P("func @f(r1, r2, r3) {\n"
           "entry:\n"
           "  r4 = add r1, 1\n"
           "  r5 = add r1, r3\n"
           "  br.les r3, 1, exit, body\n"
           "body:\n"
           "  r6 = load.i8.u [r4-1]\n"
           "  store.i8 [r2], r6\n"
           "  store.i8 [r4], r6\n"
           "  r4 = add r4, 1\n"
           "  r2 = add r2, 1\n"
           "  br.ltu r4, r5, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  RecurrenceStats S = optimizeRecurrences(*P.F);
  EXPECT_EQ(S.RecurrencesOptimized, 0u);
  // With restrict it applies.
  Parsed P2("func @f(r1, r2, r3) {\n"
            "entry:\n"
            "  r4 = add r1, 1\n"
            "  r5 = add r1, r3\n"
            "  br.les r3, 1, exit, body\n"
            "body:\n"
            "  r6 = load.i8.u [r4-1]\n"
            "  store.i8 [r2], r6\n"
            "  store.i8 [r4], r6\n"
            "  r4 = add r4, 1\n"
            "  r2 = add r2, 1\n"
            "  br.ltu r4, r5, body, exit\n"
            "exit:\n"
            "  ret 0\n"
            "}\n");
  P2.F->paramInfo(1).NoAlias = true;
  EXPECT_EQ(optimizeRecurrences(*P2.F).RecurrencesOptimized, 1u);
}

TEST(Recurrence, RefusedWhenDistanceMismatches) {
  // Load of x[i-2] with step 1: not a carriable distance-1 recurrence.
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = add r1, 2\n"
           "  r4 = add r1, r2\n"
           "  br.les r2, 2, exit, body\n"
           "body:\n"
           "  r5 = load.i8.u [r3-2]\n"
           "  store.i8 [r3], r5\n"
           "  r3 = add r3, 1\n"
           "  br.ltu r3, r4, body, exit\n"
           "exit:\n"
           "  ret 0\n"
           "}\n");
  EXPECT_EQ(optimizeRecurrences(*P.F).RecurrencesOptimized, 0u);
}

TEST(Recurrence, Livermore5FloatRoundTrip) {
  // The paper's own example. The f32 store rounds the double product;
  // the carried register must observe the same rounding.
  auto W = makeWorkloadByName("livermore5");
  TargetMachine TM = makeAlphaTarget();
  for (bool UseRec : {false, true}) {
    Module M;
    Function *F = W->build(M);
    Memory Mem;
    SetupOptions SO;
    SO.N = 1000;
    SetupResult S = W->setup(Mem, SO);
    std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
    W->golden(Golden.data(), SO, S);

    CompileOptions CO;
    CO.Mode = CoalesceMode::None;
    CO.Unroll = false;
    CO.OptimizeRecurrences = UseRec;
    CompileReport R = compileFunction(*F, TM, CO);
    if (UseRec) {
      EXPECT_EQ(R.Recurrence.RecurrencesOptimized, 1u);
    }

    Interpreter Interp(TM, Mem);
    RunResult Run = Interp.run(*F, S.Args);
    ASSERT_TRUE(Run.ok()) << Run.Error;
    EXPECT_EQ(std::memcmp(Mem.data(), Golden.data(), Mem.size()), 0)
        << "recurrence=" << UseRec;
    if (UseRec) {
      EXPECT_LE(Run.Loads, 2u * 1000 + 16)
          << "the x[i-1] load must be gone";
    }
  }
}

TEST(Recurrence, EnablesStoreCoalescing) {
  // Without the pass, the x[i-1] load is a Fig. 4 hazard that blocks
  // coalescing the x store run; with it, the store stream coalesces.
  auto W = makeWorkloadByName("livermore5");
  TargetMachine TM = makeAlphaTarget();
  for (bool UseRec : {false, true}) {
    Module M;
    Function *F = W->build(M);
    for (size_t P = 0; P < F->params().size(); ++P) {
      F->paramInfo(P).NoAlias = true;
      F->paramInfo(P).KnownAlign = 8;
    }
    CompileOptions CO;
    CO.Mode = CoalesceMode::LoadsAndStores;
    CO.Unroll = true;
    CO.OptimizeRecurrences = UseRec;
    CO.RequireProfitability = false; // isolate the legality question
    CompileReport R = compileFunction(*F, TM, CO);
    if (UseRec)
      EXPECT_GE(R.Coalesce.StoreRunsCoalesced, 1u)
          << "removing the recurrent load must unlock the store run";
    else
      EXPECT_EQ(R.Coalesce.StoreRunsCoalesced, 0u);
  }
}

} // namespace
