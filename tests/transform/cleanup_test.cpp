//===- tests/transform/cleanup_test.cpp ------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "sim/Interpreter.h"
#include "support/RNG.h"
#include "target/TargetMachine.h"
#include "transform/Cleanup.h"
#include "transform/Utils.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

struct Parsed {
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit Parsed(const std::string &Text) {
    std::string Err;
    M = parseModule(Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    if (M)
      F = M->functions().front().get();
  }
};

TEST(DCE, RemovesDeadArithmetic) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 1\n"
           "  r3 = mul r2, 3\n" // dead
           "  ret r2\n"
           "}\n");
  CleanupStats S = eliminateDeadCode(*P.F);
  EXPECT_EQ(S.DeadRemoved, 1u);
  EXPECT_EQ(P.F->entry()->size(), 2u);
}

TEST(DCE, RemovesDeadChains) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 1\n" // dead only after r3 removed
           "  r3 = mul r2, 3\n" // dead
           "  ret r1\n"
           "}\n");
  CleanupStats S = eliminateDeadCode(*P.F);
  EXPECT_EQ(S.DeadRemoved, 2u);
  EXPECT_EQ(P.F->entry()->size(), 1u);
}

TEST(DCE, RemovesDeadLoadsButNotStores) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = load.i32.u [r1]\n" // dead load: removable
           "  store.i32 [r1+4], 7\n"  // never removable
           "  ret 0\n"
           "}\n");
  CleanupStats S = eliminateDeadCode(*P.F);
  EXPECT_EQ(S.DeadRemoved, 1u);
  ASSERT_EQ(P.F->entry()->size(), 2u);
  EXPECT_EQ(P.F->entry()->insts()[0].Op, Opcode::Store);
}

TEST(DCE, KeepsLoopCarriedValues) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  r3 = mov 0\n"
           "  jmp body\n"
           "body:\n"
           "  r3 = add r3, 1\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r3\n"
           "}\n");
  CleanupStats S = eliminateDeadCode(*P.F);
  EXPECT_EQ(S.DeadRemoved, 0u);
}

TEST(CopyProp, ForwardsRegisterCopies) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = mov r1\n"
           "  r3 = add r2, 1\n"
           "  ret r3\n"
           "}\n");
  CleanupStats S = propagateCopies(*P.F);
  EXPECT_GE(S.CopiesPropagated, 1u);
  EXPECT_EQ(P.F->entry()->insts()[1].A.reg(), Reg(1));
}

TEST(CopyProp, ForwardsImmediates) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = mov 5\n"
           "  r3 = add r1, r2\n"
           "  ret r3\n"
           "}\n");
  propagateCopies(*P.F);
  EXPECT_TRUE(P.F->entry()->insts()[1].B.isImm());
  EXPECT_EQ(P.F->entry()->insts()[1].B.imm(), 5);
}

TEST(CopyProp, StopsAtRedefinitionOfSource) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = mov r1\n"
           "  r1 = add r1, 1\n" // source changes
           "  r3 = add r2, 0\n" // must still read the old value via r2
           "  ret r3\n"
           "}\n");
  propagateCopies(*P.F);
  EXPECT_TRUE(P.F->entry()->insts()[2].A.isReg());
  EXPECT_EQ(P.F->entry()->insts()[2].A.reg(), Reg(2));
}

TEST(CopyProp, ChainsThroughMultipleCopies) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = mov r1\n"
           "  r3 = mov r2\n"
           "  r4 = add r3, 1\n"
           "  ret r4\n"
           "}\n");
  propagateCopies(*P.F);
  EXPECT_EQ(P.F->entry()->insts()[2].A.reg(), Reg(1));
}

TEST(CopyProp, RewritesAddressBases) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = mov r1\n"
           "  r3 = load.i32.u [r2+4]\n"
           "  ret r3\n"
           "}\n");
  propagateCopies(*P.F);
  EXPECT_EQ(P.F->entry()->insts()[1].Addr.Base, Reg(1));
}

TEST(ConstFold, FoldsImmediateALU) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add 3, 4\n"
           "  r3 = mul 5, -2\n"
           "  r4 = shl 1, 10\n"
           "  r5 = add r2, r3\n"
           "  r6 = add r5, r4\n"
           "  ret r6\n"
           "}\n");
  CleanupStats S = foldConstants(*P.F);
  EXPECT_EQ(S.Folded, 3u);
  EXPECT_EQ(P.F->entry()->insts()[0].Op, Opcode::Mov);
  EXPECT_EQ(P.F->entry()->insts()[0].A.imm(), 7);
  EXPECT_EQ(P.F->entry()->insts()[1].A.imm(), -10);
  EXPECT_EQ(P.F->entry()->insts()[2].A.imm(), 1024);
}

TEST(ConstFold, NeverFoldsDivisionByZero) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = divs 5, 0\n"
           "  ret r2\n"
           "}\n");
  CleanupStats S = foldConstants(*P.F);
  EXPECT_EQ(S.Folded, 0u);
  EXPECT_EQ(P.F->entry()->insts()[0].Op, Opcode::DivS);
}

TEST(ConstFold, Identities) {
  Parsed P("func @f(r1) {\n"
           "e:\n"
           "  r2 = add r1, 0\n"
           "  r3 = mul r2, 1\n"
           "  r4 = or r3, 0\n"
           "  r5 = shl r4, 0\n"
           "  r6 = and r5, -1\n"
           "  r7 = mul r6, 0\n"
           "  r8 = and r6, 0\n"
           "  r9 = add r7, r8\n"
           "  r10 = add r6, r9\n"
           "  ret r10\n"
           "}\n");
  CleanupStats S = foldConstants(*P.F);
  EXPECT_EQ(S.Folded, 7u);
  // x+0 etc. became movs of the register; x*0 and x&0 became mov 0.
  EXPECT_EQ(P.F->entry()->insts()[0].Op, Opcode::Mov);
  EXPECT_EQ(P.F->entry()->insts()[5].A.imm(), 0);
}

TEST(CleanupPipeline, ConvergesAndPreservesSemantics) {
  TargetMachine TM = makeAlphaTarget();
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    RNG R(Seed);
    // Random function with dead code, copies, and folds mixed in.
    std::string Body;
    unsigned NextReg = 2;
    std::vector<unsigned> Live = {1};
    for (int I = 0; I < 20; ++I) {
      unsigned Src = Live[R.nextBelow(Live.size())];
      unsigned D = NextReg++;
      switch (R.nextBelow(4)) {
      case 0:
        Body += "  r" + std::to_string(D) + " = mov r" +
                std::to_string(Src) + "\n";
        break;
      case 1:
        Body += "  r" + std::to_string(D) + " = add r" +
                std::to_string(Src) + ", " +
                std::to_string(R.nextInRange(-4, 4)) + "\n";
        break;
      case 2:
        Body += "  r" + std::to_string(D) + " = mov " +
                std::to_string(R.nextInRange(0, 9)) + "\n";
        break;
      case 3:
        Body += "  r" + std::to_string(D) + " = xor r" +
                std::to_string(Src) + ", r" +
                std::to_string(Live[R.nextBelow(Live.size())]) + "\n";
        break;
      }
      Live.push_back(D);
    }
    unsigned RetReg = Live[R.nextBelow(Live.size())];
    std::string Text = "func @f(r1) {\ne:\n" + Body + "  ret r" +
                       std::to_string(RetReg) + "\n}\n";
    Parsed Original(Text);
    Parsed Cleaned(Text);
    CleanupStats S = runCleanupPipeline(*Cleaned.F);
    (void)S;
    // Semantics must match for several inputs.
    for (int64_t Arg : {0LL, 1LL, -5LL, 123456LL}) {
      Memory M1, M2;
      Interpreter I1(TM, M1), I2(TM, M2);
      RunResult R1 = I1.run(*Original.F, {Arg});
      RunResult R2 = I2.run(*Cleaned.F, {Arg});
      ASSERT_TRUE(R1.ok() && R2.ok());
      EXPECT_EQ(R1.ReturnValue, R2.ReturnValue)
          << "seed " << Seed << " arg " << Arg;
      // Cleanup should never increase the instruction count.
      EXPECT_LE(Cleaned.F->instructionCount(),
                Original.F->instructionCount());
    }
  }
}

TEST(CloneBlock, RetargetsSelfLoops) {
  Parsed P("func @f(r1, r2) {\n"
           "entry:\n"
           "  jmp body\n"
           "body:\n"
           "  r1 = add r1, 1\n"
           "  br.ltu r1, r2, body, exit\n"
           "exit:\n"
           "  ret r1\n"
           "}\n");
  BasicBlock *Body = P.F->findBlock("body");
  BasicBlock *Clone = cloneBlock(*P.F, *Body, "body.copy");
  ASSERT_EQ(Clone->size(), Body->size());
  const Instruction &T = Clone->terminator();
  EXPECT_EQ(T.TrueTarget, Clone) << "self back edge retargeted";
  EXPECT_EQ(T.FalseTarget, P.F->findBlock("exit")) << "exit edge kept";
}

TEST(RetargetBranches, RewritesAllExceptExcluded) {
  Parsed P("func @f(r1) {\n"
           "a:\n"
           "  jmp c\n"
           "b:\n"
           "  jmp c\n"
           "c:\n"
           "  ret r1\n"
           "}\n");
  BasicBlock *A = P.F->findBlock("a");
  BasicBlock *B = P.F->findBlock("b");
  BasicBlock *C = P.F->findBlock("c");
  retargetBranches(*P.F, C, A, /*ExceptIn=*/B);
  EXPECT_EQ(A->terminator().TrueTarget, A);
  EXPECT_EQ(B->terminator().TrueTarget, C) << "excluded block untouched";
}

} // namespace
