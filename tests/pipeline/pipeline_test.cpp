//===- tests/pipeline/pipeline_test.cpp ------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vpo;

namespace {

TEST(Pipeline, PaperConfigsShape) {
  auto Configs = paperConfigs();
  ASSERT_EQ(Configs.size(), 4u);
  EXPECT_EQ(Configs[0].Name, "cc -O (model)");
  EXPECT_FALSE(Configs[0].Options.Schedule);
  EXPECT_EQ(Configs[0].Options.Mode, CoalesceMode::None);
  EXPECT_EQ(Configs[1].Name, "vpo -O");
  EXPECT_TRUE(Configs[1].Options.Schedule);
  EXPECT_EQ(Configs[2].Options.Mode, CoalesceMode::Loads);
  EXPECT_EQ(Configs[3].Options.Mode, CoalesceMode::LoadsAndStores);
  for (const PipelineConfig &C : Configs)
    EXPECT_TRUE(C.Options.Unroll);
}

TEST(Pipeline, ReportCarriesAllStageStats) {
  auto W = makeWorkloadByName("image_add");
  Module M;
  Function *F = W->build(M);
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  CompileReport R = compileFunction(*F, TM, CO);
  EXPECT_GE(R.Coalesce.LoopsExamined, 1u);
  EXPECT_GE(R.Legalize.NarrowLoadsExpanded + R.Legalize.NarrowStoresExpanded,
            1u)
      << "byte refs must be expanded somewhere (safe loop at least)";
  EXPECT_EQ(R.BlocksScheduled, F->blocks().size());
}

TEST(Pipeline, CleanupShrinksCode) {
  // The pipeline's cleanup should never grow the function, and on the
  // coalesced kernels it removes dead address arithmetic.
  auto W = makeWorkloadByName("dotproduct");
  TargetMachine TM = makeAlphaTarget();
  size_t WithCleanup, WithoutCleanup;
  for (bool Clean : {false, true}) {
    Module M;
    Function *F = W->build(M);
    CompileOptions CO;
    CO.Mode = CoalesceMode::LoadsAndStores;
    CO.Unroll = true;
    CO.Cleanup = Clean;
    compileFunction(*F, TM, CO);
    (Clean ? WithCleanup : WithoutCleanup) = F->instructionCount();
  }
  EXPECT_LE(WithCleanup, WithoutCleanup);
}

TEST(Pipeline, SchedulingDoesNotChangeResults) {
  auto W = makeWorkloadByName("convolution");
  TargetMachine TM = makeM88100Target();
  int64_t Results[2];
  uint64_t Cycles[2];
  for (int Sched = 0; Sched < 2; ++Sched) {
    Module M;
    Function *F = W->build(M);
    CompileOptions CO;
    CO.Mode = CoalesceMode::Loads;
    CO.Unroll = true;
    CO.Schedule = Sched == 1;
    compileFunction(*F, TM, CO);
    Memory Mem;
    SetupOptions SO;
    SO.Width = 24;
    SO.Height = 10;
    SetupResult S = W->setup(Mem, SO);
    Interpreter Interp(TM, Mem);
    RunResult R = Interp.run(*F, S.Args);
    ASSERT_TRUE(R.ok()) << R.Error;
    Results[Sched] = R.ReturnValue;
    Cycles[Sched] = R.Cycles;
  }
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_LE(Cycles[1], Cycles[0]) << "scheduling should not hurt";
}

TEST(Pipeline, UnrollFactorOverrideRespected) {
  auto W = makeWorkloadByName("image_xor");
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::Loads;
  CO.Unroll = true;
  CO.UnrollFactor = 2;
  CO.MaxWideBytes = 2;
  CompileReport R = compileFunction(*F, TM, CO);
  EXPECT_EQ(R.Coalesce.LoopsUnrolled, 1u);
  // With factor 2 and MaxWide 2, runs have exactly 2 byte members.
  EXPECT_EQ(R.Coalesce.NarrowLoadsRemoved,
            R.Coalesce.LoadRunsCoalesced * 2);
}

TEST(Pipeline, IdempotentOnAlreadyOptimizedCode) {
  // Running the pipeline twice must keep the code valid and the second
  // run must find nothing more to coalesce.
  auto W = makeWorkloadByName("image_add");
  Module M;
  Function *F = W->build(M);
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  compileFunction(*F, TM, CO);
  CompileReport Second = compileFunction(*F, TM, CO);
  EXPECT_EQ(Second.Coalesce.LoadRunsCoalesced +
                Second.Coalesce.StoreRunsCoalesced,
            0u);

  Memory Mem;
  SetupOptions SO;
  SO.N = 512;
  SetupResult S = W->setup(Mem, SO);
  Interpreter Interp(TM, Mem);
  EXPECT_TRUE(Interp.run(*F, S.Args).ok());
}

} // namespace

namespace {

TEST(Pipeline, TraceHookSeesStages) {
  auto W = makeWorkloadByName("image_add");
  Module M;
  Function *F = W->build(M);
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  std::vector<std::string> Stages;
  CO.TraceHook = [&Stages](const char *Stage, const Function &Fn) {
    (void)Fn;
    Stages.push_back(Stage);
  };
  compileFunction(*F, TM, CO);
  ASSERT_GE(Stages.size(), 4u);
  EXPECT_EQ(Stages.front(), "input");
  EXPECT_NE(std::find(Stages.begin(), Stages.end(), "coalesce"),
            Stages.end());
  EXPECT_NE(std::find(Stages.begin(), Stages.end(), "legalize"),
            Stages.end());
  EXPECT_EQ(Stages.back(), "schedule");
}

TEST(Pipeline, InstructionCacheStatsReported) {
  auto W = makeWorkloadByName("image_add");
  Module M;
  Function *F = W->build(M);
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::None;
  CO.Unroll = true;
  compileFunction(*F, TM, CO);
  Memory Mem;
  SetupOptions SO;
  SO.N = 2048;
  SetupResult S = W->setup(Mem, SO);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*F, S.Args);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ICache.Accesses, R.Instructions);
  EXPECT_GT(R.ICache.Hits, 0u);
  // A small hot loop: nearly every fetch hits.
  EXPECT_GT(double(R.ICache.Hits) / double(R.ICache.Accesses), 0.99);
}

} // namespace
