//===- tests/pipeline/fault_injection_test.cpp -----------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves the pipeline guard rails work: deterministic IR corruption is
/// injected after a chosen pass, and the driver must detect it, roll the
/// function back to the pre-pass snapshot, record a diagnostic, and still
/// finish the compilation with output that matches the golden scalar
/// implementation byte-for-byte.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "pipeline/FaultInjection.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace vpo;
using namespace vpo::test;

namespace {

const FaultKind AllKinds[] = {
    FaultKind::WrongWidth,    FaultKind::ClobberedBase,
    FaultKind::DroppedCheck,  FaultKind::MissingOperand,
    FaultKind::EmptyBlock,
};

CompileOptions fullOptions() {
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  return CO;
}

SetupOptions smallSetup() {
  SetupOptions SO;
  SO.N = 512;
  return SO;
}

/// Every fault class, injected after the coalescer: the guard rails must
/// catch it, roll coalescing back, disable it, and the degraded (but
/// correct) pipeline must still match the golden output.
TEST(FaultInjection, EveryFaultKindAfterCoalesceIsCaught) {
  auto W = makeWorkloadByName("image_add");
  TargetMachine TM = makeAlphaTarget();
  for (FaultKind Kind : AllKinds) {
    SCOPED_TRACE(faultKindName(Kind));
    FaultInjector Inj("coalesce", Kind, /*Seed=*/42);
    CompileOptions CO = fullOptions();
    CO.FaultHook = Inj;
    DifferentialResult DR = runDifferential(*W, TM, CO, smallSetup());

    EXPECT_TRUE(Inj.fired());
    EXPECT_FALSE(Inj.description().empty())
        << "workload must offer a site for every fault kind";
    ASSERT_EQ(DR.Report.Incidents.size(), 1u);
    const CompileReport::PassIncident &Inc = DR.Report.Incidents[0];
    EXPECT_EQ(Inc.Pass, "coalesce");
    EXPECT_TRUE(Inc.RolledBack);
    EXPECT_TRUE(Inc.Disabled);
    EXPECT_FALSE(Inc.Retried);
    EXPECT_FALSE(Inc.PipelineStopped);
    ASSERT_FALSE(Inc.Diags.empty());
    EXPECT_EQ(Inc.Diags[0].Code, ErrorCode::InvalidIR);
    EXPECT_EQ(Inc.Diags[0].Pass, "coalesce");
    EXPECT_TRUE(DR.Report.Succeeded);
    EXPECT_TRUE(DR.Match) << DR.Why << "\nfault: " << Inj.description();
    // The rolled-back compile really did skip coalescing.
    EXPECT_EQ(DR.Report.Coalesce.LoadRunsCoalesced +
                  DR.Report.Coalesce.StoreRunsCoalesced,
              0u);
  }
}

/// One fault class across every guarded injection point: wherever the
/// corruption lands, compilation finishes and the output stays golden.
TEST(FaultInjection, EveryInjectionPointRecovers) {
  auto W = makeWorkloadByName("image_add");
  TargetMachine TM = makeAlphaTarget();
  for (const char *Point :
       {"coalesce", "cleanup", "legalize", "cleanup-post-legalize",
        "schedule"}) {
    SCOPED_TRACE(Point);
    FaultInjector Inj(Point, FaultKind::ClobberedBase, /*Seed=*/7);
    CompileOptions CO = fullOptions();
    CO.FaultHook = Inj;
    DifferentialResult DR = runDifferential(*W, TM, CO, smallSetup());

    EXPECT_TRUE(Inj.fired());
    ASSERT_EQ(DR.Report.Incidents.size(), 1u);
    EXPECT_EQ(DR.Report.Incidents[0].Pass, Point);
    EXPECT_TRUE(DR.Report.Incidents[0].RolledBack);
    EXPECT_TRUE(DR.Report.Succeeded);
    EXPECT_TRUE(DR.Match) << DR.Why << "\nfault: " << Inj.description();
  }
}

/// Legalization is required, so its incident takes the retry path: the
/// one-shot fault vanishes on the retry and the compile fully succeeds.
TEST(FaultInjection, RequiredLegalizeFaultIsRetriedOnce) {
  auto W = makeWorkloadByName("image_add");
  TargetMachine TM = makeAlphaTarget();
  FaultInjector Inj("legalize", FaultKind::WrongWidth, /*Seed=*/11);
  CompileOptions CO = fullOptions();
  CO.FaultHook = Inj;
  DifferentialResult DR = runDifferential(*W, TM, CO, smallSetup());

  EXPECT_TRUE(Inj.fired());
  ASSERT_EQ(DR.Report.Incidents.size(), 1u);
  const CompileReport::PassIncident &Inc = DR.Report.Incidents[0];
  EXPECT_EQ(Inc.Pass, "legalize");
  EXPECT_TRUE(Inc.RolledBack);
  EXPECT_TRUE(Inc.Retried);
  EXPECT_FALSE(Inc.Disabled);
  EXPECT_FALSE(Inc.PipelineStopped);
  EXPECT_TRUE(DR.Report.Succeeded);
  EXPECT_TRUE(DR.Match) << DR.Why;
  // The retried legalization really ran: narrow byte refs were expanded.
  EXPECT_GE(DR.Report.Legalize.NarrowLoadsExpanded +
                DR.Report.Legalize.NarrowStoresExpanded,
            1u);
}

/// A fault after scheduling disables the scheduler; the trace must show
/// the stage was dropped while the output stays correct.
TEST(FaultInjection, ScheduleFaultDropsStageFromTrace) {
  auto W = makeWorkloadByName("image_add");
  TargetMachine TM = makeAlphaTarget();
  FaultInjector Inj("schedule", FaultKind::EmptyBlock, /*Seed=*/3);
  CompileOptions CO = fullOptions();
  CO.FaultHook = Inj;
  std::vector<std::string> Stages;
  CO.TraceHook = [&Stages](const char *Stage, const Function &) {
    Stages.push_back(Stage);
  };
  DifferentialResult DR = runDifferential(*W, TM, CO, smallSetup());

  EXPECT_TRUE(Inj.fired());
  EXPECT_TRUE(DR.Report.Succeeded);
  EXPECT_TRUE(DR.Match) << DR.Why;
  EXPECT_EQ(std::find(Stages.begin(), Stages.end(), "schedule"),
            Stages.end())
      << "rolled-back schedule must not be traced";
  EXPECT_NE(std::find(Stages.begin(), Stages.end(), "legalize"),
            Stages.end());
}

/// Malformed *input* is a user error: the compile fails recoverably with
/// a frontend diagnostic and the function is left untouched. (The test
/// finishing at all proves there is no abort on this path.)
TEST(FaultInjection, MalformedInputFailsRecoverably) {
  Function F("bad");
  Reg P = F.addParam();
  IRBuilder B(&F);
  B.createBlock("entry");
  Reg X = B.mov(P);
  B.ret(X);
  ASSERT_FALSE(injectFault(F, FaultKind::MissingOperand, 1).empty() &&
               injectFault(F, FaultKind::EmptyBlock, 1).empty());
  std::string Before = printFunction(F);

  TargetMachine TM = makeAlphaTarget();
  CompileReport R = compileFunction(F, TM, fullOptions());

  EXPECT_FALSE(R.Succeeded);
  ASSERT_EQ(R.Incidents.size(), 1u);
  EXPECT_EQ(R.Incidents[0].Pass, "frontend");
  EXPECT_TRUE(R.Incidents[0].PipelineStopped);
  ASSERT_FALSE(R.allDiagnostics().empty());
  EXPECT_EQ(R.allDiagnostics()[0].Code, ErrorCode::InvalidIR);
  EXPECT_EQ(printFunction(F), Before) << "input must be left untouched";
}

/// Same function, same kind, same seed: same damage. Failures found by
/// the harness must be replayable.
TEST(FaultInjection, InjectionIsDeterministic) {
  auto W = makeWorkloadByName("dotproduct");
  std::string Descs[2];
  std::string Prints[2];
  for (int I = 0; I < 2; ++I) {
    Module M;
    Function *F = W->build(M);
    Descs[I] = injectFault(*F, FaultKind::ClobberedBase, /*Seed=*/99);
    Prints[I] = printFunction(*F);
  }
  EXPECT_FALSE(Descs[0].empty());
  EXPECT_EQ(Descs[0], Descs[1]);
  EXPECT_EQ(Prints[0], Prints[1]);
}

/// A fault kind with no applicable site leaves the function alone.
TEST(FaultInjection, NoApplicableSiteIsANoOp) {
  Function F("f");
  Reg P = F.addParam();
  IRBuilder B(&F);
  B.createBlock("entry");
  Reg X = B.mov(P);
  B.ret(X);
  std::string Before = printFunction(F);
  // No branches, no memory references, no binary ALU ops.
  EXPECT_EQ(injectFault(F, FaultKind::DroppedCheck, 5), "");
  EXPECT_EQ(injectFault(F, FaultKind::ClobberedBase, 5), "");
  EXPECT_EQ(injectFault(F, FaultKind::MissingOperand, 5), "");
  EXPECT_EQ(printFunction(F), Before);
  EXPECT_TRUE(verifyFunctionDiagnostics(F, "test").empty());
}

/// The injector is a one-shot bound to one pass name.
TEST(FaultInjection, InjectorFiresOnceOnItsPass) {
  auto W = makeWorkloadByName("dotproduct");
  Module M;
  Function *F = W->build(M);
  FaultInjector Inj("legalize", FaultKind::MissingOperand, 1);
  EXPECT_FALSE(Inj("coalesce", *F));
  EXPECT_FALSE(Inj.fired());
  EXPECT_TRUE(Inj("legalize", *F));
  EXPECT_TRUE(Inj.fired());
  EXPECT_FALSE(Inj("legalize", *F)) << "one-shot: second call is dormant";
}

/// With guard rails off and no fault, the legacy pipeline still works —
/// the configuration used to measure guard-rail overhead.
TEST(FaultInjection, GuardRailsOffCleanCompileMatches) {
  auto W = makeWorkloadByName("image_add");
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO = fullOptions();
  CO.GuardRails = false;
  DifferentialResult DR = runDifferential(*W, TM, CO, smallSetup());
  EXPECT_TRUE(DR.Report.Succeeded);
  EXPECT_TRUE(DR.Report.Incidents.empty());
  EXPECT_TRUE(DR.Match) << DR.Why;
}

} // namespace
