//===- tests/pipeline/telemetry_observer_test.cpp - read-only ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Telemetry must be a pure observer: compiling with no sink, a collecting
/// sink, a streaming sink, or a sink plus per-pass profiling must produce
/// bit-identical IR, bit-identical simulated memory images and return
/// values, and (timing fields aside) byte-identical bench output. This is
/// the contract that lets --remarks-dir and --trace default to cheap and
/// safe: turning telemetry on can never change what is being measured.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "MatrixRunner.h"
#include "pipeline/FaultInjection.h"
#include "support/Remark.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace vpo;
using namespace vpo::bench;
using namespace vpo::test;

namespace {

CompileOptions fullOptions() {
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  return CO;
}

/// Compiles a fresh build of \p Workload on \p TM with \p CO and returns
/// the printed IR.
std::string compiledIR(const char *Workload, const TargetMachine &TM,
                       const CompileOptions &CO) {
  auto W = makeWorkloadByName(Workload);
  Module M;
  Function *F = W->build(M);
  compileFunction(*F, TM, CO);
  return printFunction(*F);
}

// Same kernel, four telemetry levels, identical code — on a RISC target
// (checked path, extracts) and the CISC one (different legalization).
TEST(TelemetryObserver, SinkDoesNotChangeGeneratedCode) {
  const char *Workloads[] = {"dotproduct", "image_add", "convolution"};
  TargetMachine Targets[] = {makeAlphaTarget(), makeM68030Target()};
  for (const TargetMachine &TM : Targets) {
    for (const char *Name : Workloads) {
      SCOPED_TRACE(Name);
      std::string Baseline = compiledIR(Name, TM, fullOptions());

      CollectingRemarkSink Collecting;
      CompileOptions WithSink = fullOptions();
      WithSink.Remarks = &Collecting;
      EXPECT_EQ(Baseline, compiledIR(Name, TM, WithSink));
      EXPECT_FALSE(Collecting.remarks().empty())
          << "sink attached but nothing was reported";

      std::FILE *Null = std::tmpfile();
      ASSERT_NE(Null, nullptr);
      StreamingRemarkSink Streaming(Null);
      CompileOptions WithStream = fullOptions();
      WithStream.Remarks = &Streaming;
      EXPECT_EQ(Baseline, compiledIR(Name, TM, WithStream));
      std::fclose(Null);

      CompileOptions WithProfile = fullOptions();
      WithProfile.Remarks = &Collecting;
      WithProfile.ProfilePasses = true;
      EXPECT_EQ(Baseline, compiledIR(Name, TM, WithProfile));
    }
  }
}

// The streaming sink writes exactly what the collecting sink would
// serialize — one NDJSON consumer format, two transports.
TEST(TelemetryObserver, StreamingMatchesCollecting) {
  TargetMachine TM = makeAlphaTarget();

  CollectingRemarkSink Collecting;
  CompileOptions CO = fullOptions();
  CO.Remarks = &Collecting;
  compiledIR("dotproduct", TM, CO);

  std::FILE *Tmp = std::tmpfile();
  ASSERT_NE(Tmp, nullptr);
  StreamingRemarkSink Streaming(Tmp);
  CompileOptions CS = fullOptions();
  CS.Remarks = &Streaming;
  compiledIR("dotproduct", TM, CS);

  std::fflush(Tmp);
  std::rewind(Tmp);
  std::string Streamed;
  int Ch;
  while ((Ch = std::fgetc(Tmp)) != EOF)
    Streamed += static_cast<char>(Ch);
  std::fclose(Tmp);

  EXPECT_EQ(Streamed, Collecting.toJsonLines());
}

// End to end through the simulator: the observed run (remarks + pass
// profiling on) must produce the same return value and the same final
// memory image as the unobserved one.
TEST(TelemetryObserver, SimulatedExecutionIdentical) {
  auto RunOnce = [](RemarkSink *Sink, bool Profile, int64_t &Ret,
                    std::vector<uint8_t> &Image) {
    auto W = makeWorkloadByName("image_add");
    TargetMachine TM = makeAlphaTarget();
    Module M;
    Function *F = W->build(M);
    CompileOptions CO = fullOptions();
    CO.Remarks = Sink;
    CO.ProfilePasses = Profile;
    compileFunction(*F, TM, CO);

    Memory Mem;
    SetupOptions SO;
    SO.Width = 64;
    SO.Height = 64;
    SetupResult S = W->setup(Mem, SO);
    Interpreter Interp(TM, Mem);
    RunResult R = Interp.run(*F, S.Args);
    ASSERT_TRUE(R.ok()) << R.Error;
    Ret = R.ReturnValue;
    Image.assign(Mem.data(), Mem.data() + Mem.size());
  };

  int64_t BaseRet = 0, SinkRet = 0;
  std::vector<uint8_t> BaseImage, SinkImage;
  RunOnce(nullptr, false, BaseRet, BaseImage);
  CollectingRemarkSink Sink;
  RunOnce(&Sink, true, SinkRet, SinkImage);

  EXPECT_EQ(BaseRet, SinkRet);
  ASSERT_EQ(BaseImage.size(), SinkImage.size());
  EXPECT_EQ(0, std::memcmp(BaseImage.data(), SinkImage.data(),
                           BaseImage.size()));
}

// Bench output (minus timing) is byte-identical whether a run collected
// remarks and pass profiles or not: telemetry rides along, it never
// steers.
TEST(TelemetryObserver, BenchReportUnchangedByTelemetry) {
  TargetMachine TM = makeAlphaTarget();
  SetupOptions Small;
  Small.N = 256;
  Small.Width = 16;
  Small.Height = 16;
  CompileOptions Coal = fullOptions();
  std::vector<CellSpec> Specs = {
      CellSpec{"dotproduct", "coal", &TM, Coal, Small, 0},
      CellSpec{"image_add", "coal", &TM, Coal, Small, 0},
  };

  RunnerOptions Plain;
  Plain.Threads = 1;
  BenchReport Base = MatrixRunner(Plain).run("observer", Specs);

  RunnerOptions Observed;
  Observed.Threads = 1;
  Observed.CollectRemarks = true;
  Observed.ProfilePasses = true;
  BenchReport Full = MatrixRunner(Observed).run("observer", Specs);

  EXPECT_EQ(Base.toJson(/*IncludeTiming=*/false),
            Full.toJson(/*IncludeTiming=*/false));
  ASSERT_EQ(Full.Cells.size(), 2u);
  for (const CellResult &C : Full.Cells) {
    EXPECT_FALSE(C.Remarks.empty());
    EXPECT_FALSE(C.M.Passes.empty());
  }
  for (const CellResult &C : Base.Cells) {
    EXPECT_TRUE(C.Remarks.empty());
    EXPECT_TRUE(C.M.Passes.empty());
  }
}

// Pass profiling covers the whole pipeline when enabled, and stays
// strictly opt-in.
TEST(TelemetryObserver, ProfilesRecordedAcrossAllPasses) {
  auto W = makeWorkloadByName("dotproduct");
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO = fullOptions();
  CO.ProfilePasses = true;
  CompileReport R = compileFunction(*F, TM, CO);
  ASSERT_FALSE(R.Passes.empty());
  bool SawCoalesce = false, SawSchedule = false;
  for (const CompileReport::PassProfile &P : R.Passes) {
    EXPECT_FALSE(P.Pass.empty());
    EXPECT_GE(P.Seconds, 0.0);
    SawCoalesce |= P.Pass == "coalesce";
    SawSchedule |= P.Pass == "schedule";
  }
  EXPECT_TRUE(SawCoalesce);
  EXPECT_TRUE(SawSchedule);

  // Without the flag the profile stays empty (no accidental always-on
  // timing).
  Module M2;
  Function *F2 = W->build(M2);
  CompileReport R2 = compileFunction(*F2, TM, fullOptions());
  EXPECT_TRUE(R2.Passes.empty());
}

// A guard-rail rollback must not lose telemetry: the rolled-back pass
// still gets its profile entry (marked not-kept, since Report restore
// happens inside the pass body and the profile is appended after), and
// the driver reports the intervention as a "pass-rolled-back" remark.
TEST(TelemetryObserver, RollbackKeepsProfileAndEmitsRemark) {
  auto W = makeWorkloadByName("image_add");
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);

  FaultInjector Inj("coalesce", FaultKind::WrongWidth, /*Seed=*/42);
  CollectingRemarkSink Sink;
  CompileOptions CO = fullOptions();
  CO.FaultHook = Inj;
  CO.Remarks = &Sink;
  CO.ProfilePasses = true;
  CompileReport R = compileFunction(*F, TM, CO);

  ASSERT_TRUE(Inj.fired());
  ASSERT_EQ(R.Incidents.size(), 1u);
  EXPECT_TRUE(R.Incidents[0].RolledBack);

  bool SawRolledBackProfile = false;
  for (const CompileReport::PassProfile &P : R.Passes)
    if (P.Pass == "coalesce")
      SawRolledBackProfile = !P.Kept;
  EXPECT_TRUE(SawRolledBackProfile)
      << "rolled-back pass missing from the profile (or marked kept)";
  EXPECT_EQ(Sink.count("pass-rolled-back"), 1u);
}

} // namespace
