//===- tests/sim/predecode_test.cpp - fast path vs reference ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential suite for the predecoded interpreter fast path
/// (sim/Predecode.h). The reference walk of the IR is the executable
/// specification; the fast path must match it *bit for bit*: status,
/// error text, return value, every performance metric, and the final
/// memory image — across every workload, every target model, and every
/// paper pipeline configuration, including the trap paths.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "sim/Predecode.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace vpo;

namespace {

/// Asserts every observable field of two runs is identical. \p What names
/// the cell for failure messages.
void expectSameResult(const RunResult &Ref, const RunResult &Fast,
                      const std::string &What) {
  EXPECT_EQ(Ref.Exit, Fast.Exit) << What;
  EXPECT_EQ(Ref.Error, Fast.Error) << What;
  EXPECT_EQ(Ref.ReturnValue, Fast.ReturnValue) << What;
  EXPECT_EQ(Ref.Instructions, Fast.Instructions) << What;
  EXPECT_EQ(Ref.Cycles, Fast.Cycles) << What;
  EXPECT_EQ(Ref.Loads, Fast.Loads) << What;
  EXPECT_EQ(Ref.Stores, Fast.Stores) << What;
  EXPECT_EQ(Ref.LoadBytes, Fast.LoadBytes) << What;
  EXPECT_EQ(Ref.StoreBytes, Fast.StoreBytes) << What;
  EXPECT_EQ(Ref.Branches, Fast.Branches) << What;
  EXPECT_EQ(Ref.Cache.Accesses, Fast.Cache.Accesses) << What;
  EXPECT_EQ(Ref.Cache.Hits, Fast.Cache.Hits) << What;
  EXPECT_EQ(Ref.Cache.Misses, Fast.Cache.Misses) << What;
  EXPECT_EQ(Ref.Cache.WriteBacks, Fast.Cache.WriteBacks) << What;
  EXPECT_EQ(Ref.ICache.Accesses, Fast.ICache.Accesses) << What;
  EXPECT_EQ(Ref.ICache.Hits, Fast.ICache.Hits) << What;
  EXPECT_EQ(Ref.ICache.Misses, Fast.ICache.Misses) << What;
  EXPECT_EQ(Ref.ICache.WriteBacks, Fast.ICache.WriteBacks) << What;
}

/// Runs compiled \p F through both engines on identically-prepared
/// memories and asserts bit-identical results and final images.
void runBothPaths(const Workload &W, Function &F, const TargetMachine &TM,
                  const SetupOptions &SO, const std::string &What) {
  Memory MemRef, MemFast;
  SetupResult SRef = W.setup(MemRef, SO);
  SetupResult SFast = W.setup(MemFast, SO);
  ASSERT_EQ(SRef.Args, SFast.Args) << "setup must be deterministic: " << What;

  Interpreter Ref(TM, MemRef, InterpreterOptions{/*Predecode=*/false});
  Interpreter Fast(TM, MemFast, InterpreterOptions{/*Predecode=*/true});
  RunResult RRef = Ref.run(F, SRef.Args);
  RunResult RFast = Fast.run(F, SFast.Args);

  expectSameResult(RRef, RFast, What);
  EXPECT_EQ(std::memcmp(MemRef.data(), MemFast.data(), MemRef.size()), 0)
      << "final memory images differ: " << What;
}

/// The full evaluation matrix at a reduced problem size: every workload,
/// on each of the three target models, under each paper configuration.
TEST(PredecodeDifferential, EveryWorkloadTargetAndConfig) {
  const char *Targets[] = {"alpha", "m88100", "m68030"};
  SetupOptions SO;
  SO.N = 768;
  SO.Width = 24;
  SO.Height = 24;

  for (const auto &W : allWorkloads()) {
    for (const char *Target : Targets) {
      TargetMachine TM = makeTargetByName(Target);
      for (const PipelineConfig &PC : paperConfigs()) {
        Module M;
        Function *F = W->build(M);
        compileFunction(*F, TM, PC.Options);
        runBothPaths(*W, *F, TM, SO,
                     std::string(W->name()) + "/" + Target + "/" + PC.Name);
      }
    }
  }
}

/// Skewed and overlapping layouts force the run-time alias/alignment
/// checks onto their safe paths — the dispatch-heavy code the fast path
/// must also model exactly.
TEST(PredecodeDifferential, SkewedAndOverlappingLayouts) {
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;

  for (const auto &W : allWorkloads()) {
    for (int Overlap = 0; Overlap <= 1; ++Overlap) {
      SetupOptions SO;
      SO.N = 768;
      SO.Width = 24;
      SO.Height = 24;
      SO.Skew = 4;
      SO.OverlapMode = Overlap;
      Module M;
      Function *F = W->build(M);
      compileFunction(*F, TM, CO);
      runBothPaths(*W, *F, TM, SO,
                   std::string(W->name()) + "/skew4/overlap" +
                       std::to_string(Overlap));
    }
  }
}

/// Runs \p Text through both engines with \p Args and asserts identical
/// outcomes (including the diagnostic string). \returns the shared exit.
RunResult::Status runTextBoth(const std::string &Text,
                              std::vector<int64_t> Args,
                              const TargetMachine &TM,
                              uint64_t MaxSteps = 500'000'000) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_NE(M, nullptr) << Err;
  Memory MemRef, MemFast;
  Interpreter Ref(TM, MemRef, InterpreterOptions{/*Predecode=*/false});
  Interpreter Fast(TM, MemFast, InterpreterOptions{/*Predecode=*/true});
  RunResult RRef = Ref.run(*M->functions().front(), Args, MaxSteps);
  RunResult RFast = Fast.run(*M->functions().front(), Args, MaxSteps);
  expectSameResult(RRef, RFast, Text);
  return RFast.Exit;
}

TEST(PredecodeDifferential, UnalignedTrapMessagesMatch) {
  // The trap diagnostic embeds the faulting address and the printed
  // instruction; both engines must produce the same string.
  Memory Probe;
  uint64_t A = Probe.allocate(64, 8);
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i32.u [r1+2]\n"
                        "  ret r2\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, makeAlphaTarget()),
            RunResult::Status::UnalignedTrap);
}

TEST(PredecodeDifferential, OutOfBoundsTrapMessagesMatch) {
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i8.u [r1]\n"
                        "  ret r2\n"
                        "}\n",
                        {0}, makeAlphaTarget()),
            RunResult::Status::OutOfBounds);
  // Stores trap identically (and neither engine partially writes —
  // checked by the image compare in runTextBoth's zero-filled arenas).
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  store.i64 [r1], 255\n"
                        "  ret 0\n"
                        "}\n",
                        {int64_t(1) << 40}, makeAlphaTarget()),
            RunResult::Status::OutOfBounds);
}

TEST(PredecodeDifferential, DivideByZeroTrapMessagesMatch) {
  for (const char *Op : {"divs", "divu", "rems", "remu"}) {
    EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                          "e:\n"
                          "  r2 = " +
                              std::string(Op) +
                              " r1, 0\n"
                              "  ret r2\n"
                              "}\n",
                          {5}, makeAlphaTarget()),
              RunResult::Status::DivideByZero);
  }
}

TEST(PredecodeDifferential, StepLimitMatches) {
  EXPECT_EQ(runTextBoth("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = add r1, 1\n"
                        "  jmp e\n"
                        "}\n",
                        {0}, makeAlphaTarget(), /*MaxSteps=*/997),
            RunResult::Status::StepLimit);
}

TEST(PredecodeDifferential, MalformedIRRejectedOnBothPaths) {
  // Verification happens before engine selection; both options must
  // reject without executing anything.
  std::string Err;
  auto M = parseModule("func @f(r1) {\ne:\n  ret r1\n}\n", &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  Instruction Bad;
  Bad.Op = Opcode::Mov;
  Bad.Dst = Reg(1);
  Bad.A = Reg(9999); // beyond the allocator bound
  F.entry()->insertAt(0, Bad);

  for (bool Predecode : {false, true}) {
    Memory Mem;
    Interpreter I(makeAlphaTarget(), Mem, InterpreterOptions{Predecode});
    RunResult R = I.run(F, {0});
    EXPECT_EQ(R.Exit, RunResult::Status::MalformedIR);
    EXPECT_EQ(R.Instructions, 0u);
  }
}

/// The repeated-run entry point: predecode once, run the DecodedFunction
/// many times. Must match both a fresh run(Function) and itself across
/// repeats (the interpreter reuses its register file and scoreboard).
TEST(PredecodeDifferential, DecodedFunctionReuse) {
  auto W = makeWorkloadByName("image_add");
  ASSERT_NE(W, nullptr);
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  compileFunction(*F, TM, CO);

  DecodedFunction DF;
  std::string Error;
  ASSERT_TRUE(predecodeFunction(*F, TM, DF, Error)) << Error;

  SetupOptions SO;
  SO.N = 768;
  Memory MemF;
  SetupResult SF = W->setup(MemF, SO);
  Interpreter IF(TM, MemF);
  RunResult Baseline = IF.run(*F, SF.Args);
  ASSERT_TRUE(Baseline.ok()) << Baseline.Error;

  for (int Rep = 0; Rep < 3; ++Rep) {
    Memory Mem;
    SetupResult S = W->setup(Mem, SO);
    Interpreter I(TM, Mem);
    RunResult R = I.run(DF, S.Args);
    expectSameResult(Baseline, R, "decoded rep " + std::to_string(Rep));
    EXPECT_EQ(std::memcmp(MemF.data(), Mem.data(), Mem.size()), 0);
  }
}

/// The pool layout invariant the fast path's unconditional scoreboard
/// reads depend on: register slots precede immediate slots and absent
/// operands map to slot 0.
TEST(Predecode, PoolLayout) {
  std::string Err;
  auto M = parseModule("func @f(r1) {\n"
                       "e:\n"
                       "  r2 = add r1, 42\n"
                       "  r3 = add r2, 42\n"
                       "  ret r3\n"
                       "}\n",
                       &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function &F = *M->functions().front();
  TargetMachine TM = makeAlphaTarget();
  DecodedFunction DF;
  std::string Error;
  ASSERT_TRUE(predecodeFunction(F, TM, DF, Error)) << Error;

  EXPECT_EQ(DF.NumRegs, F.regUpperBound());
  EXPECT_EQ(DF.poolSize(), DF.NumRegs + DF.ConstPool.size());
  // The two literal 42s deduplicate into one immediate slot.
  unsigned Count42 = 0;
  for (uint64_t C : DF.ConstPool)
    if (C == 42)
      ++Count42;
  EXPECT_EQ(Count42, 1u);
  EXPECT_EQ(DF.Ops.size(), F.instructionCount());
  EXPECT_EQ(DF.source(), &F);
}

} // namespace
