//===- tests/sim/sim_test.cpp - memory, cache, interpreter -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "sim/Cache.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "target/TargetMachine.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

TEST(Memory, LittleEndianReadWrite) {
  Memory M;
  uint64_t A = M.allocate(64, 8);
  M.write(A, 4, 0x11223344);
  EXPECT_EQ(M.read(A, 1), 0x44u);
  EXPECT_EQ(M.read(A + 1, 1), 0x33u);
  EXPECT_EQ(M.read(A, 2), 0x3344u);
  EXPECT_EQ(M.read(A, 4), 0x11223344u);
  M.write(A, 8, 0x0102030405060708ULL);
  EXPECT_EQ(M.read(A, 8), 0x0102030405060708ULL);
  EXPECT_EQ(M.read(A + 7, 1), 0x01u);
}

TEST(Memory, AllocationAlignmentAndSkew) {
  Memory M;
  uint64_t A = M.allocate(100, 16);
  EXPECT_EQ(A % 16, 0u);
  uint64_t B = M.allocate(100, 16, 3);
  EXPECT_EQ(B % 16, 3u);
  // Allocations never overlap (red zone between them).
  EXPECT_GE(B, A + 100);
}

TEST(Memory, Bounds) {
  Memory M(1 << 16);
  EXPECT_FALSE(M.inBounds(0, 1)) << "null page is unmapped";
  EXPECT_FALSE(M.inBounds(4095, 1));
  EXPECT_TRUE(M.inBounds(4096, 8));
  EXPECT_FALSE(M.inBounds((1 << 16) - 4, 8));
  EXPECT_FALSE(M.inBounds(~uint64_t(0) - 2, 8)) << "wraparound rejected";
}

TEST(Cache, HitsAfterMiss) {
  DataCache C(CacheParams{1024, 32, 1, 0, 10});
  EXPECT_EQ(C.access(0x1000, 4, false), 10u);
  EXPECT_EQ(C.access(0x1004, 4, false), 0u) << "same line hits";
  EXPECT_EQ(C.stats().Misses, 1u);
  EXPECT_EQ(C.stats().Hits, 1u);
}

TEST(Cache, DirectMappedConflict) {
  DataCache C(CacheParams{1024, 32, 1, 0, 10});
  C.access(0x0000, 4, false);
  C.access(0x0400, 4, false); // same set (1024-byte apart), evicts
  EXPECT_EQ(C.access(0x0000, 4, false), 10u) << "conflict miss";
  EXPECT_EQ(C.stats().Misses, 3u);
}

TEST(Cache, TwoWayAvoidsConflict) {
  DataCache C(CacheParams{1024, 32, 2, 0, 10});
  C.access(0x0000, 4, false);
  C.access(0x0400, 4, false);
  EXPECT_EQ(C.access(0x0000, 4, false), 0u) << "both lines fit in the set";
  // A third conflicting line evicts the LRU (0x0400).
  C.access(0x0800, 4, false);
  EXPECT_EQ(C.access(0x0000, 4, false), 0u);
  EXPECT_EQ(C.access(0x0400, 4, false), 10u);
}

TEST(Cache, WriteBackCountsDirtyEvictions) {
  DataCache C(CacheParams{1024, 32, 1, 0, 10});
  C.access(0x0000, 4, /*IsStore=*/true);
  C.access(0x0400, 4, false); // evicts dirty line
  EXPECT_EQ(C.stats().WriteBacks, 1u);
  C.access(0x0800, 4, false); // evicts clean line
  EXPECT_EQ(C.stats().WriteBacks, 1u);
}

TEST(Cache, LineStraddlingAccessTouchesBothLines) {
  DataCache C(CacheParams{1024, 32, 1, 0, 10});
  unsigned Cycles = C.access(30, 4, false); // bytes 30..33 span two lines
  EXPECT_EQ(Cycles, 20u);
  EXPECT_EQ(C.stats().Accesses, 2u);
}

// --- Interpreter opcode semantics ----------------------------------------

/// Runs a single-block function text with the given args on the Alpha
/// model and returns the result.
RunResult runText(const std::string &Text, std::vector<int64_t> Args,
                  Memory &Mem, const TargetMachine &TM) {
  std::string Err;
  auto M = parseModule(Text, &Err);
  EXPECT_NE(M, nullptr) << Err;
  Interpreter I(TM, Mem);
  return I.run(*M->functions().front(), Args);
}

RunResult runText(const std::string &Text, std::vector<int64_t> Args = {}) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  return runText(Text, std::move(Args), Mem, TM);
}

int64_t evalExpr(const std::string &Body, std::vector<int64_t> Args = {}) {
  std::string Params;
  for (size_t I = 0; I < Args.size(); ++I)
    Params += (I ? ", r" : "r") + std::to_string(I + 1);
  RunResult R =
      runText("func @f(" + Params + ") {\ne:\n" + Body + "\n}\n", Args);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R.ReturnValue;
}

TEST(Interpreter, IntegerALU) {
  EXPECT_EQ(evalExpr("  r2 = add r1, 5\n  ret r2", {10}), 15);
  EXPECT_EQ(evalExpr("  r2 = sub r1, 5\n  ret r2", {3}), -2);
  EXPECT_EQ(evalExpr("  r2 = mul r1, -3\n  ret r2", {7}), -21);
  EXPECT_EQ(evalExpr("  r2 = divs r1, 4\n  ret r2", {-8}), -2);
  EXPECT_EQ(evalExpr("  r2 = rems r1, 4\n  ret r2", {-9}), -1);
  EXPECT_EQ(evalExpr("  r2 = divu r1, 2\n  ret r2", {6}), 3);
  EXPECT_EQ(evalExpr("  r2 = remu r1, 4\n  ret r2", {6}), 2);
  EXPECT_EQ(evalExpr("  r2 = and r1, 12\n  ret r2", {10}), 8);
  EXPECT_EQ(evalExpr("  r2 = or r1, 12\n  ret r2", {3}), 15);
  EXPECT_EQ(evalExpr("  r2 = xor r1, 6\n  ret r2", {5}), 3);
}

TEST(Interpreter, Shifts) {
  EXPECT_EQ(evalExpr("  r2 = shl r1, 4\n  ret r2", {1}), 16);
  EXPECT_EQ(evalExpr("  r2 = shra r1, 1\n  ret r2", {-8}), -4);
  EXPECT_EQ(evalExpr("  r2 = shrl r1, 1\n  ret r2", {-8}),
            static_cast<int64_t>(static_cast<uint64_t>(-8) >> 1));
  // Shift amounts are masked to 6 bits.
  EXPECT_EQ(evalExpr("  r2 = shl r1, 64\n  ret r2", {5}), 5);
  EXPECT_EQ(evalExpr("  r2 = shl r1, 65\n  ret r2", {5}), 10);
}

TEST(Interpreter, CmpSetAndSelect) {
  EXPECT_EQ(evalExpr("  r2 = cmpset.lts r1, 0\n  ret r2", {-1}), 1);
  EXPECT_EQ(evalExpr("  r2 = cmpset.lts r1, 0\n  ret r2", {1}), 0);
  EXPECT_EQ(evalExpr("  r2 = cmpset.ltu r1, 0\n  ret r2", {-1}), 0)
      << "-1 is huge unsigned";
  EXPECT_EQ(evalExpr("  r2 = cmpset.geu r1, 5\n  ret r2", {5}), 1);
  EXPECT_EQ(
      evalExpr("  r2 = select r1, 10, 20\n  ret r2", {7}), 10);
  EXPECT_EQ(evalExpr("  r2 = select r1, 10, 20\n  ret r2", {0}), 20);
}

TEST(Interpreter, Ext) {
  EXPECT_EQ(evalExpr("  r2 = ext.i8.s r1\n  ret r2", {0x1ff}), -1);
  EXPECT_EQ(evalExpr("  r2 = ext.i8.u r1\n  ret r2", {0x1ff}), 0xff);
  EXPECT_EQ(evalExpr("  r2 = ext.i16.s r1\n  ret r2", {0x18000}),
            -32768);
}

TEST(Interpreter, DivideByZeroTraps) {
  RunResult R = runText("func @f(r1) {\ne:\n  r2 = divs r1, 0\n  ret r2\n}\n",
                        {5});
  EXPECT_EQ(R.Exit, RunResult::Status::DivideByZero);
}

TEST(Interpreter, LoadStoreWidthsAndSignedness) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  Mem.write(A, 8, 0xfedcba9876543210ULL);
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i16.s [r1+6]\n" // 0xfedc -> negative
                        "  r3 = load.i16.u [r1+6]\n"
                        "  r4 = sub r3, r2\n"
                        "  ret r4\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ReturnValue, 0x10000);
  EXPECT_EQ(R.Loads, 2u);
  EXPECT_EQ(R.LoadBytes, 4u);
}

TEST(Interpreter, StoreWritesOnlyItsWidth) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  Mem.write(A, 8, ~uint64_t(0));
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  store.i32 [r1], 0\n"
                        "  ret 0\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Mem.read(A, 8), 0xffffffff00000000ULL);
  EXPECT_EQ(R.Stores, 1u);
}

TEST(Interpreter, UnalignedTrapOnAlignedTarget) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i32.u [r1+2]\n"
                        "  ret r2\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  EXPECT_EQ(R.Exit, RunResult::Status::UnalignedTrap);
}

TEST(Interpreter, UnalignedToleratedOn68030) {
  Memory Mem;
  TargetMachine TM = makeM68030Target();
  uint64_t A = Mem.allocate(64, 8);
  Mem.write(A + 2, 4, 0xdeadbeef);
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i32.u [r1+2]\n"
                        "  ret r2\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(static_cast<uint64_t>(R.ReturnValue), 0xdeadbeefu);
}

TEST(Interpreter, LoadWideUAlignsDown) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  Mem.write(A, 8, 0x1122334455667788ULL);
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = loadwu.i64 [r1+5]\n"
                        "  ret r2\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(static_cast<uint64_t>(R.ReturnValue), 0x1122334455667788ULL);
}

TEST(Interpreter, ExtractInsert) {
  EXPECT_EQ(evalExpr("  r2 = extractf.i8.u r1, 1\n  ret r2", {0x4321}),
            0x43);
  EXPECT_EQ(evalExpr("  r2 = extractf.i8.s r1, 0\n  ret r2", {0xff}), -1);
  EXPECT_EQ(
      evalExpr("  r2 = insertf.i16 r1, 2, 52\n  ret r2", {0}),
      52ll << 16);
  // Insert clears the field before merging.
  EXPECT_EQ(evalExpr("  r2 = insertf.i8 r1, 0, 0\n  ret r2", {0xabff}),
            0xab00);
}

TEST(Interpreter, ExtractWholeRegisterActsAsFunnelLow) {
  // extractf.i64 with offset k shifts the register right by 8k bits.
  EXPECT_EQ(
      static_cast<uint64_t>(evalExpr(
          "  r2 = extractf.i64.u r1, 3\n  ret r2", {0x1122334455667788ll})),
      0x1122334455667788ull >> 24);
}

TEST(Interpreter, ExtQHi) {
  // Offset 0: contributes nothing.
  EXPECT_EQ(evalExpr("  r2 = extqhi r1, 0\n  ret r2", {123}), 0);
  // Offset 3: low 3 bytes of r1 shifted to the top.
  EXPECT_EQ(static_cast<uint64_t>(evalExpr(
                "  r2 = extqhi r1, 3\n  ret r2", {0x0000000000aabbccll})),
            0xaabbcc0000000000ull);
}

TEST(Interpreter, UnalignedFunnelAssemblesBytes) {
  // The full unaligned-load sequence the coalescer emits.
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  for (unsigned I = 0; I < 16; ++I)
    Mem.write(A + I, 1, I + 1);
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = add r1, 3\n"
                        "  r3 = loadwu.i64 [r2]\n"
                        "  r4 = loadwu.i64 [r2+7]\n"
                        "  r5 = extractf.i64.u r3, r2\n"
                        "  r6 = extqhi r4, r2\n"
                        "  r7 = or r5, r6\n"
                        "  ret r7\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  ASSERT_TRUE(R.ok()) << R.Error;
  // Bytes 4..11 little-endian.
  EXPECT_EQ(static_cast<uint64_t>(R.ReturnValue), 0x0b0a090807060504ULL);
}

TEST(Interpreter, FloatOps) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  float F1 = 1.5f, F2 = -2.25f;
  uint32_t B1, B2;
  memcpy(&B1, &F1, 4);
  memcpy(&B2, &F2, 4);
  Mem.write(A, 4, B1);
  Mem.write(A + 4, 4, B2);
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.f32 [r1]\n"
                        "  r3 = load.f32 [r1+4]\n"
                        "  r4 = fmul r2, r3\n"
                        "  store.f32 [r1+8], r4\n"
                        "  r5 = cvtfi r4\n"
                        "  ret r5\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.ReturnValue, -3) << "trunc(1.5 * -2.25) = trunc(-3.375)";
  float Stored;
  uint32_t SB = static_cast<uint32_t>(Mem.read(A + 8, 4));
  memcpy(&Stored, &SB, 4);
  EXPECT_FLOAT_EQ(Stored, -3.375f);
}

TEST(Interpreter, CvtIF) {
  EXPECT_EQ(evalExpr("  r2 = cvtif r1\n  r3 = cvtfi r2\n  ret r3", {-42}),
            -42);
}

TEST(Interpreter, StepLimit) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  std::string Err;
  auto M = parseModule("func @f(r1) {\n"
                       "e:\n"
                       "  jmp e\n"
                       "}\n",
                       &Err);
  ASSERT_NE(M, nullptr) << Err;
  Interpreter I(TM, Mem);
  RunResult R = I.run(*M->functions().front(), {0}, /*MaxSteps=*/1000);
  EXPECT_EQ(R.Exit, RunResult::Status::StepLimit);
  EXPECT_EQ(R.Instructions, 1000u);
}

TEST(Interpreter, OptionsInstructionBudget) {
  // The budget as a first-class option: every run made by this
  // interpreter is bounded without threading MaxSteps through call
  // sites (how the fuzzer and --max-insts harnesses use it).
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  std::string Err;
  auto M = parseModule("func @f(r1) {\n"
                       "e:\n"
                       "  jmp e\n"
                       "}\n",
                       &Err);
  ASSERT_NE(M, nullptr) << Err;
  InterpreterOptions Opts;
  Opts.MaxSteps = 250;
  for (bool Predecode : {true, false}) {
    Opts.Predecode = Predecode;
    Interpreter I(TM, Mem, Opts);
    RunResult R = I.run(*M->functions().front(), {0});
    EXPECT_EQ(R.Exit, RunResult::Status::StepLimit) << Predecode;
    EXPECT_EQ(R.Instructions, 250u) << Predecode;
    // An explicit per-run limit still overrides the option.
    RunResult R2 = I.run(*M->functions().front(), {0}, /*MaxSteps=*/10);
    EXPECT_EQ(R2.Exit, RunResult::Status::StepLimit) << Predecode;
    EXPECT_EQ(R2.Instructions, 10u) << Predecode;
  }
}

TEST(Interpreter, OutOfBounds) {
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i8.u [r1]\n"
                        "  ret r2\n"
                        "}\n",
                        {0});
  EXPECT_EQ(R.Exit, RunResult::Status::OutOfBounds);
}

TEST(Interpreter, ScoreboardStallsOnLoadUse) {
  // load(latency 3) immediately used: cycles > instruction count.
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  RunResult Dep = runText("func @f(r1) {\n"
                          "e:\n"
                          "  r2 = load.i32.u [r1]\n"
                          "  r3 = add r2, 1\n"
                          "  ret r3\n"
                          "}\n",
                          {static_cast<int64_t>(A)}, Mem, TM);
  Memory Mem2;
  uint64_t A2 = Mem2.allocate(64, 8);
  RunResult Indep = runText("func @f(r1) {\n"
                            "e:\n"
                            "  r2 = load.i32.u [r1]\n"
                            "  r3 = add r1, 1\n"
                            "  ret r3\n"
                            "}\n",
                            {static_cast<int64_t>(A2)}, Mem2, TM);
  ASSERT_TRUE(Dep.ok());
  ASSERT_TRUE(Indep.ok());
  EXPECT_GT(Dep.Cycles, Indep.Cycles)
      << "the dependent add must stall for the load";
}

TEST(Interpreter, MemRefCounting) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(64, 8);
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  r2 = load.i64.u [r1]\n"
                        "  r3 = loadwu.i64 [r1+3]\n"
                        "  store.i64 [r1+8], r2\n"
                        "  ret 0\n"
                        "}\n",
                        {static_cast<int64_t>(A)}, Mem, TM);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Loads, 2u);
  EXPECT_EQ(R.Stores, 1u);
  EXPECT_EQ(R.MemRefs(), 3u);
  EXPECT_EQ(R.LoadBytes, 16u);
  EXPECT_EQ(R.StoreBytes, 8u);
}

// --- Non-aborting memory API and trap reporting --------------------------

TEST(Memory, TryReadWriteReportFailureInsteadOfAborting) {
  Memory M;
  uint64_t A = M.allocate(16, 8);
  EXPECT_TRUE(M.tryWrite(A, 4, 0xdeadbeef));
  uint64_t V = 0;
  EXPECT_TRUE(M.tryRead(A, 4, V));
  EXPECT_EQ(V, 0xdeadbeefu);

  // Past the end: failure, not abort, and the out-param is untouched.
  uint64_t Sentinel = 0x55;
  EXPECT_FALSE(M.tryRead(M.size(), 4, Sentinel));
  EXPECT_EQ(Sentinel, 0x55u);
  EXPECT_FALSE(M.tryWrite(M.size() - 2, 4, 0));
  // Address arithmetic that wraps must also fail.
  EXPECT_FALSE(M.tryRead(~0ULL - 1, 8, Sentinel));
}

TEST(Memory, TryAllocateRejectsBadAlignment) {
  Memory M;
  uint64_t A = 0;
  EXPECT_FALSE(M.tryAllocate(16, /*Align=*/3, /*Skew=*/0, A));
  EXPECT_FALSE(M.tryAllocate(16, /*Align=*/0, /*Skew=*/0, A));
  EXPECT_TRUE(M.tryAllocate(16, /*Align=*/8, /*Skew=*/1, A));
  EXPECT_EQ(A % 8, 1u);
}

TEST(Interpreter, TrappedClassifiesExits) {
  RunResult R;
  for (auto S : {RunResult::Status::UnalignedTrap,
                 RunResult::Status::OutOfBounds,
                 RunResult::Status::DivideByZero}) {
    R.Exit = S;
    EXPECT_TRUE(R.trapped()) << runStatusName(S);
  }
  for (auto S : {RunResult::Status::Ok, RunResult::Status::StepLimit,
                 RunResult::Status::MalformedIR}) {
    R.Exit = S;
    EXPECT_FALSE(R.trapped()) << runStatusName(S);
  }
}

TEST(Interpreter, MalformedIRRejectedBeforeExecution) {
  // A function whose IR does not verify must be rejected up front with
  // Status::MalformedIR — never executed, never aborted on.
  Function F("bad");
  Reg P = F.addParam();
  IRBuilder B(&F);
  B.createBlock("entry");
  Instruction I;
  I.Op = Opcode::Mov;
  I.Dst = Reg(1);
  I.A = Reg(9999); // beyond the allocator bound
  F.entry()->append(I);
  B.setInsertBlock(F.entry());
  B.ret(P);

  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(F, {0});
  EXPECT_EQ(R.Exit, RunResult::Status::MalformedIR);
  EXPECT_NE(R.Error.find("verification"), std::string::npos);
  EXPECT_FALSE(R.trapped());
  EXPECT_EQ(R.Instructions, 0u) << "nothing may execute";
}

TEST(Interpreter, StoreOutOfBoundsTrapsWithoutSideEffects) {
  Memory Mem;
  TargetMachine TM = makeAlphaTarget();
  uint64_t A = Mem.allocate(16, 8);
  std::vector<uint8_t> Before(Mem.data(), Mem.data() + Mem.size());
  RunResult R = runText("func @f(r1) {\n"
                        "e:\n"
                        "  store.i64 [r1], 255\n"
                        "  ret 0\n"
                        "}\n",
                        {static_cast<int64_t>(Mem.size())}, Mem, TM);
  (void)A;
  EXPECT_EQ(R.Exit, RunResult::Status::OutOfBounds);
  EXPECT_TRUE(R.trapped());
  EXPECT_EQ(std::vector<uint8_t>(Mem.data(), Mem.data() + Mem.size()),
            Before)
      << "a trapping store must not partially write";
}

} // namespace
