//===- tests/ir/ir_test.cpp - IR data structure tests ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace vpo;

TEST(Reg, Validity) {
  Reg Invalid;
  EXPECT_FALSE(Invalid.isValid());
  Reg R(3);
  EXPECT_TRUE(R.isValid());
  EXPECT_EQ(R, Reg(3));
  EXPECT_NE(R, Reg(4));
}

TEST(Operand, Kinds) {
  Operand None;
  EXPECT_TRUE(None.isNone());
  Operand R = Reg(5);
  EXPECT_TRUE(R.isReg());
  EXPECT_EQ(R.reg().Id, 5u);
  Operand I = Operand::imm(-7);
  EXPECT_TRUE(I.isImm());
  EXPECT_EQ(I.imm(), -7);
  EXPECT_EQ(I, Operand::imm(-7));
  EXPECT_FALSE(I == R);
  EXPECT_FALSE(I == None);
}

TEST(Width, Conversions) {
  EXPECT_EQ(widthBytes(MemWidth::W1), 1u);
  EXPECT_EQ(widthBytes(MemWidth::W8), 8u);
  EXPECT_EQ(widthBits(MemWidth::W2), 16u);
  EXPECT_EQ(widthFromBytes(4), MemWidth::W4);
  EXPECT_TRUE(isValidWidthBytes(2));
  EXPECT_FALSE(isValidWidthBytes(3));
  EXPECT_FALSE(isValidWidthBytes(16));
}

TEST(CondCode, InvertIsInvolution) {
  for (int C = 0; C <= static_cast<int>(CondCode::GEu); ++C) {
    CondCode CC = static_cast<CondCode>(C);
    EXPECT_EQ(invertCond(invertCond(CC)), CC);
  }
}

TEST(CondCode, SwapIsInvolution) {
  for (int C = 0; C <= static_cast<int>(CondCode::GEu); ++C) {
    CondCode CC = static_cast<CondCode>(C);
    EXPECT_EQ(swapCond(swapCond(CC)), CC);
  }
}

TEST(CondCode, SwapSpecifics) {
  EXPECT_EQ(swapCond(CondCode::LTs), CondCode::GTs);
  EXPECT_EQ(swapCond(CondCode::LEu), CondCode::GEu);
  EXPECT_EQ(swapCond(CondCode::EQ), CondCode::EQ);
  EXPECT_EQ(swapCond(CondCode::NE), CondCode::NE);
}

TEST(Instruction, Classification) {
  Instruction I;
  I.Op = Opcode::Load;
  EXPECT_TRUE(I.isLoad());
  EXPECT_TRUE(I.isMemory());
  EXPECT_FALSE(I.isStore());
  I.Op = Opcode::Store;
  EXPECT_TRUE(I.isStore());
  EXPECT_TRUE(I.isMemory());
  I.Op = Opcode::LoadWideU;
  EXPECT_TRUE(I.isLoad());
  I.Op = Opcode::Br;
  EXPECT_TRUE(I.isTerminator());
  I.Op = Opcode::Ret;
  EXPECT_TRUE(I.isTerminator());
  I.Op = Opcode::FAdd;
  EXPECT_TRUE(I.isFPALU());
  EXPECT_FALSE(I.isTerminator());
}

TEST(Instruction, CollectUsesIncludesAddressBase) {
  Instruction I;
  I.Op = Opcode::Store;
  I.A = Reg(2);
  I.Addr = Address(Reg(9), 4);
  std::vector<Reg> Uses;
  I.collectUses(Uses);
  ASSERT_EQ(Uses.size(), 2u);
  EXPECT_EQ(Uses[0], Reg(2));
  EXPECT_EQ(Uses[1], Reg(9));
}

TEST(Instruction, DefOfStoreIsEmpty) {
  Instruction I;
  I.Op = Opcode::Store;
  EXPECT_FALSE(I.def().has_value());
  I.Op = Opcode::Add;
  I.Dst = Reg(1);
  ASSERT_TRUE(I.def().has_value());
  EXPECT_EQ(*I.def(), Reg(1));
}

TEST(Instruction, ForEachUseRewrites) {
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = Reg(1);
  I.A = Reg(2);
  I.B = Reg(3);
  I.forEachUse([](Reg &R) { R = Reg(R.Id + 10); });
  EXPECT_EQ(I.A.reg().Id, 12u);
  EXPECT_EQ(I.B.reg().Id, 13u);
  EXPECT_EQ(I.Dst.Id, 1u) << "defs are not uses";
}

TEST(Instruction, ForEachUseRewritesAddressBase) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Dst = Reg(1);
  I.Addr = Address(Reg(4), 0);
  I.forEachUse([](Reg &R) { R = Reg(99); });
  EXPECT_EQ(I.Addr.Base.Id, 99u);
}

TEST(Function, RegisterAllocationMonotonic) {
  Function F("f");
  Reg A = F.newReg();
  Reg B = F.newReg();
  EXPECT_LT(A.Id, B.Id);
  EXPECT_EQ(F.regUpperBound(), B.Id + 1);
  F.noteRegUsed(100);
  EXPECT_EQ(F.regUpperBound(), 101u);
  EXPECT_EQ(F.newReg().Id, 101u);
}

TEST(Function, Params) {
  Function F("f");
  Reg P0 = F.addParam();
  Reg P1 = F.addParam();
  ASSERT_EQ(F.params().size(), 2u);
  EXPECT_EQ(F.params()[0], P0);
  EXPECT_EQ(F.params()[1], P1);
  F.paramInfo(0).NoAlias = true;
  F.paramInfo(1).KnownAlign = 16;
  EXPECT_TRUE(F.paramInfoFor(P0).NoAlias);
  EXPECT_EQ(F.paramInfoFor(P1).KnownAlign, 16u);
  // Non-parameter registers report nothing known.
  EXPECT_FALSE(F.paramInfoFor(F.newReg()).NoAlias);
}

TEST(Function, BlockManagement) {
  Function F("f");
  BasicBlock *A = F.addBlock("a");
  BasicBlock *B = F.addBlock("b");
  EXPECT_EQ(F.entry(), A);
  EXPECT_EQ(F.blockIndex(A), 0);
  EXPECT_EQ(F.blockIndex(B), 1);
  EXPECT_EQ(F.findBlock("b"), B);
  EXPECT_EQ(F.findBlock("zzz"), nullptr);
  BasicBlock *Mid = F.addBlockBefore(B, "mid");
  EXPECT_EQ(F.blockIndex(Mid), 1);
  EXPECT_EQ(F.blockIndex(B), 2);
  F.removeBlock(Mid);
  EXPECT_EQ(F.blockIndex(B), 1);
}

TEST(Function, UniqueBlockNames) {
  Function F("f");
  F.addBlock("loop");
  EXPECT_EQ(F.uniqueBlockName("loop"), "loop.1");
  F.addBlock("loop.1");
  EXPECT_EQ(F.uniqueBlockName("loop"), "loop.2");
  EXPECT_EQ(F.uniqueBlockName("fresh"), "fresh");
}

TEST(BasicBlock, Successors) {
  Function F("f");
  BasicBlock *A = F.addBlock("a");
  BasicBlock *B = F.addBlock("b");
  BasicBlock *C = F.addBlock("c");
  IRBuilder Bld(&F);
  Bld.setInsertBlock(A);
  Bld.br(CondCode::EQ, Operand::imm(0), Operand::imm(0), B, C);
  auto Succs = A->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], B);
  EXPECT_EQ(Succs[1], C);

  Bld.setInsertBlock(B);
  Bld.jmp(C);
  ASSERT_EQ(B->successors().size(), 1u);

  Bld.setInsertBlock(C);
  Bld.ret();
  EXPECT_TRUE(C->successors().empty());
}

TEST(BasicBlock, BranchWithIdenticalArmsHasOneSuccessor) {
  Function F("f");
  BasicBlock *A = F.addBlock("a");
  BasicBlock *B = F.addBlock("b");
  IRBuilder Bld(&F);
  Bld.setInsertBlock(A);
  Bld.br(CondCode::EQ, Operand::imm(0), Operand::imm(0), B, B);
  EXPECT_EQ(A->successors().size(), 1u);
}

TEST(BasicBlock, InsertErase) {
  Function F("f");
  BasicBlock *A = F.addBlock("a");
  IRBuilder Bld(&F);
  Bld.setInsertBlock(A);
  Reg R1 = Bld.mov(Operand::imm(1));
  Bld.mov(Operand::imm(2));
  Bld.ret();
  ASSERT_EQ(A->size(), 3u);

  Instruction Extra;
  Extra.Op = Opcode::Mov;
  Extra.Dst = F.newReg();
  Extra.A = R1;
  A->insertAt(1, Extra);
  EXPECT_EQ(A->size(), 4u);
  EXPECT_EQ(A->insts()[1].A.reg(), R1);
  A->eraseAt(1);
  EXPECT_EQ(A->size(), 3u);
  EXPECT_TRUE(A->terminator().isTerminator());
}

TEST(Module, Functions) {
  Module M;
  Function *F = M.addFunction("alpha");
  Function *G = M.addFunction("beta");
  EXPECT_EQ(M.findFunction("alpha"), F);
  EXPECT_EQ(M.findFunction("beta"), G);
  EXPECT_EQ(M.findFunction("gamma"), nullptr);
  EXPECT_EQ(M.functions().size(), 2u);
}

TEST(IRBuilder, EmitsExpectedShapes) {
  Function F("f");
  IRBuilder B(&F);
  B.createBlock("entry");
  Reg X = B.mov(Operand::imm(5));
  Reg Y = B.add(X, Operand::imm(1));
  Reg Cmp = B.cmpSet(CondCode::LTs, X, Y);
  Reg Sel = B.select(Cmp, X, Y);
  Reg L = B.load(Address(X, 8), MemWidth::W2, /*Sign=*/true);
  B.store(Address(X, 8), L, MemWidth::W2);
  B.ret(Sel);

  const auto &Insts = B.block()->insts();
  ASSERT_EQ(Insts.size(), 7u);
  EXPECT_EQ(Insts[0].Op, Opcode::Mov);
  EXPECT_EQ(Insts[1].Op, Opcode::Add);
  EXPECT_EQ(Insts[2].Op, Opcode::CmpSet);
  EXPECT_EQ(Insts[2].CC, CondCode::LTs);
  EXPECT_EQ(Insts[3].Op, Opcode::Select);
  EXPECT_EQ(Insts[4].Op, Opcode::Load);
  EXPECT_TRUE(Insts[4].SignExtend);
  EXPECT_EQ(Insts[4].Addr.Disp, 8);
  EXPECT_EQ(Insts[5].Op, Opcode::Store);
  EXPECT_EQ(Insts[6].Op, Opcode::Ret);
}

TEST(IRBuilder, AluToRedefines) {
  Function F("f");
  IRBuilder B(&F);
  B.createBlock("entry");
  Reg Acc = B.mov(Operand::imm(0));
  B.addTo(Acc, Acc, Operand::imm(1));
  B.ret(Acc);
  const auto &Insts = B.block()->insts();
  EXPECT_EQ(Insts[1].Dst, Acc);
  EXPECT_EQ(Insts[1].A.reg(), Acc);
}
