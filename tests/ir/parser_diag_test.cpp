//===- tests/ir/parser_diag_test.cpp - Structured parser diagnostics ------===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
//
// Negative-input coverage for the recoverable parseModule overload: the
// fuzzer and the test-case reducer feed the parser deliberately broken
// programs, so malformed input must produce a structured ParseError
// diagnostic (pass "ir-parser", the enclosing function when known, a
// line number in the message) — never an abort — and pathological
// register ids must be rejected rather than poisoning regUpperBound().
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/Function.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

/// Parses \p Text expecting failure; returns the first diagnostic.
Diagnostic expectParseError(const std::string &Text) {
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Module> M = parseModule(Text, Diags);
  EXPECT_EQ(M, nullptr) << "input unexpectedly parsed:\n" << Text;
  if (Diags.empty())
    return Diagnostic();
  EXPECT_EQ(Diags[0].Code, ErrorCode::ParseError);
  EXPECT_EQ(Diags[0].Pass, "ir-parser");
  return Diags[0];
}

TEST(ParserDiag, ValidInputYieldsNoDiagnostics) {
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Module> M = parseModule("func @f(r1) {\n"
                                          "entry:\n"
                                          "  ret r1\n"
                                          "}\n",
                                          Diags);
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(Diags.empty());
  EXPECT_NE(M->findFunction("f"), nullptr);
}

TEST(ParserDiag, GarbageInput) {
  Diagnostic D = expectParseError("this is not RTL at all");
  EXPECT_NE(D.Message.find("1"), std::string::npos) << D.render();
}

TEST(ParserDiag, UnknownMnemonic) {
  Diagnostic D = expectParseError("func @f(r1) {\n"
                                  "entry:\n"
                                  "  r2 = frobnicate r1, 1\n"
                                  "  ret r2\n"
                                  "}\n");
  // The function being parsed is attributed so a fuzz log names the
  // kernel, not just a line.
  EXPECT_EQ(D.Function, "f") << D.render();
  EXPECT_NE(D.Message.find("3"), std::string::npos) << D.render();
}

TEST(ParserDiag, MalformedOperand) {
  Diagnostic D = expectParseError("func @f(r1) {\n"
                                  "entry:\n"
                                  "  r2 = add r1, @bogus\n"
                                  "  ret r2\n"
                                  "}\n");
  EXPECT_EQ(D.Function, "f") << D.render();
}

TEST(ParserDiag, TruncatedFunction) {
  expectParseError("func @f(r1) {\n"
                   "entry:\n"
                   "  ret r1\n");
}

TEST(ParserDiag, BranchToUndefinedLabel) {
  expectParseError("func @f(r1) {\n"
                   "entry:\n"
                   "  br.lts r1, 0, nowhere, alsonowhere\n"
                   "}\n");
}

TEST(ParserDiag, PathologicalRegisterIdRejected) {
  // Admitting r4294967290 would make every downstream pass size its
  // register tables by it; the parser rejects ids past maxParsedRegId.
  expectParseError("func @f(r1) {\n"
                   "entry:\n"
                   "  r4294967290 = add r1, 1\n"
                   "  ret 0\n"
                   "}\n");
  // Just inside the bound still parses.
  std::string Ok = "func @f(r1) {\n"
                   "entry:\n"
                   "  r" +
                   std::to_string(maxParsedRegId) +
                   " = add r1, 1\n"
                   "  ret 0\n"
                   "}\n";
  std::vector<Diagnostic> Diags;
  EXPECT_NE(parseModule(Ok, Diags), nullptr);
}

TEST(ParserDiag, LegacyStringOverloadStillReports) {
  std::string Err;
  EXPECT_EQ(parseModule("func @f(r1) {", &Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(ParserDiag, MultipleBrokenFunctionsAttributedSeparately) {
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Module> M = parseModule("func @good(r1) {\n"
                                          "e:\n"
                                          "  ret r1\n"
                                          "}\n"
                                          "func @bad(r1) {\n"
                                          "e:\n"
                                          "  r2 = add r1,\n"
                                          "  ret r2\n"
                                          "}\n",
                                          Diags);
  EXPECT_EQ(M, nullptr);
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags[0].Function, "bad") << Diags[0].render();
}

} // namespace
