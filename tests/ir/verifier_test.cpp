//===- tests/ir/verifier_test.cpp ------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

/// Builds a minimal valid function: entry: r2 = mov r1; ret r2.
std::unique_ptr<Function> makeValid() {
  auto F = std::make_unique<Function>("f");
  Reg P = F->addParam();
  IRBuilder B(F.get());
  B.createBlock("entry");
  Reg X = B.mov(P);
  B.ret(X);
  return F;
}

std::vector<std::string> problemsOf(const Function &F) {
  std::vector<std::string> Problems;
  verifyFunction(F, Problems);
  return Problems;
}

bool hasProblemContaining(const Function &F, const std::string &Sub) {
  for (const std::string &P : problemsOf(F))
    if (P.find(Sub) != std::string::npos)
      return true;
  return false;
}

TEST(Verifier, ValidFunctionPasses) {
  auto F = makeValid();
  std::vector<std::string> Problems;
  EXPECT_TRUE(verifyFunction(*F, Problems));
  EXPECT_TRUE(Problems.empty());
}

TEST(Verifier, NoBlocks) {
  Function F("f");
  EXPECT_TRUE(hasProblemContaining(F, "no blocks"));
}

TEST(Verifier, EmptyBlock) {
  auto F = makeValid();
  F->addBlock("empty");
  EXPECT_TRUE(hasProblemContaining(*F, "block is empty"));
}

TEST(Verifier, MissingTerminator) {
  auto F = makeValid();
  F->entry()->eraseAt(F->entry()->size() - 1);
  EXPECT_TRUE(hasProblemContaining(*F, "does not end in a terminator"));
}

TEST(Verifier, TerminatorInMiddle) {
  auto F = makeValid();
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  F->entry()->insertAt(0, Ret);
  EXPECT_TRUE(hasProblemContaining(*F, "terminator in the middle"));
}

TEST(Verifier, RegisterBeyondBound) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Mov;
  Bad.Dst = Reg(1);
  Bad.A = Reg(9999);
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "beyond allocator bound"));
}

TEST(Verifier, MissingDestination) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Add;
  Bad.A = Operand::imm(1);
  Bad.B = Operand::imm(2);
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "destination register is invalid"));
}

TEST(Verifier, MissingOperand) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Add;
  Bad.Dst = Reg(1);
  Bad.A = Operand::imm(1);
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "missing rhs operand"));
}

TEST(Verifier, SelectNeedsThreeOperands) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Select;
  Bad.Dst = Reg(1);
  Bad.A = Operand::imm(1);
  Bad.B = Operand::imm(2);
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "missing false-value operand"));
}

TEST(Verifier, StoreMustNotDefine) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Store;
  Bad.Dst = Reg(1);
  Bad.A = Operand::imm(0);
  Bad.Addr = Address(Reg(1), 0);
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "store must not define"));
}

TEST(Verifier, LoadNeedsBase) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Load;
  Bad.Dst = Reg(1);
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "address base register is invalid"));
}

TEST(Verifier, FPLoadWidth) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Load;
  Bad.Dst = Reg(1);
  Bad.Addr = Address(Reg(1), 0);
  Bad.IsFloat = true;
  Bad.W = MemWidth::W2;
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "FP load width"));
}

TEST(Verifier, LoadWideUByteWidth) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::LoadWideU;
  Bad.Dst = Reg(1);
  Bad.Addr = Address(Reg(1), 0);
  Bad.W = MemWidth::W1;
  F->entry()->insertAt(0, Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "single byte"));
}

TEST(Verifier, NullBranchTarget) {
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Br;
  Bad.A = Operand::imm(0);
  Bad.B = Operand::imm(0);
  Bad.TrueTarget = F->entry();
  Bad.FalseTarget = nullptr;
  // Replace the ret so the block still ends in one terminator.
  F->entry()->eraseAt(F->entry()->size() - 1);
  F->entry()->append(Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "false target is null"));
}

TEST(Verifier, ForeignBranchTarget) {
  auto F = makeValid();
  Function Other("other");
  BasicBlock *Foreign = Other.addBlock("foreign");
  Instruction Bad;
  Bad.Op = Opcode::Jmp;
  Bad.TrueTarget = Foreign;
  F->entry()->eraseAt(F->entry()->size() - 1);
  F->entry()->append(Bad);
  EXPECT_TRUE(hasProblemContaining(*F, "not in function"));
}

TEST(Verifier, BranchMustNotDefine) {
  auto F = makeValid();
  Instruction &Term = F->entry()->terminator();
  Term.Op = Opcode::Jmp;
  Term.Dst = Reg(1);
  Term.TrueTarget = F->entry();
  EXPECT_TRUE(hasProblemContaining(*F, "jump must not define"));
}

TEST(Verifier, DiagnosticsEmptyOnValidFunction) {
  auto F = makeValid();
  EXPECT_TRUE(verifyFunctionDiagnostics(*F, "frontend").empty());
}

TEST(Verifier, DiagnosticsCarryCodePassAndFunction) {
  // The non-aborting entry point: same checks as verifyFunction, but each
  // problem becomes a structured Diagnostic instead of a fatalError.
  auto F = makeValid();
  Instruction Bad;
  Bad.Op = Opcode::Add;
  Bad.Dst = Reg(1);
  Bad.A = Operand::imm(1);
  F->entry()->insertAt(0, Bad);

  std::vector<Diagnostic> Diags = verifyFunctionDiagnostics(*F, "coalesce");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, ErrorCode::InvalidIR);
  EXPECT_EQ(Diags[0].Pass, "coalesce");
  EXPECT_EQ(Diags[0].Function, "f");
  EXPECT_NE(Diags[0].Message.find("missing rhs operand"), std::string::npos);
  std::string R = Diags[0].render();
  EXPECT_NE(R.find("[invalid-ir]"), std::string::npos);
  EXPECT_NE(R.find("coalesce"), std::string::npos);
}

TEST(Verifier, DiagnosticsReportEveryProblem) {
  auto F = makeValid();
  F->addBlock("empty1");
  F->addBlock("empty2");
  std::vector<Diagnostic> Diags = verifyFunctionDiagnostics(*F, "test");
  EXPECT_EQ(Diags.size(), 2u);
}

TEST(Verifier, ModuleAggregates) {
  Module M;
  M.addFunction("empty1");
  M.addFunction("empty2");
  std::vector<std::string> Problems;
  EXPECT_FALSE(verifyModule(M, Problems));
  EXPECT_EQ(Problems.size(), 2u);
}

} // namespace
