//===- tests/ir/printer_parser_test.cpp ------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

std::string roundTrip(const std::string &Text, std::string *Err = nullptr) {
  auto M = parseModule(Text, Err);
  if (!M)
    return std::string();
  return printModule(*M);
}

TEST(Printer, InstructionForms) {
  Function F("f");
  IRBuilder B(&F);
  BasicBlock *Entry = B.createBlock("entry");
  (void)Entry;
  Reg X = B.mov(Operand::imm(5));
  EXPECT_EQ(printInstruction(B.block()->insts().back()), "r1 = mov 5");
  Reg Y = B.add(X, Operand::imm(-3));
  EXPECT_EQ(printInstruction(B.block()->insts().back()), "r2 = add r1, -3");
  B.cmpSet(CondCode::GEu, X, Y);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r3 = cmpset.geu r1, r2");
  B.load(Address(X, 4), MemWidth::W2, true);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r4 = load.i16.s [r1+4]");
  B.load(Address(X, -4), MemWidth::W4, false, /*IsFloat=*/true);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r5 = load.f32 [r1-4]");
  B.store(Address(Y, 0), X, MemWidth::W1);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "store.i8 [r2], r1");
  B.loadWideU(Address(X, 0), MemWidth::W8);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r6 = loadwu.i64 [r1]");
  B.extractF(Reg(6), Operand::imm(2), MemWidth::W2, true);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r7 = extractf.i16.s r6, 2");
  B.insertF(Reg(6), Operand::imm(3), X, MemWidth::W1);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r8 = insertf.i8 r6, 3, r1");
  B.select(X, Y, Operand::imm(0));
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r9 = select r1, r2, 0");
  B.ext(X, MemWidth::W2, false);
  EXPECT_EQ(printInstruction(B.block()->insts().back()),
            "r10 = ext.i16.u r1");
  B.ret(X);
  EXPECT_EQ(printInstruction(B.block()->insts().back()), "ret r1");
}

TEST(Printer, ControlFlowForms) {
  Function F("f");
  BasicBlock *A = F.addBlock("a");
  BasicBlock *B2 = F.addBlock("b");
  IRBuilder B(&F);
  B.setInsertBlock(A);
  B.br(CondCode::LTu, Reg(F.newReg()), Operand::imm(10), A, B2);
  EXPECT_EQ(printInstruction(A->insts().back()),
            "br.ltu r1, 10, a, b");
  B.setInsertBlock(B2);
  B.jmp(A);
  EXPECT_EQ(printInstruction(B2->insts().back()), "jmp a");
}

TEST(Parser, RoundTripAllWorkloads) {
  // The strongest printer/parser property: every kernel round-trips to a
  // fixed point.
  for (auto &W : allWorkloads()) {
    Module M;
    W->build(M);
    std::string First = printModule(M);
    std::string Err;
    auto Reparsed = parseModule(First, &Err);
    ASSERT_NE(Reparsed, nullptr) << W->name() << ": " << Err;
    EXPECT_EQ(printModule(*Reparsed), First) << W->name();
    std::vector<std::string> Problems;
    EXPECT_TRUE(verifyModule(*Reparsed, Problems)) << Problems.front();
  }
}

TEST(Parser, SimpleFunction) {
  std::string Text = "func @f(r1, r2) {\n"
                     "entry:\n"
                     "  r3 = add r1, r2\n"
                     "  ret r3\n"
                     "}\n";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function *F = M->findFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->entry()->size(), 2u);
  EXPECT_EQ(roundTrip(Text), Text);
}

TEST(Parser, ForwardBranchTargets) {
  std::string Text = "func @f(r1) {\n"
                     "entry:\n"
                     "  br.lts r1, 0, neg, pos\n"
                     "neg:\n"
                     "  ret 0\n"
                     "pos:\n"
                     "  ret 1\n"
                     "}\n";
  std::string Err;
  auto M = parseModule(Text, &Err);
  ASSERT_NE(M, nullptr) << Err;
  EXPECT_EQ(roundTrip(Text), Text);
}

TEST(Parser, CommentsAndBlanksIgnored) {
  std::string Text = "// leading comment\n"
                     "\n"
                     "func @f(r1) {\n"
                     "entry:\n"
                     "  // about to return\n"
                     "  ret r1\n"
                     "}\n";
  ASSERT_NE(parseModule(Text), nullptr);
}

TEST(Parser, MultipleFunctions) {
  std::string Text = "func @a(r1) {\n"
                     "e:\n"
                     "  ret r1\n"
                     "}\n"
                     "func @b(r1) {\n"
                     "e:\n"
                     "  ret\n"
                     "}\n";
  auto M = parseModule(Text);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->functions().size(), 2u);
}

struct ParserErrorCase {
  const char *Name;
  const char *Text;
  const char *ExpectSubstring;
};

class ParserErrorTest : public testing::TestWithParam<ParserErrorCase> {};

TEST_P(ParserErrorTest, ReportsDiagnostic) {
  std::string Err;
  auto M = parseModule(GetParam().Text, &Err);
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Err.find(GetParam().ExpectSubstring), std::string::npos)
      << "actual: " << Err;
}

const ParserErrorCase ErrorCases[] = {
    {"NotAFunction", "garbage\n", "expected 'func"},
    {"BadHeader", "func @f(r1 {\n}\n", "malformed function header"},
    {"BadParam", "func @f(x1) {\ne:\n  ret\n}\n", "malformed parameter"},
    {"NonSequentialParams", "func @f(r2) {\ne:\n  ret\n}\n",
     "parameters must be r1..rN"},
    {"DuplicateLabel",
     "func @f(r1) {\ne:\n  ret\ne:\n  ret\n}\n", "duplicate label"},
    {"InstrBeforeLabel", "func @f(r1) {\n  ret\n}\n",
     "instruction before any label"},
    {"UnknownMnemonic", "func @f(r1) {\ne:\n  frobnicate r1\n  ret\n}\n",
     "unknown mnemonic"},
    {"UnknownBranchTarget",
     "func @f(r1) {\ne:\n  jmp nowhere\n}\n", "unknown jump target"},
    {"BadOperand", "func @f(r1) {\ne:\n  r2 = add r1, zzz\n  ret\n}\n",
     "malformed operand"},
    {"BadWidth", "func @f(r1) {\ne:\n  r2 = load.i13.s [r1]\n  ret\n}\n",
     "bad width"},
    {"MissingSign", "func @f(r1) {\ne:\n  r2 = load.i16 [r1]\n  ret\n}\n",
     "missing .s/.u"},
    {"BadCondition", "func @f(r1) {\ne:\n  br.zz r1, 0, e, e\n}\n",
     "bad condition"},
    {"WrongArity", "func @f(r1) {\ne:\n  r2 = add r1\n  ret\n}\n",
     "expects 2 operands"},
    {"BadAddress", "func @f(r1) {\ne:\n  r2 = load.i8.u r1\n  ret\n}\n",
     "malformed address"},
    {"MissingBrace", "func @f(r1) {\ne:\n  ret\n", "missing closing"},
};

INSTANTIATE_TEST_SUITE_P(Errors, ParserErrorTest,
                         testing::ValuesIn(ErrorCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
