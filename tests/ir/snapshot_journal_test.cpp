//===- tests/ir/snapshot_journal_test.cpp - lazy undo journal ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The copy-on-first-write SnapshotJournal must behave exactly like the
/// eager FunctionSnapshot it replaced in the guarded pipeline driver:
/// commit keeps everything, rollback restores everything — mutated
/// blocks, layout order, added blocks, removed blocks — while copying
/// only what the pass actually touched.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Snapshot.h"

#include <gtest/gtest.h>

using namespace vpo;

namespace {

/// A three-block diamondish function plus an unreachable block (so
/// removeBlock has a legal victim: nothing branches to `dead`).
const char *FuncText = "func @f(r1) {\n"
                       "entry:\n"
                       "  r2 = add r1, 1\n"
                       "  jmp join\n"
                       "dead:\n"
                       "  jmp join\n"
                       "join:\n"
                       "  r3 = add r2, 2\n"
                       "  ret r3\n"
                       "}\n";

std::unique_ptr<Module> parseTest() {
  std::string Err;
  auto M = parseModule(FuncText, &Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

Instruction makeAdd(Reg Dst, Reg Src, int64_t Imm) {
  Instruction I;
  I.Op = Opcode::Add;
  I.Dst = Dst;
  I.A = Src;
  I.B = Operand::imm(Imm);
  return I;
}

TEST(SnapshotJournal, CommitKeepsMutations) {
  auto M = parseTest();
  Function &F = *M->functions().front();

  SnapshotJournal J;
  J.arm(F);
  EXPECT_TRUE(J.armed());
  F.entry()->append(makeAdd(F.newReg(), Reg(2), 7));
  J.commit();
  EXPECT_FALSE(J.armed());

  std::string After = printFunction(F);
  EXPECT_NE(After.find("add"), std::string::npos);
  EXPECT_EQ(F.entry()->size(), 3u) << "the appended add survives commit";
  // Detached: further mutation is journal-free and must not crash.
  F.entry()->eraseAt(0);
}

TEST(SnapshotJournal, RollbackRestoresMutatedBlocks) {
  auto M = parseTest();
  Function &F = *M->functions().front();
  const std::string Before = printFunction(F);

  SnapshotJournal J;
  J.arm(F);
  BasicBlock *Join = F.findBlock("join");
  ASSERT_NE(Join, nullptr);
  Join->insertAt(0, makeAdd(F.newReg(), Reg(2), 99));
  Join->setName("renamed");
  F.entry()->eraseAt(0);
  J.rollback();

  EXPECT_EQ(printFunction(F), Before);
  EXPECT_NE(F.findBlock("join"), nullptr);
  EXPECT_FALSE(J.armed());
}

TEST(SnapshotJournal, CopiesOnlyTouchedBlocks) {
  auto M = parseTest();
  Function &F = *M->functions().front();

  SnapshotJournal J;
  J.arm(F);
  EXPECT_EQ(J.savedBlockCount(), 0u) << "arming copies nothing";

  BasicBlock *Join = F.findBlock("join");
  Join->append(makeAdd(F.newReg(), Reg(2), 1));
  EXPECT_EQ(J.savedBlockCount(), 1u);
  Join->append(makeAdd(F.newReg(), Reg(2), 2));
  EXPECT_EQ(J.savedBlockCount(), 1u) << "one pre-image per block per pass";
  F.entry()->eraseAt(0);
  EXPECT_EQ(J.savedBlockCount(), 2u);
  J.rollback();
}

TEST(SnapshotJournal, RollbackDestroysAddedBlocks) {
  auto M = parseTest();
  Function &F = *M->functions().front();
  const std::string Before = printFunction(F);
  const size_t NumBlocks = F.blocks().size();

  SnapshotJournal J;
  J.arm(F);
  BasicBlock *Added = F.addBlock("grew");
  Added->append(makeAdd(F.newReg(), Reg(1), 5));
  F.addBlockBefore(F.findBlock("join"), "grew.pre");
  EXPECT_EQ(F.blocks().size(), NumBlocks + 2);
  J.rollback();

  EXPECT_EQ(F.blocks().size(), NumBlocks);
  EXPECT_EQ(F.findBlock("grew"), nullptr);
  EXPECT_EQ(F.findBlock("grew.pre"), nullptr);
  EXPECT_EQ(printFunction(F), Before);
}

TEST(SnapshotJournal, CommitKeepsAddedBlocksAndFreesRemoved) {
  auto M = parseTest();
  Function &F = *M->functions().front();
  const size_t NumBlocks = F.blocks().size();

  SnapshotJournal J;
  J.arm(F);
  F.removeBlock(F.findBlock("dead"));
  F.addBlock("grew");
  J.commit();

  EXPECT_EQ(F.blocks().size(), NumBlocks) << "-dead +grew";
  EXPECT_EQ(F.findBlock("dead"), nullptr);
  EXPECT_NE(F.findBlock("grew"), nullptr);
}

TEST(SnapshotJournal, RollbackReownsRemovedBlockAtSameAddress) {
  auto M = parseTest();
  Function &F = *M->functions().front();
  const std::string Before = printFunction(F);
  BasicBlock *Dead = F.findBlock("dead");
  ASSERT_NE(Dead, nullptr);

  SnapshotJournal J;
  J.arm(F);
  F.removeBlock(Dead);
  EXPECT_EQ(F.findBlock("dead"), nullptr);
  J.rollback();

  // Pointer identity matters: pre-images captured at arm time hold
  // branch-target pointers into the original blocks.
  EXPECT_EQ(F.findBlock("dead"), Dead);
  EXPECT_EQ(printFunction(F), Before);
}

TEST(SnapshotJournal, RollbackRestoresLayoutOrder) {
  auto M = parseTest();
  Function &F = *M->functions().front();
  const std::string Before = printFunction(F);

  SnapshotJournal J;
  J.arm(F);
  // Reorder by removing `dead` and re-adding an impostor elsewhere, and
  // mutate `join` too — rollback must put every piece back.
  F.removeBlock(F.findBlock("dead"));
  F.addBlockBefore(F.entry(), "dead");
  F.findBlock("join")->insts().clear();
  J.rollback();

  EXPECT_EQ(printFunction(F), Before);
  EXPECT_EQ(F.blockIndex(F.findBlock("dead")), 1);
}

TEST(SnapshotJournal, RearmAfterRollback) {
  auto M = parseTest();
  Function &F = *M->functions().front();
  const std::string Before = printFunction(F);

  SnapshotJournal J;
  J.arm(F);
  F.entry()->append(makeAdd(F.newReg(), Reg(2), 1));
  J.rollback();

  // A fresh journal (the next guarded pass) must see clean hooks.
  SnapshotJournal J2;
  J2.arm(F);
  F.entry()->append(makeAdd(F.newReg(), Reg(2), 2));
  EXPECT_EQ(J2.savedBlockCount(), 1u);
  J2.rollback();
  EXPECT_EQ(printFunction(F), Before);
}

TEST(SnapshotJournal, DestructorCommits) {
  auto M = parseTest();
  Function &F = *M->functions().front();
  {
    SnapshotJournal J;
    J.arm(F);
    F.entry()->append(makeAdd(F.newReg(), Reg(2), 11));
  }
  EXPECT_EQ(F.entry()->size(), 3u)
      << "an armed journal going out of scope keeps the changes";
  // And the hooks are gone: mutations after destruction are safe.
  F.entry()->eraseAt(2);
}

/// The journal and the eager snapshot must agree: apply the same
/// mutations under both mechanisms and compare the restored text.
TEST(SnapshotJournal, MatchesEagerSnapshotSemantics) {
  auto MA = parseTest();
  auto MB = parseTest();
  Function &FJ = *MA->functions().front();
  Function &FS = *MB->functions().front();
  ASSERT_EQ(printFunction(FJ), printFunction(FS));

  auto Mutate = [](Function &F) {
    F.findBlock("join")->insertAt(0, makeAdd(F.newReg(), Reg(2), 123));
    F.entry()->terminator() = F.entry()->insts().front(); // corrupt wildly
    F.addBlock("extra");
  };

  SnapshotJournal J;
  J.arm(FJ);
  Mutate(FJ);
  J.rollback();

  FunctionSnapshot Snap = FunctionSnapshot::take(FS);
  Mutate(FS);
  Snap.restore(FS);

  EXPECT_EQ(printFunction(FJ), printFunction(FS));
}

} // namespace
