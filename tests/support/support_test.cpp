//===- tests/support/support_test.cpp --------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "support/MathExtras.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>

using namespace vpo;

TEST(MathExtras, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(4));
  EXPECT_FALSE(isPowerOf2(6));
  EXPECT_TRUE(isPowerOf2(uint64_t(1) << 63));
  EXPECT_FALSE(isPowerOf2((uint64_t(1) << 63) + 1));
}

TEST(MathExtras, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(4), 2u);
  EXPECT_EQ(log2Floor(255), 7u);
  EXPECT_EQ(log2Floor(256), 8u);
  EXPECT_EQ(log2Floor(uint64_t(1) << 63), 63u);
}

TEST(MathExtras, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 8), 16u);
  EXPECT_EQ(alignTo(13, 1), 13u);
  EXPECT_EQ(alignTo(100, 64), 128u);
}

TEST(MathExtras, IsAligned) {
  EXPECT_TRUE(isAligned(0, 8));
  EXPECT_TRUE(isAligned(16, 8));
  EXPECT_FALSE(isAligned(12, 8));
  EXPECT_TRUE(isAligned(12, 4));
  EXPECT_TRUE(isAligned(7, 1));
}

TEST(MathExtras, SignExtend64) {
  EXPECT_EQ(signExtend64(0xff, 8), -1);
  EXPECT_EQ(signExtend64(0x7f, 8), 127);
  EXPECT_EQ(signExtend64(0x80, 8), -128);
  EXPECT_EQ(signExtend64(0xffff, 16), -1);
  EXPECT_EQ(signExtend64(0x8000, 16), -32768);
  EXPECT_EQ(signExtend64(0x7fff, 16), 32767);
  EXPECT_EQ(signExtend64(0xffffffff, 32), -1);
  EXPECT_EQ(signExtend64(~uint64_t(0), 64), -1);
  // High garbage above the field is ignored.
  EXPECT_EQ(signExtend64(0xabcd00ff, 8), -1);
}

TEST(MathExtras, ZeroExtend64) {
  EXPECT_EQ(zeroExtend64(0xff, 8), 0xffu);
  EXPECT_EQ(zeroExtend64(0x1ff, 8), 0xffu);
  EXPECT_EQ(zeroExtend64(0xffffffffffffffffULL, 16), 0xffffu);
  EXPECT_EQ(zeroExtend64(0x1234, 64), 0x1234u);
}

TEST(MathExtras, KnownAlignmentOf) {
  EXPECT_EQ(knownAlignmentOf(1), 1u);
  EXPECT_EQ(knownAlignmentOf(2), 2u);
  EXPECT_EQ(knownAlignmentOf(6), 2u);
  EXPECT_EQ(knownAlignmentOf(8), 8u);
  EXPECT_EQ(knownAlignmentOf(-8), 8u);
  EXPECT_EQ(knownAlignmentOf(12), 4u);
  EXPECT_EQ(knownAlignmentOf(0), uint64_t(1) << 63);
}

TEST(RNG, Deterministic) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RNG, NextBelowInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(10), 10u);
}

TEST(RNG, NextInRangeInclusive) {
  RNG R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all values of a small range should occur";
}

TEST(StringUtils, Strformat) {
  EXPECT_EQ(strformat("x=%d", 42), "x=42");
  EXPECT_EQ(strformat("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(strformat("%05u", 7u), "00007");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(StringUtils, SplitString) {
  auto V = splitString("a, b, c", ", ");
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], "a");
  EXPECT_EQ(V[2], "c");
  EXPECT_TRUE(splitString("", ",").empty());
  EXPECT_TRUE(splitString(",,,", ",").empty());
  auto W = splitString("one", ",");
  ASSERT_EQ(W.size(), 1u);
  EXPECT_EQ(W[0], "one");
}

TEST(StringUtils, TrimString) {
  EXPECT_EQ(trimString("  x  "), "x");
  EXPECT_EQ(trimString("\t\na b\r\n"), "a b");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("nowhitespace"), "nowhitespace");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("function", "func"));
  EXPECT_FALSE(startsWith("fun", "func"));
  EXPECT_TRUE(startsWith("x", ""));
  EXPECT_FALSE(startsWith("", "x"));
}
