//===- tests/support/remark_test.cpp - remark layer units -------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the remark primitives themselves: the two render
/// formats (human-readable line, NDJSON object), argument ordering, JSON
/// escaping, the three sinks, and the emitter's disabled path.
///
//===----------------------------------------------------------------------===//

#include "support/Remark.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace vpo;

namespace {

Remark sample() {
  return Remark("coalesce", "dotproduct", "run-accepted")
      .block("body")
      .arg("kind", "load")
      .arg("members", 4u)
      .arg("start-off", int64_t(-8))
      .arg("checked", true);
}

TEST(Remark, RenderFormat) {
  EXPECT_EQ(sample().render(),
            "coalesce @dotproduct [body] run-accepted kind=load "
            "members=4 start-off=-8 checked=true");
  // Block is optional and omitted entirely when empty.
  EXPECT_EQ(Remark("unroll", "f", "unroll-skipped")
                .arg("why", "width-uniform")
                .render(),
            "unroll @f unroll-skipped why=width-uniform");
}

TEST(Remark, JsonFormat) {
  EXPECT_EQ(sample().toJson(),
            "{\"pass\":\"coalesce\",\"function\":\"dotproduct\","
            "\"block\":\"body\",\"reason\":\"run-accepted\","
            "\"args\":{\"kind\":\"load\",\"members\":\"4\","
            "\"start-off\":\"-8\",\"checked\":\"true\"}}");
}

TEST(Remark, ArgsKeepInsertionOrder) {
  Remark R("p", "f", "r");
  R.arg("z", "1").arg("a", "2").arg("m", "3");
  EXPECT_EQ(R.render(), "p @f r z=1 a=2 m=3");
}

TEST(Remark, JsonEscaping) {
  std::string Out;
  appendJsonString(Out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(Out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");

  // An escaped value survives the full serialization.
  Remark R("p", "fn\"quoted\"", "r");
  R.arg("v", std::string("line1\nline2"));
  std::string J = R.toJson();
  EXPECT_NE(J.find("fn\\\"quoted\\\""), std::string::npos) << J;
  EXPECT_NE(J.find("line1\\nline2"), std::string::npos) << J;
  EXPECT_EQ(J.find('\n'), std::string::npos) << "NDJSON: one line only";
}

TEST(CollectingSink, CountRenderAllAndClear) {
  CollectingRemarkSink Sink;
  Sink.emit(sample());
  Sink.emit(Remark("coalesce", "f", "run-rejected-hazard"));
  Sink.emit(Remark("coalesce", "f", "run-accepted"));
  EXPECT_EQ(Sink.remarks().size(), 3u);
  EXPECT_EQ(Sink.count("run-accepted"), 2u);
  EXPECT_EQ(Sink.count("run-rejected-hazard"), 1u);
  EXPECT_EQ(Sink.count("no-such-reason"), 0u);

  std::string All = Sink.renderAll();
  EXPECT_EQ(All.find("coalesce @dotproduct"), 0u);
  // One line per remark, each newline-terminated.
  size_t Lines = 0;
  for (char C : All)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 3u);

  std::string Json = Sink.toJsonLines();
  Lines = 0;
  for (char C : Json)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 3u);
  EXPECT_EQ(Json.find("{\"pass\":"), 0u);

  Sink.clear();
  EXPECT_TRUE(Sink.remarks().empty());
  EXPECT_EQ(Sink.renderAll(), "");
}

TEST(StreamingSink, WritesNdjsonLines) {
  std::FILE *Tmp = std::tmpfile();
  ASSERT_NE(Tmp, nullptr);
  {
    StreamingRemarkSink Sink(Tmp);
    Sink.emit(sample());
    Sink.emit(Remark("p", "f", "r"));
  }
  std::fflush(Tmp);
  std::rewind(Tmp);
  std::string Got;
  int Ch;
  while ((Ch = std::fgetc(Tmp)) != EOF)
    Got += static_cast<char>(Ch);
  std::fclose(Tmp);

  CollectingRemarkSink Ref;
  Ref.emit(sample());
  Ref.emit(Remark("p", "f", "r"));
  EXPECT_EQ(Got, Ref.toJsonLines());
}

TEST(RemarkEmitter, DisabledPathIsInert) {
  RemarkEmitter E; // no sink
  EXPECT_FALSE(E.enabled());
  E.emit(E.start("anything").arg("k", "v")); // must be a safe no-op
  EXPECT_EQ(E.sink(), nullptr);
}

TEST(RemarkEmitter, FillsPassAndFunctionContext) {
  CollectingRemarkSink Sink;
  RemarkEmitter E(&Sink, "coalesce", "kernel");
  ASSERT_TRUE(E.enabled());
  E.emit(E.start("loop-coalesced").arg("runs", 2u));
  ASSERT_EQ(Sink.remarks().size(), 1u);
  EXPECT_STREQ(Sink.remarks()[0].Pass, "coalesce");
  EXPECT_EQ(Sink.remarks()[0].Fn, "kernel");
  EXPECT_STREQ(Sink.remarks()[0].Reason, "loop-coalesced");
}

} // namespace
