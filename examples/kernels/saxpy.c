/* Single-precision a*x + y: the y stream both loads and stores. */
int saxpy(float *x, float * restrict y, int n, int a) {
  for (int i = 0; i < n; i++)
    y[i] = x[i] * a + y[i];
  return 0;
}
