/* Fill a shortword buffer: one coalescable store stream. */
int memset16(short *dst, int value, int n) {
  for (int i = 0; i < n; i++)
    dst[i] = value;
  return 0;
}
