/* 50/50 blend of two 8-bit images. */
int blend(unsigned char *a, unsigned char *b,
          unsigned char * restrict c, int n) {
  for (int i = 0; i < n; i++)
    c[i] = (a[i] + b[i]) >> 1;
  return 0;
}
