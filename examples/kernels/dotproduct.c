/* The paper's Figure 1a, verbatim shape. */
int dotproduct(short *a, short *b, int n) {
  int c = 0;
  for (int i = 0; i < n; i++)
    c += a[i] * b[i];
  return c;
}
