//===- examples/retarget_compare.cpp - machine dependence demo --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's central empirical lesson: "most optimizations are machine
/// dependent". The same kernel, the same transformation, three machines:
///
///   DEC Alpha      no byte/short refs, cheap extract+insert: both load
///                  and store coalescing win big;
///   Motorola 88100 native narrow refs, cheap extract, *no* insert:
///                  loads win, stores lose;
///   Motorola 68030 narrow refs as cheap as wide ones, slow bitfield
///                  ops: coalescing always loses — and the dual-schedule
///                  profitability analysis (Fig. 3) refuses it.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace vpo;

namespace {

uint64_t runCycles(const Workload &W, const TargetMachine &TM,
                   const CompileOptions &CO) {
  Module M;
  Function *F = W.build(M);
  Memory Mem;
  SetupOptions SO;
  SO.N = 16384;
  SetupResult S = W.setup(Mem, SO);
  compileFunction(*F, TM, CO);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*F, S.Args);
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return R.Cycles;
}

} // namespace

int main() {
  auto W = makeWorkloadByName("image_add");
  std::printf("image_add (saturating 8-bit addition), n = 16384, on all "
              "three machine models\n\n");
  std::printf("%-10s %12s %12s %14s %9s %9s  %s\n", "target", "vpo -O",
              "loads", "loads+stores", "ld-save", "all-save", "verdict");

  for (const char *Target : {"alpha", "m88100", "m68030"}) {
    TargetMachine TM = makeTargetByName(Target);
    CompileOptions Base;
    Base.Mode = CoalesceMode::None;
    Base.Unroll = true;
    CompileOptions Loads = Base;
    Loads.Mode = CoalesceMode::Loads;
    CompileOptions All = Base;
    All.Mode = CoalesceMode::LoadsAndStores;

    uint64_t CB = runCycles(*W, TM, Base);
    uint64_t CL = runCycles(*W, TM, Loads);
    uint64_t CA = runCycles(*W, TM, All);
    double SaveL = 100.0 * (double(CB) - double(CL)) / double(CB);
    double SaveA = 100.0 * (double(CB) - double(CA)) / double(CB);
    const char *Verdict =
        CA < CL ? "coalesce everything"
                : (CL < CB ? "coalesce loads only" : "leave it alone");
    std::printf("%-10s %12llu %12llu %14llu %8.1f%% %8.1f%%  %s\n",
                Target, (unsigned long long)CB, (unsigned long long)CL,
                (unsigned long long)CA, SaveL, SaveA, Verdict);
  }

  std::printf("\nWhy the verdicts differ:\n");
  for (const char *Target : {"alpha", "m88100", "m68030"}) {
    TargetMachine TM = makeTargetByName(Target);
    std::printf("  %-8s byte loads %s, extract %u cyc, insert %s, "
                "mem port every %u cyc%s\n",
                Target,
                TM.isLegalLoad(MemWidth::W1, false) ? "native"
                                                    : "SYNTHESIZED",
                TM.spec().ExtractLatency,
                TM.hasNativeInsert()
                    ? "native"
                    : "mask/shift/or",
                TM.spec().MemIssueCycles,
                TM.spec().FullyPipelined ? "" : ", non-pipelined core");
  }
  return 0;
}
