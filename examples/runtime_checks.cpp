//===- examples/runtime_checks.cpp - Figure 5 demo --------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's signature technique in action: when nothing is known about
/// the image pointers at compile time, the optimizer emits run-time alias
/// and alignment checks in the loop preheader (section 2.2's generated
/// code) and keeps the original loop as the safe version (Figure 5's flow
/// graph).
///
/// This example compiles the translate kernel once and then runs it three
/// ways — aligned and disjoint, deliberately misaligned, and with the
/// destination overlapping the source — showing which loop version the
/// checks select each time.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstring>

using namespace vpo;

int main() {
  auto W = makeWorkloadByName("translate");
  TargetMachine TM = makeAlphaTarget();

  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CompileReport Report = compileFunction(*F, TM, CO);

  std::printf("== Check code generated in the preheader (cf. paper "
              "section 2.2) ==\n\n");
  for (const auto &BB : F->blocks())
    if (BB->name().find("checks") != std::string::npos) {
      std::printf("%s:\n", BB->name().c_str());
      for (const Instruction &I : BB->insts())
        std::printf("  %s\n", printInstruction(I).c_str());
      std::printf("\n");
    }
  std::printf("check statistics: %u alignment checks, %u overlap checks, "
              "%u instructions total\n\n",
              Report.Coalesce.AlignmentChecks,
              Report.Coalesce.OverlapChecks,
              Report.Coalesce.CheckInstructions);

  struct Scenario {
    const char *Name;
    size_t Skew;
    bool Overlap;
  } Scenarios[] = {
      {"aligned, disjoint arrays", 0, false},
      {"misaligned source (skew 1)", 1, false},
      {"destination overlaps source", 0, true},
  };

  std::printf("== Running n = 4096 under three data layouts ==\n\n");
  std::printf("%-32s %10s %10s %14s %s\n", "scenario", "cycles",
              "memrefs", "refs/element", "correct");
  for (const Scenario &S : Scenarios) {
    Memory Mem;
    SetupOptions SO;
    SO.N = 4096;
    SO.Skew = S.Skew;
    SO.OverlapMode = S.Overlap ? 1 : 0;
    SetupResult Setup = W->setup(Mem, SO);
    std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
    W->golden(Golden.data(), SO, Setup);

    Interpreter Interp(TM, Mem);
    RunResult R = Interp.run(*F, Setup.Args);
    bool Match = R.ok() &&
                 std::memcmp(Mem.data(), Golden.data(), Mem.size()) == 0;
    std::printf("%-32s %10llu %10llu %14.2f %s\n", S.Name,
                (unsigned long long)R.Cycles,
                (unsigned long long)R.MemRefs(),
                double(R.MemRefs()) / 4096.0, Match ? "yes" : "NO");
  }
  std::printf(
      "\nReading the table: with the checks passing, one wide load and "
      "one wide store move\n8 pixels (0.25 references per element); the "
      "misaligned run falls back to unaligned\nload pairs plus narrow "
      "read-modify-write stores; the overlapping run takes the\noriginal "
      "safe loop (3 references per element on this machine). All three "
      "produce\nthe exact golden output — the checks are what make the "
      "transformation safe to ship.\n");
  return 0;
}
