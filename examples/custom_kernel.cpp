//===- examples/custom_kernel.cpp - optimize textual RTL --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Using the library as a command-line optimizer: parse a kernel from the
/// textual RTL format or compile it from mini-C (a file given as argv[1] —
/// `.c` selects the C front end — or a built-in blend kernel), run the
/// pipeline for a chosen target (argv[2]: alpha|m88100|m68030), and print
/// the transformed function plus the pass statistics.
///
///   ./custom_kernel [kernel.vpo|kernel.c] [target]
///
/// Conventions the optimizer expects from hand-written kernels:
///   * the function's pointer/count arguments are r1..rN in order;
///   * loops are bottom-tested with a strict < / > bound on an induction
///     register (the shape any C compiler emits for counted loops);
///   * memory operands are base+displacement with explicit widths.
///
//===----------------------------------------------------------------------===//

#include "frontend/CFront.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "target/TargetMachine.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace vpo;

namespace {

/// 50/50 blend of two 8-bit images: two coalescable load streams and one
/// coalescable store stream.
const char *DefaultKernel =
    "// blend: c[i] = (a[i] + b[i]) / 2 over n bytes\n"
    "func @blend(r1, r2, r3, r4) {\n"
    "entry:\n"
    "  r5 = add r1, r4\n"
    "  br.les r4, 0, exit, body\n"
    "body:\n"
    "  r6 = load.i8.u [r1]\n"
    "  r7 = load.i8.u [r2]\n"
    "  r8 = add r6, r7\n"
    "  r9 = shrl r8, 1\n"
    "  store.i8 [r3], r9\n"
    "  r1 = add r1, 1\n"
    "  r2 = add r2, 1\n"
    "  r3 = add r3, 1\n"
    "  br.ltu r1, r5, body, exit\n"
    "exit:\n"
    "  ret 0\n"
    "}\n";

} // namespace

int main(int argc, char **argv) {
  std::string Text = DefaultKernel;
  bool IsC = false;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
    std::string Path = argv[1];
    IsC = Path.size() > 2 && Path.substr(Path.size() - 2) == ".c";
  }
  TargetMachine TM = makeTargetByName(argc > 2 ? argv[2] : "alpha");

  std::string Err;
  auto M = IsC ? cc::compileC(Text, &Err) : parseModule(Text, &Err);
  if (!M) {
    std::fprintf(stderr, "%s error: %s\n", IsC ? "compile" : "parse",
                 Err.c_str());
    return 1;
  }

  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;

  for (const auto &F : M->functions()) {
    std::printf("== %s, before (%zu instructions) ==\n\n%s\n",
                F->name().c_str(), F->instructionCount(),
                printFunction(*F).c_str());
    CompileReport Report = compileFunction(*F, TM, CO);
    std::printf("== %s, optimized for %s (%zu instructions) ==\n\n%s\n",
                F->name().c_str(), TM.name().c_str(),
                F->instructionCount(), printFunction(*F).c_str());
    std::printf("%s\n\n", Report.Coalesce.summary().c_str());
  }
  return 0;
}
