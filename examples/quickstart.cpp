//===- examples/quickstart.cpp - Figure 1 walkthrough -----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's running example, end to end: build the dot-product kernel
/// (Figure 1a) as RTL, print it (Figure 1b's shape), run the coalescing
/// pipeline for the DEC Alpha model, print the transformed loop (Figure
/// 1c's shape: one wide load per vector plus extracts), and simulate both
/// versions to show the cycle and memory-reference savings.
///
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace vpo;

namespace {

struct SimStats {
  uint64_t Cycles, MemRefs;
  int64_t Ret;
};

SimStats simulate(Function &F, const Workload &W, const TargetMachine &TM) {
  Memory Mem;
  SetupOptions SO;
  SO.N = 4096;
  SetupResult S = W.setup(Mem, SO);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(F, S.Args);
  if (!R.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return {R.Cycles, R.MemRefs(), R.ReturnValue};
}

} // namespace

int main() {
  auto W = makeWorkloadByName("dotproduct");
  TargetMachine TM = makeAlphaTarget();

  std::printf("== The kernel as the front end emits it (paper Fig. 1a/1b)"
              " ==\n\n");
  Module M1;
  Function *Original = W->build(M1);
  std::printf("%s\n", printFunction(*Original).c_str());

  // Simulate the baseline (legalized + scheduled, no coalescing).
  CompileOptions Baseline;
  Baseline.Mode = CoalesceMode::None;
  Baseline.Unroll = true;
  compileFunction(*Original, TM, Baseline);
  SimStats Before = simulate(*Original, *W, TM);

  // The optimized version: declare the arrays aligned and non-aliasing
  // so the transformation applies without run-time checks, exactly like
  // Fig. 1c (see examples/runtime_checks for the checked variant).
  Module M2;
  Function *Optimized = W->build(M2);
  for (size_t P = 0; P < Optimized->params().size(); ++P) {
    Optimized->paramInfo(P).NoAlias = true;
    Optimized->paramInfo(P).KnownAlign = 8;
  }
  CompileOptions Coalesce = Baseline;
  Coalesce.Mode = CoalesceMode::LoadsAndStores;
  CompileReport Report = compileFunction(*Optimized, TM, Coalesce);

  std::printf("== After unrolling by 4 and coalescing (paper Fig. 1c) "
              "==\n\n");
  std::printf("%s\n", printFunction(*Optimized).c_str());
  std::printf("pass statistics:\n%s\n\n",
              Report.Coalesce.summary().c_str());

  SimStats After = simulate(*Optimized, *W, TM);
  std::printf("== Simulated on the %s model (n = 4096) ==\n\n",
              TM.name().c_str());
  std::printf("                 %12s %12s\n", "baseline", "coalesced");
  std::printf("cycles           %12llu %12llu  (%.1f%% faster)\n",
              (unsigned long long)Before.Cycles,
              (unsigned long long)After.Cycles,
              100.0 * (double(Before.Cycles) - double(After.Cycles)) /
                  double(Before.Cycles));
  std::printf("memory refs      %12llu %12llu  (%.0f%% fewer)\n",
              (unsigned long long)Before.MemRefs,
              (unsigned long long)After.MemRefs,
              100.0 * (double(Before.MemRefs) - double(After.MemRefs)) /
                  double(Before.MemRefs));
  std::printf("result check     %12lld %12lld  (%s)\n",
              (long long)Before.Ret, (long long)After.Ret,
              Before.Ret == After.Ret ? "identical" : "MISMATCH!");
  std::printf("\nThe paper's section 2.1: the original loop performs 2n "
              "memory references,\nthe coalesced loop n/2 — a savings of "
              "75 percent.\n");
  return 0;
}
