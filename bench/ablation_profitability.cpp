//===- bench/ablation_profitability.cpp - Fig. 3 schedule test --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Ablation of the paper's dual-schedule profitability analysis (Fig. 3):
/// for every workload x target, compare "always coalesce" against
/// "coalesce only when the scheduled loop copy is faster". The interesting
/// cells are the 68030 column (forcing loses everywhere; the analysis
/// refuses everywhere) and the 88100 store-coalescing cases.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace vpo;
using namespace vpo::bench;

int main() {
  SetupOptions SO = paperSetup();
  std::printf("Ablation: profitability analysis on/off "
              "(coalesce loads+stores)\n\n");
  std::printf("%-12s %-8s %14s %14s %14s %8s\n", "Program", "target",
              "vpo -O Mcyc", "forced Mcyc", "guarded Mcyc", "ok");
  printRule(80);

  for (const std::string &Name : tableWorkloads()) {
    for (const char *Target : {"alpha", "m88100", "m68030"}) {
      TargetMachine TM = makeTargetByName(Target);
      auto W = makeWorkloadByName(Name);

      CompileOptions Base;
      Base.Mode = CoalesceMode::None;
      Base.Unroll = true;
      Base.Schedule = true;
      CompileOptions Forced = Base;
      Forced.Mode = CoalesceMode::LoadsAndStores;
      Forced.RequireProfitability = false;
      CompileOptions Guarded = Forced;
      Guarded.RequireProfitability = true;

      Measurement MB = measureCell(*W, TM, Base, SO);
      Measurement MF = measureCell(*W, TM, Forced, SO);
      Measurement MG = measureCell(*W, TM, Guarded, SO);
      std::printf("%-12s %-8s %14.3f %14.3f %14.3f %8s\n", Name.c_str(),
                  Target, double(MB.Cycles) / 1e6, double(MF.Cycles) / 1e6,
                  double(MG.Cycles) / 1e6,
                  MB.Verified && MF.Verified && MG.Verified ? "yes"
                                                            : "MISMATCH");
    }
  }
  std::printf("\n(guarded never exceeds min(vpo, forced) by more than the "
              "schedule estimate's error;\n on the 68030 'guarded' "
              "equals 'vpo -O' — the paper's authors lacked this guard "
              "and measured\n slowdowns on real hardware)\n");
  return 0;
}
