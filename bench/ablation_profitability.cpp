//===- bench/ablation_profitability.cpp - Fig. 3 schedule test --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Ablation of the paper's dual-schedule profitability analysis (Fig. 3):
/// for every workload x target, compare "always coalesce" against
/// "coalesce only when the scheduled loop copy is faster". The interesting
/// cells are the 68030 column (forcing loses everywhere; the analysis
/// refuses everywhere) and the 88100 store-coalescing cases.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "ablation_profitability");
  if (!Args.Ok)
    return 2;

  SetupOptions SO = paperSetup();
  const char *TargetNames[] = {"alpha", "m88100", "m68030"};
  TargetMachine Targets[] = {makeTargetByName("alpha"),
                             makeTargetByName("m88100"),
                             makeTargetByName("m68030")};

  CompileOptions Base;
  Base.Mode = CoalesceMode::None;
  Base.Unroll = true;
  Base.Schedule = true;
  CompileOptions Forced = Base;
  Forced.Mode = CoalesceMode::LoadsAndStores;
  Forced.RequireProfitability = false;
  CompileOptions Guarded = Forced;
  Guarded.RequireProfitability = true;

  const PipelineConfig Configs[] = {
      {"vpo -O", Base}, {"forced", Forced}, {"guarded", Guarded}};

  std::vector<CellSpec> Specs;
  for (const std::string &Name : tableWorkloads())
    for (size_t T = 0; T < 3; ++T)
      for (const PipelineConfig &C : Configs)
        Specs.push_back(CellSpec{Name, C.Name, &Targets[T], C.Options, SO, 0});

  BenchReport Report = MatrixRunner(toRunnerOptions(Args))
                           .run("ablation_profitability", Specs);

  std::printf("Ablation: profitability analysis on/off "
              "(coalesce loads+stores)\n\n");
  std::printf("%-12s %-8s %14s %14s %14s %8s\n", "Program", "target",
              "vpo -O Mcyc", "forced Mcyc", "guarded Mcyc", "ok");
  printRule(80);

  size_t Cell = 0;
  for (const std::string &Name : tableWorkloads()) {
    for (size_t T = 0; T < 3; ++T) {
      const Measurement &MB = Report.Cells[Cell++].M;
      const Measurement &MF = Report.Cells[Cell++].M;
      const Measurement &MG = Report.Cells[Cell++].M;
      std::printf("%-12s %-8s %14.3f %14.3f %14.3f %8s\n", Name.c_str(),
                  TargetNames[T], double(MB.Cycles) / 1e6,
                  double(MF.Cycles) / 1e6, double(MG.Cycles) / 1e6,
                  MB.Verified && MF.Verified && MG.Verified ? "yes"
                                                            : "MISMATCH");
    }
  }
  std::printf("\n(guarded never exceeds min(vpo, forced) by more than the "
              "schedule estimate's error;\n on the 68030 'guarded' "
              "equals 'vpo -O' — the paper's authors lacked this guard "
              "and measured\n slowdowns on real hardware)\n");
  return finishReport(Report, Args);
}
