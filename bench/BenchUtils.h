//===- bench/BenchUtils.h - shared table-generation helpers -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for regenerating the paper's tables: run a workload under a
/// pipeline configuration on a simulated target and report cycles
/// (optionally scaled to seconds at a nominal clock), memory references,
/// and golden-output verification.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_BENCH_BENCHUTILS_H
#define VPO_BENCH_BENCHUTILS_H

#include "ir/Function.h"
#include "pipeline/Pipeline.h"
#include "sim/Interpreter.h"
#include "target/TargetMachine.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace vpo {
namespace bench {

/// Nominal clock rates used to convert cycles to "seconds", so the tables
/// read like the paper's (the relative numbers are what matter).
inline double nominalClockHz(const std::string &Target) {
  if (Target == "alpha")
    return 150e6; // DEC Alpha 21064 class
  if (Target == "m88100")
    return 25e6;
  return 25e6; // m68030
}

struct Measurement {
  uint64_t Cycles = 0;
  uint64_t MemRefs = 0;
  uint64_t Instructions = 0;
  uint64_t CacheMisses = 0;
  bool Verified = false;
  CoalesceStats Coalesce;
  /// Per-pass compile-time profile (empty unless
  /// MeasureOptions::ProfilePasses).
  std::vector<CompileReport::PassProfile> Passes;
};

struct MeasureOptions {
  /// Run the simulator through the predecoded fast path (the harnesses'
  /// --no-predecode switches to the reference interpreter).
  bool Predecode = true;
  /// Declare the first StaticParams parameters restrict-like (NoAlias,
  /// KnownAlign = 8) before compiling, so coalescing needs no run-time
  /// checks — the static-analysis ablations.
  unsigned StaticParams = 0;
  /// Instruction budget per simulated run (the harnesses' --max-insts);
  /// 0 = the interpreter default. A run that exhausts it exits with
  /// StepLimit and the cell reports Verified = false instead of hanging
  /// the matrix.
  uint64_t MaxInsts = 0;
  /// Telemetry: optimization remarks from this cell's compile land here
  /// (null = off, the default). Strictly read-only — measurements are
  /// identical with any sink or none.
  RemarkSink *Remarks = nullptr;
  /// Time each pipeline pass into Measurement::Passes (for the Chrome
  /// trace export).
  bool ProfilePasses = false;
  /// Cross-check the cycle-accurate run against the functional tiered
  /// engine (InterpreterOptions::EnableJIT) on a fresh arena and fold the
  /// architectural agreement — exit status, return value, instruction and
  /// memory-reference counts, final memory image — into Verified. Cheap
  /// relative to the cycle-accurate run; the harnesses' --no-jit turns it
  /// off, making the flag a genuine ablation in every matrix.
  bool JIT = true;
  /// Charge sched/RegPressure's modeled spill traffic on every block
  /// entry (InterpreterOptions::ModelRegPressure) — the cycle model under
  /// which the pressure-aware unroll clamp has something to win. Off
  /// keeps every historical table byte-identical.
  bool ModelRegPressure = false;
};

/// \returns true if every byte in [Begin, End) is zero.
inline bool allZero(const uint8_t *Begin, const uint8_t *End) {
  for (const uint8_t *P = Begin; P != End; ++P)
    if (*P != 0)
      return false;
  return true;
}

/// Compiles and simulates one workload/target/configuration cell, checking
/// the result against the golden implementation.
///
/// Verification compares only the arena's live prefix (up to the
/// allocator's high-water mark) and checks that the tail is still all
/// zero — equivalent to the full-arena compare, because the tail starts
/// zeroed and the golden implementation writes only inside allocated
/// regions, but ~60x cheaper for the default 16 MB arena. The golden
/// buffer is reused across calls (per thread) instead of reallocated.
inline Measurement measureCell(const Workload &W, const TargetMachine &TM,
                               const CompileOptions &CO,
                               const SetupOptions &SO,
                               const MeasureOptions &MO = MeasureOptions()) {
  Measurement M;
  Module Mod;
  Function *F = W.build(Mod);
  for (size_t P = 0; P < F->params().size() && P < MO.StaticParams; ++P) {
    F->paramInfo(P).NoAlias = true;
    F->paramInfo(P).KnownAlign = 8;
  }
  Memory Mem;
  SetupResult S = W.setup(Mem, SO);
  const size_t Used = Mem.usedBytes();

  // One golden arena per thread, reused across cells. GoldenHigh tracks
  // how far previous cells may have dirtied it, so only the stale span
  // [Used, GoldenHigh) needs re-zeroing.
  static thread_local std::vector<uint8_t> Golden;
  static thread_local size_t GoldenHigh = 0;
  if (Golden.size() != Mem.size()) {
    Golden.assign(Mem.size(), 0);
    GoldenHigh = 0;
  }
  std::memcpy(Golden.data(), Mem.data(), Used);
  if (GoldenHigh > Used)
    std::memset(Golden.data() + Used, 0, GoldenHigh - Used);
  GoldenHigh = Used;
  int64_t ExpectedRet = W.golden(Golden.data(), SO, S);

  CompileOptions EffCO = CO;
  EffCO.Remarks = MO.Remarks;
  EffCO.ProfilePasses = MO.ProfilePasses;
  CompileReport Report = compileFunction(*F, TM, EffCO);
  M.Coalesce = Report.Coalesce;
  M.Passes = std::move(Report.Passes);

  InterpreterOptions IO;
  IO.Predecode = MO.Predecode;
  IO.ModelRegPressure = MO.ModelRegPressure;
  if (MO.MaxInsts)
    IO.MaxSteps = MO.MaxInsts;
  Interpreter Interp(TM, Mem, IO);
  RunResult R = Interp.run(*F, S.Args);
  M.Cycles = R.Cycles;
  M.MemRefs = R.MemRefs();
  M.Instructions = R.Instructions;
  M.CacheMisses = R.Cache.Misses;
  M.Verified = R.ok() && R.ReturnValue == ExpectedRet &&
               std::memcmp(Mem.data(), Golden.data(), Used) == 0 &&
               allZero(Mem.data() + Used, Mem.data() + Mem.size());

  if (MO.JIT) {
    // Same compiled function, fresh arena, functional tiered engine: the
    // architectural result must match the cycle-accurate run exactly.
    Memory JMem(Mem.size());
    SetupResult JS = W.setup(JMem, SO);
    InterpreterOptions JO;
    JO.EnableJIT = true;
    if (MO.MaxInsts)
      JO.MaxSteps = MO.MaxInsts;
    // jit-disabled / jit-summary remarks join the cell's stream; the
    // telemetry contract (read-only sinks) holds for the tiered engine
    // too, so this cannot move the measurement.
    JO.Remarks = MO.Remarks;
    Interpreter JInterp(TM, JMem, JO);
    RunResult JR = JInterp.run(*F, JS.Args);
    bool Agrees = JR.Exit == R.Exit && JR.ReturnValue == R.ReturnValue &&
                  JR.Instructions == R.Instructions && JR.Loads == R.Loads &&
                  JR.Stores == R.Stores &&
                  std::memcmp(JMem.data(), Mem.data(), Mem.size()) == 0;
    M.Verified = M.Verified && Agrees;
  }
  return M;
}

/// The paper evaluated "500 by 500 black and white images"; 1-D kernels
/// get the equivalent element count.
inline SetupOptions paperSetup() {
  SetupOptions SO;
  SO.N = 250000;
  SO.Width = 500;
  SO.Height = 500;
  SO.BaseAlign = 8;
  return SO;
}

/// The six Table I benchmarks, in the paper's row order.
inline std::vector<std::string> tableWorkloads() {
  return {"convolution", "image_add", "image_add16",
          "image_xor",   "translate", "eqntott",
          "mirror"};
}

inline void printRule(int Width) {
  for (int I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace vpo

#endif // VPO_BENCH_BENCHUTILS_H
