//===- bench/table2_from_c.cpp - Table II from C source ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's actual toolchain was "a C front end and vpo". This harness
/// reruns the Table II experiment with every kernel compiled from C
/// *source text* through the mini-C front end, strength reduction,
/// unrolling, coalescing, legalization, and scheduling — no hand-built
/// IR anywhere. Outputs are still verified against the golden scalar
/// implementations (the kernels are written to match the Table I
/// semantics exactly, taking the same argument lists).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "frontend/CFront.h"

#include <cstring>

using namespace vpo;
using namespace vpo::bench;

namespace {

struct CKernel {
  const char *WorkloadName; ///< supplies setup + golden
  const char *Source;
};

const CKernel Kernels[] = {
    {"dotproduct",
     "int dotproduct(short *a, short *b, int n) {\n"
     "  int c = 0;\n"
     "  for (int i = 0; i < n; i++) c += a[i] * b[i];\n"
     "  return c;\n"
     "}\n"},
    {"image_add",
     "int image_add(unsigned char *a, unsigned char *b,\n"
     "              unsigned char *c, int n) {\n"
     "  for (int i = 0; i < n; i++) {\n"
     "    int s = a[i] + b[i];\n"
     "    c[i] = s > 255 ? 255 : s;\n"
     "  }\n"
     "  return 0;\n"
     "}\n"},
    {"image_add16",
     "int image_add16(short *a, short *b, short *c, int n) {\n"
     "  for (int i = 0; i < n; i++) c[i] = a[i] + b[i];\n"
     "  return 0;\n"
     "}\n"},
    {"image_xor",
     "int image_xor(unsigned char *a, unsigned char *b,\n"
     "              unsigned char *c, int n) {\n"
     "  for (int i = 0; i < n; i++) c[i] = a[i] ^ b[i];\n"
     "  return 0;\n"
     "}\n"},
    {"translate",
     "int translate(unsigned char *src, unsigned char *dst, int n) {\n"
     "  for (int i = 0; i < n; i++) dst[i] = src[i];\n"
     "  return 0;\n"
     "}\n"},
    {"eqntott",
     "long eqntott(short *a, short *b, int n) {\n"
     "  long acc = 0;\n"
     "  for (int i = 0; i < n; i++) {\n"
     "    long va = a[i];\n"
     "    long vb = b[i];\n"
     "    acc += (va < vb ? 1 : 0) - (va > vb ? 1 : 0);\n"
     "    long x = va ^ vb;\n"
     "    long mask = x & 255;\n"
     "    long mix = mask + (va >> 2);\n"
     "    long fold = (mix << 1) ^ mask;\n"
     "    acc = acc * 31;\n"
     "    acc = acc * 17;\n"
     "    acc = acc * 13;\n"
     "    acc += fold;\n"
     "  }\n"
     "  return acc;\n"
     "}\n"},
    {"mirror",
     "int mirror(unsigned char *a, unsigned char *b, int n) {\n"
     "  unsigned char *q = b + n;\n"
     "  q -= 1;\n"
     "  for (int i = 0; i < n; i++) {\n"
     "    q[0] = a[i];\n"
     "    q -= 1;\n"
     "  }\n"
     "  return 0;\n"
     "}\n"},
};

struct CellStats {
  double Secs = 0;
  bool Ok = false;
};

CellStats runCell(const CKernel &K, const CompileOptions &CO,
                  const SetupOptions &SO, const TargetMachine &TM,
                  double Clock) {
  CellStats Out;
  std::string Err;
  auto M = cc::compileC(K.Source, &Err);
  if (!M) {
    std::fprintf(stderr, "compile error in %s: %s\n", K.WorkloadName,
                 Err.c_str());
    return Out;
  }
  Function *F = M->functions().front().get();

  auto W = makeWorkloadByName(K.WorkloadName);
  Memory Mem;
  SetupResult S = W->setup(Mem, SO);
  std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
  int64_t ExpectRet = W->golden(Golden.data(), SO, S);

  compileFunction(*F, TM, CO);
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*F, S.Args);
  Out.Secs = double(R.Cycles) / Clock;
  Out.Ok = R.ok() && R.ReturnValue == ExpectRet &&
           std::memcmp(Mem.data(), Golden.data(), Mem.size()) == 0;
  return Out;
}

} // namespace

int main() {
  TargetMachine TM = makeAlphaTarget();
  double Clock = nominalClockHz("alpha");
  SetupOptions SO = paperSetup();
  auto Configs = paperConfigs();

  std::printf("Table II rerun with kernels compiled FROM C SOURCE "
              "(mini-C front end + strength reduction)\n");
  std::printf("250000 elements; DEC Alpha model at %.0f MHz\n\n",
              Clock / 1e6);
  std::printf("%-12s %10s %10s %14s %16s %9s %s\n", "Program", "cc -O",
              "vpo -O", "coalesce-lds", "coalesce-lds+sts", "%save", "ok");
  printRule(92);

  for (const CKernel &K : Kernels) {
    double Secs[4];
    bool AllOk = true;
    for (size_t C = 0; C < Configs.size(); ++C) {
      CellStats Cell = runCell(K, Configs[C].Options, SO, TM, Clock);
      Secs[C] = Cell.Secs;
      AllOk &= Cell.Ok;
    }
    double Save = (Secs[1] - Secs[3]) / Secs[1] * 100.0;
    std::printf("%-12s %10.3f %10.3f %14.3f %16.3f %8.2f%% %s\n",
                K.WorkloadName, Secs[0], Secs[1], Secs[2], Secs[3], Save,
                AllOk ? "yes" : "MISMATCH");
  }
  std::printf("\n(convolution is omitted here: its 2-D loop nest uses "
              "hand-hoisted coefficient registers\n that the mini-C "
              "dialect expresses but whose IR differs enough from the "
              "Table II row to\n invite apples-to-oranges comparisons; "
              "see bench/table2_alpha for the canonical row)\n");
  return 0;
}
