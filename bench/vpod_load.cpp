//===- bench/vpod_load.cpp - vpod load & availability harness ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Load harness and availability proof for the compile service. Boots a
/// private vpod (fault injection enabled), then drives three phases over
/// one pipelined connection:
///
///   1. **Cold**: K generated kernels (fuzz/KernelGen.h), compile+run
///      requests, every result reference-diffed against an in-process
///      compile of the same request — latency percentiles with an empty
///      cache.
///   2. **Warm**: the same K requests again; every response must arrive
///      with cached=true and a byte-identical result signature.
///   3. **Campaign**: a seeded request mix with planted worker crashes,
///      hangs (under a short deadline), in-flight miscompiles
///      (pipeline/FaultInjection.h), and whitespace-variant repeats.
///      Every response must be correct for its rung: the harness
///      recompiles the request locally at the rung the daemon reports
///      and diffs IR, content key, and run results byte-for-byte.
///
/// The run fails (exit 1) unless 100% of campaign requests produced a
/// correct, reference-matching result and the daemon process survived
/// from boot to shutdown. Following the MatrixRunner convention, the
/// harness prints a summary table and writes BENCH_vpod.json:
///
///   { "name": "vpod_load", "workers": 3, "kernels": 24,
///     "cold_p50_ms": ..., "cold_p99_ms": ..., "warm_p50_ms": ...,
///     "warm_p99_ms": ..., "cache_hit_rate": 1.0,
///     "campaign_requests": 220, "campaign_correct": 220,
///     "availability": 1.0, "degraded": ..., "worker_crashes": ...,
///     "worker_deadlines": ..., "respawns": ..., "daemon_restarts": 0 }
///
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"
#include "service/Client.h"
#include "service/Worker.h"
#include "sim/Memory.h"
#include "support/RNG.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_LOAD_POSIX 1
#include "service/Daemon.h"
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::service;

namespace {

struct LoadArgs {
  std::string Socket;    ///< empty = boot a private daemon
  unsigned Workers = 3;
  unsigned Kernels = 24;
  unsigned Campaign = 220;
  uint64_t Seed = 1;
  std::string JsonPath = "BENCH_vpod.json";
  bool Ok = true;
};

LoadArgs parseArgs(int Argc, char **Argv) {
  LoadArgs A;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Val = [&Arg](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Arg.compare(0, N, Name) == 0 && Arg.size() > N && Arg[N] == '=')
        return Arg.c_str() + N + 1;
      return nullptr;
    };
    if (const char *V = Val("--socket"))
      A.Socket = V;
    else if (const char *V = Val("--workers"))
      A.Workers = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--kernels"))
      A.Kernels = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--campaign"))
      A.Campaign = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--seed"))
      A.Seed = std::strtoull(V, nullptr, 10);
    else if (const char *V = Val("--json"))
      A.JsonPath = V;
    else {
      std::fprintf(stderr,
                   "usage: vpod_load [--socket=P] [--workers=N] "
                   "[--kernels=N] [--campaign=N] [--seed=N] [--json=P]\n");
      A.Ok = false;
      return A;
    }
  }
  return A;
}

#ifdef VPO_LOAD_POSIX

double nowSeconds() {
  timespec TS;
  clock_gettime(CLOCK_MONOTONIC, &TS);
  return double(TS.tv_sec) + double(TS.tv_nsec) * 1e-9;
}

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = size_t(P * double(V.size() - 1) + 0.5);
  return V[I < V.size() ? I : V.size() - 1];
}

/// One prepared request plus everything needed to check its answer.
struct PreparedKernel {
  std::string IRText;
  std::string RunArgs;
};

std::string renderArgs(const std::vector<int64_t> &Args) {
  std::string Out;
  for (int64_t A : Args) {
    if (!Out.empty())
      Out += ",";
    Out += std::to_string(A);
  }
  return Out;
}

/// In-process reference: the exact code path a healthy worker runs, at
/// the rung the daemon reported. Crash/hang plants are stripped (they
/// would kill the harness; the daemon's answer for them came from a
/// clean retry anyway). Pass plants are *replayed* — the guard rails
/// deterministically roll back and disable the corrupted pass, so the
/// correct answer for such a request is the disabled-pass compile, not
/// the clean one.
ServiceResponse referenceFor(const ServiceRequest &Req, unsigned Rung) {
  ServiceRequest Ref = Req;
  if (Ref.Fault.compare(0, 5, "crash") == 0 ||
      Ref.Fault.compare(0, 4, "hang") == 0)
    Ref.Fault.clear();
  Ref.Rung = Rung;
  WorkerLimits Limits;
  Limits.AllowFaultInjection = !Ref.Fault.empty();
  return compileServiceRequest(Ref, Limits);
}

/// Correct iff the service answer matches the local reference at its
/// rung: same status, content key, optimized IR, and run outcome.
/// Incidents/remarks are excluded — a rolled-back fault plant leaves an
/// incident trail the clean reference doesn't have, by design.
bool matchesReference(const ServiceResponse &Got, const ServiceRequest &Req,
                      std::string &Why) {
  ServiceResponse Want = referenceFor(Req, Got.Rung);
  if (Got.Status != Want.Status) {
    Why = std::string("status ") + errorCodeName(Got.Status) + " != " +
          errorCodeName(Want.Status);
    return false;
  }
  if (Got.Key != Want.Key) {
    Why = "content key diverged";
    return false;
  }
  if (Req.WantIR && Got.IR != Want.IR) {
    Why = "optimized IR diverged at rung " + std::to_string(Got.Rung);
    return false;
  }
  if (Got.Ran != Want.Ran || Got.RunStatus != Want.RunStatus ||
      Got.ReturnValue != Want.ReturnValue) {
    Why = "run outcome diverged (" + Got.RunStatus + " ret " +
          std::to_string(Got.ReturnValue) + " vs " + Want.RunStatus +
          " ret " + std::to_string(Want.ReturnValue) + ")";
    return false;
  }
  return true;
}

int runHarness(const LoadArgs &A) {
  std::string Socket = A.Socket;
  long DaemonPid = -1;
  if (Socket.empty()) {
    Socket = "vpod_load_" + std::to_string(long(::getpid())) + ".sock";
    long Pid = ::fork();
    if (Pid < 0) {
      std::fprintf(stderr, "vpod_load: fork failed\n");
      return 1;
    }
    if (Pid == 0) {
      DaemonOptions DO;
      DO.SocketPath = Socket;
      DO.Workers = A.Workers;
      DO.Limits.AllowFaultInjection = true;
      Daemon D(DO);
      if (!D.start())
        ::_exit(1);
      D.run();
      ::_exit(0);
    }
    DaemonPid = Pid;
  }

  ServiceClient Client;
  bool Connected = false;
  for (int Try = 0; Try < 100 && !Connected; ++Try) {
    Connected = bool(Client.connectTo(Socket));
    if (!Connected) {
      timespec TS = {0, 50'000'000}; // 50ms
      nanosleep(&TS, nullptr);
    }
  }
  if (!Connected) {
    std::fprintf(stderr, "vpod_load: could not connect to %s\n",
                 Socket.c_str());
    return 1;
  }

  // Prepare the kernel pool: seeded generated kernels with argument
  // vectors laid out exactly as the fuzzer would (stream bases then N),
  // so runs exercise real loads/stores over the zero-filled arena.
  std::vector<PreparedKernel> Pool;
  for (unsigned I = 0; I < A.Kernels; ++I) {
    fuzz::GeneratedKernel GK = fuzz::generateKernel(A.Seed * 1000 + I);
    Memory Scratch;
    PreparedKernel P;
    P.IRText = GK.IRText;
    P.RunArgs = renderArgs(
        fuzz::setupKernelMemory(GK.Spec, 16, Scratch, /*LayoutSkew=*/0));
    Pool.push_back(std::move(P));
  }

  auto MakeReq = [](const PreparedKernel &P, const std::string &Config,
                    const std::string &Id) {
    ServiceRequest Req;
    Req.Id = Id;
    Req.IR = P.IRText;
    Req.Config = Config;
    Req.RunArgs = P.RunArgs;
    Req.ArenaKB = 1024;
    Req.WantRemarks = true;
    return Req;
  };

  unsigned Failures = 0;
  auto Fail = [&Failures](const std::string &Id, const std::string &Why) {
    ++Failures;
    std::fprintf(stderr, "vpod_load: FAIL %s: %s\n", Id.c_str(),
                 Why.c_str());
  };

  // Phase 1: cold.
  std::vector<double> ColdMs;
  std::vector<std::string> ColdSignatures;
  for (unsigned I = 0; I < Pool.size(); ++I) {
    ServiceRequest Req =
        MakeReq(Pool[I], "coalesce-all", "cold-" + std::to_string(I));
    double T0 = nowSeconds();
    StatusOr<ServiceResponse> R = Client.call(Req);
    ColdMs.push_back((nowSeconds() - T0) * 1000.0);
    if (!R) {
      Fail(Req.Id, R.status().message());
      ColdSignatures.emplace_back();
      continue;
    }
    std::string Why;
    if (R->Cached)
      Fail(Req.Id, "cold request reported cached=true");
    else if (!matchesReference(*R, Req, Why))
      Fail(Req.Id, Why);
    ColdSignatures.push_back(R->resultSignature());
  }

  // Phase 2: warm — every request must be a byte-identical cache hit.
  std::vector<double> WarmMs;
  unsigned WarmHits = 0;
  for (unsigned I = 0; I < Pool.size(); ++I) {
    ServiceRequest Req =
        MakeReq(Pool[I], "coalesce-all", "warm-" + std::to_string(I));
    double T0 = nowSeconds();
    StatusOr<ServiceResponse> R = Client.call(Req);
    WarmMs.push_back((nowSeconds() - T0) * 1000.0);
    if (!R) {
      Fail(Req.Id, R.status().message());
      continue;
    }
    if (!R->Cached) {
      Fail(Req.Id, "warm request missed the cache");
      continue;
    }
    ++WarmHits;
    if (R->resultSignature() != ColdSignatures[I])
      Fail(Req.Id, "cached result is not byte-identical to the cold one");
  }

  // Phase 3: fault-injection campaign.
  static const char *Configs[] = {"vpo-O", "coalesce-loads", "coalesce-all",
                                  "coalesce-all+companions",
                                  "coalesce-all-u4"};
  RNG Rng(A.Seed * 7919 + 17);
  unsigned Correct = 0, Degraded = 0, Planted = 0;
  for (unsigned J = 0; J < A.Campaign; ++J) {
    const PreparedKernel &P = Pool[Rng.nextBelow(Pool.size())];
    ServiceRequest Req =
        MakeReq(P, Configs[Rng.nextBelow(5)], "c-" + std::to_string(J));
    uint64_t Dice = Rng.nextBelow(20);
    bool ExpectDegraded = false;
    if (Dice < 2) { // planted crash at rung 0
      Req.Fault = "crash";
      ExpectDegraded = true;
      ++Planted;
    } else if (Dice == 2) { // planted crash through rung 1
      Req.Fault = "crash:1";
      ExpectDegraded = true;
      ++Planted;
    } else if (Dice == 3) { // planted hang under a short deadline
      Req.Fault = "hang";
      Req.DeadlineMs = 250;
      ExpectDegraded = true;
      ++Planted;
    } else if (Dice == 4) { // planted in-flight miscompile
      Req.Fault = "coalesce:wrong-width:" + std::to_string(1 + J % 5);
      ++Planted;
    } else if (Dice == 5) { // whitespace variant: canonical-key alias path
      Req.IR = "\n" + Req.IR + "\n  \n";
    }
    StatusOr<ServiceResponse> R = Client.call(Req);
    if (!R) {
      Fail(Req.Id, R.status().message());
      continue;
    }
    if (R->Status != ErrorCode::Ok) {
      Fail(Req.Id, std::string("status ") + errorCodeName(R->Status) +
                       ": " + R->Error);
      continue;
    }
    if (ExpectDegraded && R->Rung == 0) {
      Fail(Req.Id, "planted " + Req.Fault + " but got a rung-0 answer");
      continue;
    }
    std::string Why;
    if (!matchesReference(*R, Req, Why)) {
      Fail(Req.Id, Why);
      continue;
    }
    ++Correct;
    if (R->Rung > 0)
      ++Degraded;
  }

  // The daemon must have survived the entire campaign in one process.
  unsigned DaemonRestarts = 0;
  if (DaemonPid > 0) {
    int St = 0;
    if (::waitpid(DaemonPid, &St, WNOHANG) != 0) {
      ++DaemonRestarts; // it exited: availability was lost
      Fail("daemon", "vpod process died during the campaign");
    }
  }

  // Daemon-side counters, for the report.
  uint64_t SrvCrashes = 0, SrvDeadlines = 0, SrvRespawns = 0, SrvHits = 0;
  {
    ServiceRequest Req;
    Req.Op = "status";
    Req.Id = "status";
    if (StatusOr<ServiceResponse> R = Client.call(Req)) {
      for (const auto &KV : R->Extra) {
        if (KV.first == "worker_crashes")
          SrvCrashes = std::strtoull(KV.second.c_str(), nullptr, 10);
        else if (KV.first == "worker_deadlines")
          SrvDeadlines = std::strtoull(KV.second.c_str(), nullptr, 10);
        else if (KV.first == "respawns")
          SrvRespawns = std::strtoull(KV.second.c_str(), nullptr, 10);
        else if (KV.first == "cache_hits")
          SrvHits = std::strtoull(KV.second.c_str(), nullptr, 10);
      }
    }
  }

  if (DaemonPid > 0) {
    ServiceRequest Req;
    Req.Op = "shutdown";
    Req.Id = "bye";
    (void)Client.call(Req);
    Client.close();
    int St = 0;
    ::waitpid(DaemonPid, &St, 0);
  }

  double HitRate = Pool.empty() ? 0.0 : double(WarmHits) / double(Pool.size());
  double Availability =
      A.Campaign == 0 ? 1.0 : double(Correct) / double(A.Campaign);

  std::printf("vpod_load: %u kernels, %u campaign requests (%u planted "
              "faults)\n",
              unsigned(Pool.size()), A.Campaign, Planted);
  std::printf("  cold  p50 %7.2f ms   p99 %7.2f ms\n",
              percentile(ColdMs, 0.50), percentile(ColdMs, 0.99));
  std::printf("  warm  p50 %7.2f ms   p99 %7.2f ms   hit rate %.3f\n",
              percentile(WarmMs, 0.50), percentile(WarmMs, 0.99), HitRate);
  std::printf("  campaign: %u/%u correct, %u degraded, availability "
              "%.4f\n",
              Correct, A.Campaign, Degraded, Availability);
  std::printf("  daemon: crashes=%llu deadlines=%llu respawns=%llu "
              "restarts=%u\n",
              (unsigned long long)SrvCrashes,
              (unsigned long long)SrvDeadlines,
              (unsigned long long)SrvRespawns, DaemonRestarts);

  std::string Json = "{\n";
  auto Num = [&Json](const char *K, double V, bool Last = false) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.4f", V);
    Json += std::string("  \"") + K + "\": " + Buf + (Last ? "\n" : ",\n");
  };
  auto Int = [&Json](const char *K, uint64_t V) {
    Json += std::string("  \"") + K + "\": " + std::to_string(V) + ",\n";
  };
  Json += "  \"name\": \"vpod_load\",\n";
  Int("workers", A.Workers);
  Int("kernels", Pool.size());
  Num("cold_p50_ms", percentile(ColdMs, 0.50));
  Num("cold_p99_ms", percentile(ColdMs, 0.99));
  Num("warm_p50_ms", percentile(WarmMs, 0.50));
  Num("warm_p99_ms", percentile(WarmMs, 0.99));
  Num("cache_hit_rate", HitRate);
  Int("campaign_requests", A.Campaign);
  Int("campaign_correct", Correct);
  Int("planted_faults", Planted);
  Int("degraded", Degraded);
  Int("worker_crashes", SrvCrashes);
  Int("worker_deadlines", SrvDeadlines);
  Int("respawns", SrvRespawns);
  Int("cache_hits_server", SrvHits);
  Int("daemon_restarts", DaemonRestarts);
  Num("availability", Availability, /*Last=*/true);
  Json += "}\n";
  std::FILE *F = std::fopen(A.JsonPath.c_str(), "w");
  if (F) {
    std::fwrite(Json.data(), 1, Json.size(), F);
    std::fclose(F);
    std::printf("  wrote %s\n", A.JsonPath.c_str());
  } else {
    std::fprintf(stderr, "vpod_load: cannot write %s\n", A.JsonPath.c_str());
    ++Failures;
  }

  if (Failures) {
    std::fprintf(stderr, "vpod_load: %u failure(s)\n", Failures);
    return 1;
  }
  return 0;
}

#endif // VPO_LOAD_POSIX

} // namespace

int main(int Argc, char **Argv) {
  LoadArgs A = parseArgs(Argc, Argv);
  if (!A.Ok)
    return 2;
#ifdef VPO_LOAD_POSIX
  return runHarness(A);
#else
  std::fprintf(stderr, "vpod_load: requires a POSIX platform\n");
  return 0;
#endif
}
