//===- bench/ablation_check_overhead.cpp - run-time check cost --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Quantifies the paper's claim that "typically, 10 to 15 instructions
/// must be added in the loop preheader to check for possible hazards" and
/// that "the impact of the extra code for checking is negligible".
///
/// Compares, across trip counts, the dot product compiled with run-time
/// checks (parameters unknown) against the same kernel compiled with
/// `restrict`-like no-alias and alignment declarations (no checks at all).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace vpo;
using namespace vpo::bench;

namespace {

Measurement measureWithAttrs(const Workload &W, const TargetMachine &TM,
                             const CompileOptions &CO,
                             const SetupOptions &SO, bool DeclareStatic) {
  Measurement M;
  Module Mod;
  Function *F = W.build(Mod);
  if (DeclareStatic)
    for (size_t P = 0; P < F->params().size(); ++P) {
      F->paramInfo(P).NoAlias = true;
      F->paramInfo(P).KnownAlign = 8;
    }
  Memory Mem;
  SetupResult S = W.setup(Mem, SO);
  std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
  int64_t ExpectedRet = W.golden(Golden.data(), SO, S);
  CompileReport Report = compileFunction(*F, TM, CO);
  M.Coalesce = Report.Coalesce;
  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*F, S.Args);
  M.Cycles = R.Cycles;
  M.MemRefs = R.MemRefs();
  M.Verified = R.ok() && R.ReturnValue == ExpectedRet &&
               std::memcmp(Mem.data(), Golden.data(), Mem.size()) == 0;
  return M;
}

} // namespace

int main() {
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;

  std::printf("Ablation: run-time alias/alignment check overhead "
              "(dotproduct, Alpha model)\n\n");
  std::printf("%-10s %14s %14s %12s %10s %s\n", "N", "checked cyc",
              "static cyc", "overhead%", "chk-insts", "ok");
  printRule(72);

  auto W = makeWorkloadByName("dotproduct");
  for (int64_t N : {16LL, 64LL, 256LL, 1024LL, 4096LL, 65536LL, 250000LL}) {
    SetupOptions SO;
    SO.N = N;
    Measurement Checked = measureWithAttrs(*W, TM, CO, SO, false);
    Measurement Static = measureWithAttrs(*W, TM, CO, SO, true);
    double Overhead = Static.Cycles == 0
                          ? 0.0
                          : (double(Checked.Cycles) - double(Static.Cycles)) /
                                double(Static.Cycles) * 100.0;
    std::printf("%-10lld %14llu %14llu %11.3f%% %10u %s\n",
                static_cast<long long>(N),
                static_cast<unsigned long long>(Checked.Cycles),
                static_cast<unsigned long long>(Static.Cycles), Overhead,
                Checked.Coalesce.CheckInstructions,
                Checked.Verified && Static.Verified ? "yes" : "MISMATCH");
  }
  std::printf("\n(the check cost is constant per loop entry, so the "
              "overhead vanishes as the trip count grows —\n the paper's "
              "'negligible impact' claim)\n");
  return 0;
}
