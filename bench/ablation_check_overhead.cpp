//===- bench/ablation_check_overhead.cpp - run-time check cost --*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Quantifies the paper's claim that "typically, 10 to 15 instructions
/// must be added in the loop preheader to check for possible hazards" and
/// that "the impact of the extra code for checking is negligible".
///
/// Compares, across trip counts, the dot product compiled with run-time
/// checks (parameters unknown) against the same kernel compiled with
/// `restrict`-like no-alias and alignment declarations (no checks at all)
/// — the CellSpec::StaticParams knob.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "ablation_check_overhead");
  if (!Args.Ok)
    return 2;

  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;

  const int64_t Ns[] = {16,   64,    256,   1024,
                        4096, 65536, 250000};

  std::vector<CellSpec> Specs;
  for (int64_t N : Ns) {
    SetupOptions SO;
    SO.N = N;
    Specs.push_back(CellSpec{"dotproduct", "checked", &TM, CO, SO, 0});
    // ~UINT_MAX = every parameter declared no-alias and 8-aligned.
    Specs.push_back(CellSpec{"dotproduct", "static", &TM, CO, SO, ~0u});
  }

  BenchReport Report = MatrixRunner(toRunnerOptions(Args))
                           .run("ablation_check_overhead", Specs);

  std::printf("Ablation: run-time alias/alignment check overhead "
              "(dotproduct, Alpha model)\n\n");
  std::printf("%-10s %14s %14s %12s %10s %s\n", "N", "checked cyc",
              "static cyc", "overhead%", "chk-insts", "ok");
  printRule(72);

  size_t Cell = 0;
  for (int64_t N : Ns) {
    const Measurement &Checked = Report.Cells[Cell++].M;
    const Measurement &Static = Report.Cells[Cell++].M;
    double Overhead = Static.Cycles == 0
                          ? 0.0
                          : (double(Checked.Cycles) - double(Static.Cycles)) /
                                double(Static.Cycles) * 100.0;
    std::printf("%-10lld %14llu %14llu %11.3f%% %10u %s\n",
                static_cast<long long>(N),
                static_cast<unsigned long long>(Checked.Cycles),
                static_cast<unsigned long long>(Static.Cycles), Overhead,
                Checked.Coalesce.CheckInstructions,
                Checked.Verified && Static.Verified ? "yes" : "MISMATCH");
  }
  std::printf("\n(the check cost is constant per loop entry, so the "
              "overhead vanishes as the trip count grows —\n the paper's "
              "'negligible impact' claim)\n");
  return finishReport(Report, Args);
}
