//===- bench/table2_alpha.cpp - reproduce paper Table II --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table II: "DEC Alpha execution times (in seconds) and
/// percent improvement". Columns: cc -O (model), vpo -O, coalesce loads,
/// coalesce loads and stores, percent savings. The savings column uses the
/// paper's formula (col3 - col5) / col3 * 100 — the improvement of the
/// fully-coalesced code over the unrolled vpo baseline.
///
/// Expected shape from the paper: Convolution ~11%, Image add ~41%,
/// Image add 16-bit ~32%, Image xor ~40%, Translate ~33%, Eqntott ~4%,
/// Mirror ~32%.
///
/// Cells run on a MatrixRunner thread pool (--threads=N); the table text
/// is identical for any thread count, and the raw per-cell metrics land
/// in BENCH_table2_alpha.json.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "table2_alpha");
  if (!Args.Ok)
    return 2;

  TargetMachine TM = makeAlphaTarget();
  double Clock = nominalClockHz("alpha");
  SetupOptions SO = paperSetup();
  auto Configs = paperConfigs();

  std::vector<CellSpec> Specs;
  for (const std::string &Name : tableWorkloads())
    for (const PipelineConfig &C : Configs)
      Specs.push_back(CellSpec{Name, C.Name, &TM, C.Options, SO, 0});

  BenchReport Report =
      MatrixRunner(toRunnerOptions(Args)).run("table2_alpha", Specs);

  std::printf("Table II: DEC Alpha (model) execution times and percent "
              "improvement\n");
  std::printf("500x500 images / 250000 elements; seconds at a nominal "
              "%.0f MHz clock\n\n",
              Clock / 1e6);
  std::printf("%-12s %10s %10s %14s %16s %9s %9s %s\n", "Program",
              "cc -O", "vpo -O", "coalesce-lds", "coalesce-lds+sts",
              "%save", "memref%", "ok");
  printRule(100);

  size_t Cell = 0;
  for (const std::string &Name : tableWorkloads()) {
    double Secs[4] = {0, 0, 0, 0};
    uint64_t Refs[4] = {0, 0, 0, 0};
    bool AllOk = true;
    for (size_t C = 0; C < Configs.size(); ++C, ++Cell) {
      const Measurement &M = Report.Cells[Cell].M;
      Secs[C] = static_cast<double>(M.Cycles) / Clock;
      Refs[C] = M.MemRefs;
      AllOk &= M.Verified;
    }
    double Save = (Secs[1] - Secs[3]) / Secs[1] * 100.0;
    double RefSave = Refs[1] == 0
                         ? 0.0
                         : (double(Refs[1]) - double(Refs[3])) /
                               double(Refs[1]) * 100.0;
    std::printf("%-12s %10.3f %10.3f %14.3f %16.3f %8.2f%% %8.2f%% %s\n",
                Name.c_str(), Secs[0], Secs[1], Secs[2], Secs[3], Save,
                RefSave, AllOk ? "yes" : "MISMATCH");
  }
  std::printf("\n(paper Table II savings: convolution 11.26, image add "
              "41.05, image add 16-bit 32.36,\n image xor 40.08, translate "
              "33.11, eqntott 3.86, mirror 32.09)\n");
  return finishReport(Report, Args);
}
