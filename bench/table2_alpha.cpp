//===- bench/table2_alpha.cpp - reproduce paper Table II --------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table II: "DEC Alpha execution times (in seconds) and
/// percent improvement". Columns: cc -O (model), vpo -O, coalesce loads,
/// coalesce loads and stores, percent savings. The savings column uses the
/// paper's formula (col3 - col5) / col3 * 100 — the improvement of the
/// fully-coalesced code over the unrolled vpo baseline.
///
/// Expected shape from the paper: Convolution ~11%, Image add ~41%,
/// Image add 16-bit ~32%, Image xor ~40%, Translate ~33%, Eqntott ~4%,
/// Mirror ~32%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace vpo;
using namespace vpo::bench;

int main() {
  TargetMachine TM = makeAlphaTarget();
  double Clock = nominalClockHz("alpha");
  SetupOptions SO = paperSetup();
  auto Configs = paperConfigs();

  std::printf("Table II: DEC Alpha (model) execution times and percent "
              "improvement\n");
  std::printf("500x500 images / 250000 elements; seconds at a nominal "
              "%.0f MHz clock\n\n",
              Clock / 1e6);
  std::printf("%-12s %10s %10s %14s %16s %9s %9s %s\n", "Program",
              "cc -O", "vpo -O", "coalesce-lds", "coalesce-lds+sts",
              "%save", "memref%", "ok");
  printRule(100);

  for (const std::string &Name : tableWorkloads()) {
    auto W = makeWorkloadByName(Name);
    double Secs[4] = {0, 0, 0, 0};
    uint64_t Refs[4] = {0, 0, 0, 0};
    bool AllOk = true;
    for (size_t C = 0; C < Configs.size(); ++C) {
      Measurement M = measureCell(*W, TM, Configs[C].Options, SO);
      Secs[C] = static_cast<double>(M.Cycles) / Clock;
      Refs[C] = M.MemRefs;
      AllOk &= M.Verified;
    }
    double Save = (Secs[1] - Secs[3]) / Secs[1] * 100.0;
    double RefSave = Refs[1] == 0
                         ? 0.0
                         : (double(Refs[1]) - double(Refs[3])) /
                               double(Refs[1]) * 100.0;
    std::printf("%-12s %10.3f %10.3f %14.3f %16.3f %8.2f%% %8.2f%% %s\n",
                Name.c_str(), Secs[0], Secs[1], Secs[2], Secs[3], Save,
                RefSave, AllOk ? "yes" : "MISMATCH");
  }
  std::printf("\n(paper Table II savings: convolution 11.26, image add "
              "41.05, image add 16-bit 32.36,\n image xor 40.08, translate "
              "33.11, eqntott 3.86, mirror 32.09)\n");
  return 0;
}
