//===- bench/vpod_chaos.cpp - vpod crash/recovery chaos soak ----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos soak for the self-healing service tier. Where vpod_load proves
/// availability under *worker* faults, this harness attacks the daemon
/// process itself and the persistent cache journal, and checks that no
/// failure mode ever surfaces as a wrong answer:
///
///   - The daemon is SIGKILLed at scheduled points in the campaign and
///     restarted on the same socket and journal. A subset of kills are
///     "mid-write": a burst of novel compile requests is pipelined in,
///     partially drained, and the kill lands while journal appends are
///     in flight; the journal tail is then truncated by a few bytes to
///     force the torn-write recovery path (fsync makes a real torn
///     record rare, so the tear is simulated deterministically).
///   - Worker crash/hang plants and JIT wild-store plants
///     ("jit-wild-store", caught by the native-fault quarantine) run
///     throughout, so recovery overlaps degradation.
///   - Every response — including re-requests of kernels whose journal
///     records were just torn off — is reference-diffed against an
///     in-process compile at the rung the daemon reports. A recovered
///     cache entry must replay byte-identical; a discarded one must be
///     recomputed, never served corrupt.
///   - After each restart the harness re-requests a kernel journaled
///     before the first kill and counts warm cache hits, proving the
///     journal actually survives the crash.
///   - op=reload is exercised after the first restart (journal re-open +
///     probation probes), and the final daemon is stopped with SIGTERM:
///     it must drain and exit 0, not die on the signal.
///
/// Exit is nonzero unless corrupt_serves == 0 and every campaign request
/// was eventually answered correctly (availability 1.0 with retries).
/// Writes BENCH_vpod_chaos.json; the vpod-chaos CI job greps its gates.
///
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"
#include "jit/JIT.h"
#include "service/Client.h"
#include "service/Worker.h"
#include "sim/Memory.h"
#include "support/RNG.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define VPO_CHAOS_POSIX 1
#include "service/Daemon.h"
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#endif

using namespace vpo;
using namespace vpo::service;

namespace {

struct ChaosArgs {
  unsigned Workers = 3;
  unsigned Kernels = 20;
  unsigned Requests = 300;
  unsigned Kills = 6;
  unsigned MidwriteKills = 3;
  unsigned JitFaults = 4;
  uint64_t Seed = 1;
  std::string JsonPath = "BENCH_vpod_chaos.json";
  bool Ok = true;
};

ChaosArgs parseArgs(int Argc, char **Argv) {
  ChaosArgs A;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Val = [&Arg](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Arg.compare(0, N, Name) == 0 && Arg.size() > N && Arg[N] == '=')
        return Arg.c_str() + N + 1;
      return nullptr;
    };
    if (const char *V = Val("--workers"))
      A.Workers = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--kernels"))
      A.Kernels = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--requests"))
      A.Requests = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--kills"))
      A.Kills = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--midwrite-kills"))
      A.MidwriteKills = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--jit-faults"))
      A.JitFaults = unsigned(std::strtoul(V, nullptr, 10));
    else if (const char *V = Val("--seed"))
      A.Seed = std::strtoull(V, nullptr, 10);
    else if (const char *V = Val("--json"))
      A.JsonPath = V;
    else {
      std::fprintf(stderr,
                   "usage: vpod_chaos [--workers=N] [--kernels=N] "
                   "[--requests=N] [--kills=N] [--midwrite-kills=N] "
                   "[--jit-faults=N] [--seed=N] [--json=P]\n");
      A.Ok = false;
      return A;
    }
  }
  if (A.MidwriteKills > A.Kills)
    A.MidwriteKills = A.Kills;
  return A;
}

#ifdef VPO_CHAOS_POSIX

volatile std::sig_atomic_t ChaosDrainFlag = 0;
void onChaosTerm(int) { ChaosDrainFlag = 1; }

/// Forks a daemon on \p Socket backed by \p Journal. The child installs
/// a SIGTERM handler wired to the daemon's drain flag, so the final
/// SIGTERM in the harness tests the graceful-drain path, not signal
/// death. \returns the child pid, or -1.
long startDaemon(const std::string &Socket, const std::string &Journal,
                 unsigned Workers) {
  long Pid = ::fork();
  if (Pid != 0)
    return Pid;
  ChaosDrainFlag = 0;
  std::signal(SIGTERM, onChaosTerm);
  DaemonOptions DO;
  DO.SocketPath = Socket;
  DO.Workers = Workers;
  DO.Limits.AllowFaultInjection = true;
  DO.CacheJournalPath = Journal;
  DO.DrainFlag = &ChaosDrainFlag;
  DO.DrainDeadlineMs = 3000;
  Daemon D(DO);
  if (!D.start())
    ::_exit(1);
  D.run();
  ::_exit(0);
}

/// Blocks until a ping round-trips (the restarted daemon owns the
/// socket again). \returns false after ~5s of refusals.
bool awaitUp(const std::string &Socket) {
  for (int Try = 0; Try < 100; ++Try) {
    ServiceClient C;
    if (C.connectTo(Socket)) {
      ServiceRequest Req;
      Req.Op = "ping";
      Req.Id = "up";
      if (StatusOr<ServiceResponse> R = C.call(Req))
        return true;
    }
    timespec TS = {0, 50'000'000};
    nanosleep(&TS, nullptr);
  }
  return false;
}

void killHard(long Pid) {
  ::kill(pid_t(Pid), SIGKILL);
  int St = 0;
  ::waitpid(pid_t(Pid), &St, 0);
}

/// Simulated torn write: chop 1..CutMax bytes off the journal tail, as
/// if the daemon died inside an append. Recovery must truncate back to
/// the last committed record and serve the lost entry as a clean miss.
bool tearJournalTail(const std::string &Path, uint64_t Cut) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return false;
  if (uint64_t(St.st_size) <= Cut + 64)
    return false; // keep at least the first records intact
  return ::truncate(Path.c_str(), off_t(uint64_t(St.st_size) - Cut)) == 0;
}

struct PreparedKernel {
  std::string IRText;
  std::string RunArgs;
};

std::string renderArgs(const std::vector<int64_t> &Args) {
  std::string Out;
  for (int64_t A : Args) {
    if (!Out.empty())
      Out += ",";
    Out += std::to_string(A);
  }
  return Out;
}

PreparedKernel prepareKernel(uint64_t Seed) {
  fuzz::GeneratedKernel GK = fuzz::generateKernel(Seed);
  Memory Scratch;
  PreparedKernel P;
  P.IRText = GK.IRText;
  P.RunArgs =
      renderArgs(fuzz::setupKernelMemory(GK.Spec, 16, Scratch, /*Skew=*/0));
  return P;
}

ServiceRequest makeReq(const PreparedKernel &P, const std::string &Config,
                       const std::string &Id) {
  ServiceRequest Req;
  Req.Id = Id;
  Req.IR = P.IRText;
  Req.Config = Config;
  Req.RunArgs = P.RunArgs;
  Req.ArenaKB = 1024;
  Req.WantRemarks = true;
  return Req;
}

/// In-process reference at the rung the daemon reported. Crash, hang,
/// and jit-wild-store plants are stripped: the first two killed a worker
/// and were answered by a clean retry, and a quarantined wild store is
/// replayed per-op on the interpreter, so the architecturally exact
/// clean answer is the correct one for all three.
ServiceResponse referenceFor(const ServiceRequest &Req, unsigned Rung) {
  ServiceRequest Ref = Req;
  if (Ref.Fault.compare(0, 5, "crash") == 0 ||
      Ref.Fault.compare(0, 4, "hang") == 0 ||
      Ref.Fault.compare(0, 14, "jit-wild-store") == 0)
    Ref.Fault.clear();
  Ref.Rung = Rung;
  WorkerLimits Limits;
  Limits.AllowFaultInjection = !Ref.Fault.empty();
  return compileServiceRequest(Ref, Limits);
}

bool matchesReference(const ServiceResponse &Got, const ServiceRequest &Req,
                      std::string &Why) {
  ServiceResponse Want = referenceFor(Req, Got.Rung);
  if (Got.Status != Want.Status) {
    Why = std::string("status ") + errorCodeName(Got.Status) + " != " +
          errorCodeName(Want.Status);
    return false;
  }
  if (Got.Key != Want.Key) {
    Why = "content key diverged (rung " + std::to_string(Got.Rung) +
          (Got.Cached ? ", cached" : "") + "): " + Got.Key +
          " != " + Want.Key;
    return false;
  }
  if (Req.WantIR && Got.IR != Want.IR) {
    Why = "optimized IR diverged at rung " + std::to_string(Got.Rung);
    return false;
  }
  if (Got.Ran != Want.Ran || Got.RunStatus != Want.RunStatus ||
      Got.ReturnValue != Want.ReturnValue) {
    Why = "run outcome diverged (" + Got.RunStatus + " ret " +
          std::to_string(Got.ReturnValue) + " vs " + Want.RunStatus +
          " ret " + std::to_string(Want.ReturnValue) + ")";
    return false;
  }
  return true;
}

uint64_t extraOf(const ServiceResponse &R, const char *Key) {
  for (const auto &KV : R.Extra)
    if (KV.first == Key)
      return std::strtoull(KV.second.c_str(), nullptr, 10);
  return 0;
}

int runChaos(const ChaosArgs &A) {
  std::string Tag = std::to_string(long(::getpid()));
  std::string Socket = "vpod_chaos_" + Tag + ".sock";
  std::string Journal = "vpod_chaos_" + Tag + ".vpj";
  ::unlink(Journal.c_str());
  ::unlink((Journal + ".tmp").c_str());

  long Pid = startDaemon(Socket, Journal, A.Workers);
  if (Pid < 0) {
    std::fprintf(stderr, "vpod_chaos: fork failed\n");
    return 1;
  }
  if (!awaitUp(Socket)) {
    std::fprintf(stderr, "vpod_chaos: daemon never came up\n");
    killHard(Pid);
    return 1;
  }

  std::vector<PreparedKernel> Pool;
  for (unsigned I = 0; I < A.Kernels; ++I)
    Pool.push_back(prepareKernel(A.Seed * 1000 + I));

  RNG Rng(A.Seed * 7919 + 29);

  // Kill schedule: spread across the middle of the campaign so the
  // journal is warm before the first kill; the first MidwriteKills of
  // them land mid-journal-write with a simulated torn tail.
  std::set<unsigned> KillSet;
  std::vector<unsigned> KillAt;
  unsigned Lo = std::max(1u, A.Requests / 10);
  unsigned Span = A.Requests > Lo + A.Kills ? A.Requests - Lo : A.Kills;
  for (unsigned K = 0; K < A.Kills; ++K) {
    unsigned At = Lo + (K * Span) / std::max(1u, A.Kills) +
                  unsigned(Rng.nextBelow(std::max<uint64_t>(
                      1, Span / (2 * std::max(1u, A.Kills)))));
    while (KillSet.count(At))
      ++At;
    KillSet.insert(At);
  }
  KillAt.assign(KillSet.begin(), KillSet.end());

  // JIT wild-store plants, spread evenly, dodging kill points.
  std::set<unsigned> JitAt;
  for (unsigned K = 0; K < A.JitFaults; ++K) {
    unsigned At = 2 + (K * A.Requests) / std::max(1u, A.JitFaults + 1);
    while (KillSet.count(At) || JitAt.count(At))
      ++At;
    JitAt.insert(At);
  }
  bool JitAvailable = jit::nativeAvailability().Ok;

  RetryPolicy Policy;
  Policy.MaxAttempts = 15;
  Policy.BaseDelayMs = 25;
  Policy.MaxDelayMs = 1000;
  Policy.JitterSeed = A.Seed;
  RetryingClient Client(Socket, Policy);

  unsigned CorruptServes = 0, Unanswered = 0, Correct = 0, Failures = 0;
  auto Fail = [&Failures](const std::string &Id, const std::string &Why) {
    ++Failures;
    std::fprintf(stderr, "vpod_chaos: FAIL %s: %s\n", Id.c_str(),
                 Why.c_str());
  };

  // Journal the warm-hit sentinel before any kill: pool[0] at rung 0.
  ServiceRequest Sentinel = makeReq(Pool[0], "coalesce-all", "sentinel");
  {
    StatusOr<ServiceResponse> R = Client.call(Sentinel);
    std::string Why;
    if (!R)
      Fail("sentinel", R.status().message());
    else if (R->Status != ErrorCode::Ok || !matchesReference(*R, Sentinel, Why))
      Fail("sentinel", Why.empty() ? R->Error : Why);
  }

  static const char *Configs[] = {"vpo-O", "coalesce-loads", "coalesce-all",
                                  "coalesce-all+companions",
                                  "coalesce-all-u4"};
  unsigned Restarts = 0, MidwriteDone = 0, Truncations = 0;
  unsigned WarmHitsAfterRestart = 0, BurstChecked = 0;
  unsigned JitPlanted = 0, JitRemarks = 0, CrashPlants = 0, HangPlants = 0;
  unsigned DegradedSeen = 0, ReloadsSent = 0;
  uint64_t RecoveredTotal = 0, DiscardedTotal = 0, TornSeen = 0;
  uint64_t BurstSeed = A.Seed * 500000 + 1;
  size_t KillCursor = 0;

  for (unsigned J = 0; J < A.Requests; ++J) {
    // ---- Scheduled daemon kill (before request J is issued). ----
    if (KillCursor < KillAt.size() && J == KillAt[KillCursor]) {
      bool Midwrite = KillCursor < A.MidwriteKills;
      std::vector<ServiceRequest> Burst;
      if (Midwrite) {
        // Pipeline novel kernels so journal appends are in flight when
        // the kill lands; drain half so some records are committed and
        // the tail tear lands on real data.
        ServiceClient Raw;
        if (Raw.connectTo(Socket)) {
          for (unsigned B = 0; B < 6; ++B) {
            PreparedKernel PK = prepareKernel(BurstSeed++);
            ServiceRequest BReq =
                makeReq(PK, "coalesce-all",
                        "burst-" + std::to_string(KillCursor) + "-" +
                            std::to_string(B));
            if (Raw.send(BReq))
              Burst.push_back(std::move(BReq));
          }
          for (unsigned B = 0; B < 3 && B < Burst.size(); ++B) {
            StatusOr<ServiceResponse> R = Raw.receive();
            if (!R)
              break;
            std::string Why;
            ++BurstChecked;
            if (R->Id != Burst[B].Id) {
              ++CorruptServes;
              Fail(Burst[B].Id, "response misordered: got id " + R->Id);
            } else if (R->Status != ErrorCode::Ok ||
                       !matchesReference(*R, Burst[B], Why)) {
              ++CorruptServes;
              Fail(Burst[B].Id, Why.empty() ? R->Error : Why);
            }
          }
        }
        timespec TS = {0, 5'000'000}; // 5ms: appends still in flight
        nanosleep(&TS, nullptr);
      }
      killHard(Pid);
      ++Restarts;
      Client.disconnect();
      if (Midwrite) {
        ++MidwriteDone;
        if (tearJournalTail(Journal, 1 + Rng.nextBelow(23)))
          ++Truncations;
      }
      Pid = startDaemon(Socket, Journal, A.Workers);
      if (Pid < 0 || !awaitUp(Socket)) {
        Fail("restart", "daemon did not come back after kill " +
                            std::to_string(KillCursor));
        ++KillCursor;
        continue;
      }
      // Recovery stats for the boot that just happened.
      ServiceRequest StReq;
      StReq.Op = "status";
      StReq.Id = "st-" + std::to_string(KillCursor);
      if (StatusOr<ServiceResponse> R = Client.call(StReq)) {
        RecoveredTotal += extraOf(*R, "cache_recovered");
        DiscardedTotal += extraOf(*R, "cache_discarded");
        TornSeen += extraOf(*R, "cache_torn_tail");
      }
      // Warm-hit probe: the sentinel was journaled before the first
      // kill; the recovered cache must serve it without the pool.
      ServiceRequest Probe = Sentinel;
      Probe.Id = "warm-" + std::to_string(KillCursor);
      if (StatusOr<ServiceResponse> R = Client.call(Probe)) {
        std::string Why;
        if (R->Status == ErrorCode::Ok && !matchesReference(*R, Probe, Why)) {
          ++CorruptServes;
          Fail(Probe.Id, "recovered cache served a corrupt sentinel: " + Why);
        } else if (R->Cached) {
          ++WarmHitsAfterRestart;
        }
      }
      // Burst kernels whose journal records were possibly torn off:
      // each must now be either an exact warm hit or a clean recompute.
      for (const ServiceRequest &BReq : Burst) {
        ServiceRequest Re = BReq;
        Re.Id = BReq.Id + "-re";
        StatusOr<ServiceResponse> R = Client.call(Re);
        if (!R)
          continue; // availability of extras is not gated; bytes are
        std::string Why;
        ++BurstChecked;
        if (R->Status != ErrorCode::Ok || !matchesReference(*R, Re, Why)) {
          ++CorruptServes;
          Fail(Re.Id, Why.empty() ? R->Error : Why);
        }
      }
      // Exercise op=reload once: journal re-open plus probation probes.
      if (ReloadsSent == 0) {
        ServiceRequest RReq;
        RReq.Op = "reload";
        RReq.Id = "reload-0";
        if (StatusOr<ServiceResponse> R = Client.call(RReq)) {
          ++ReloadsSent;
          if (R->Status != ErrorCode::Ok)
            Fail(RReq.Id, "reload failed: " + R->Error);
        }
      }
      ++KillCursor;
    }

    // ---- One campaign request through the retrying client. ----
    const PreparedKernel &P = Pool[Rng.nextBelow(Pool.size())];
    ServiceRequest Req =
        makeReq(P, Configs[Rng.nextBelow(5)], "c-" + std::to_string(J));
    uint64_t Dice = Rng.nextBelow(20);
    bool ExpectDegraded = false;
    if (JitAt.count(J)) {
      Req.Fault = "jit-wild-store";
      ++JitPlanted;
    } else if (Dice < 2) {
      Req.Fault = "crash";
      ExpectDegraded = true;
      ++CrashPlants;
    } else if (Dice == 2) {
      Req.Fault = "crash:1";
      ExpectDegraded = true;
      ++CrashPlants;
    } else if (Dice == 3) {
      Req.Fault = "hang";
      Req.DeadlineMs = 250;
      ExpectDegraded = true;
      ++HangPlants;
    } else if (Dice == 4) {
      Req.IR = "\n" + Req.IR + "\n  \n";
    }
    StatusOr<ServiceResponse> R = Client.call(Req);
    if (!R) {
      ++Unanswered;
      Fail(Req.Id, R.status().message());
      continue;
    }
    if (R->Status != ErrorCode::Ok) {
      Fail(Req.Id, std::string("status ") + errorCodeName(R->Status) + ": " +
                       R->Error);
      continue;
    }
    if (ExpectDegraded && R->Rung == 0) {
      Fail(Req.Id, "planted " + Req.Fault + " but got a rung-0 answer");
      continue;
    }
    std::string Why;
    if (!matchesReference(*R, Req, Why)) {
      ++CorruptServes;
      Fail(Req.Id, Why);
      continue;
    }
    if (JitAt.count(J) && JitAvailable &&
        R->Remarks.find("jit-native-fault") != std::string::npos)
      ++JitRemarks;
    ++Correct;
    if (R->Rung > 0)
      ++DegradedSeen;
  }

  // Final counters from the surviving daemon.
  uint64_t SrvCrashes = 0, SrvRespawns = 0, SrvHits = 0, SrvProbes = 0;
  uint64_t SrvSticky = 0, FinalRecovered = 0;
  uint64_t SrvJournalBytes = 0, SrvCompactions = 0;
  {
    ServiceRequest Req;
    Req.Op = "status";
    Req.Id = "status-final";
    if (StatusOr<ServiceResponse> R = Client.call(Req)) {
      SrvCrashes = extraOf(*R, "worker_crashes");
      SrvRespawns = extraOf(*R, "respawns");
      SrvHits = extraOf(*R, "cache_hits");
      SrvProbes = extraOf(*R, "probes");
      SrvSticky = extraOf(*R, "sticky_degraded");
      FinalRecovered = extraOf(*R, "cache_recovered");
      SrvJournalBytes = extraOf(*R, "journal_bytes");
      SrvCompactions = extraOf(*R, "compactions");
    } else {
      Fail("status-final", R.status().message());
    }
  }

  // Graceful drain: SIGTERM must produce a clean exit 0, never signal
  // death, with the journal fsynced and closed on the way out.
  bool DrainCleanExit = false;
  {
    ::kill(pid_t(Pid), SIGTERM);
    int St = 0;
    ::waitpid(pid_t(Pid), &St, 0);
    DrainCleanExit = WIFEXITED(St) && WEXITSTATUS(St) == 0;
    if (!DrainCleanExit)
      Fail("drain", WIFSIGNALED(St)
                        ? "daemon died on SIGTERM (signal " +
                              std::to_string(WTERMSIG(St)) + ")"
                        : "daemon exited " + std::to_string(WEXITSTATUS(St)) +
                              " from drain");
  }

  double Availability =
      A.Requests == 0 ? 1.0 : double(Correct) / double(A.Requests);

  // Hard gates beyond per-request failures.
  if (CorruptServes > 0)
    Fail("gate", "corrupt serves: " + std::to_string(CorruptServes));
  if (WarmHitsAfterRestart == 0 && Restarts > 0)
    Fail("gate", "no warm cache hit from the recovered journal");
  if (RecoveredTotal == 0 && Restarts > 0)
    Fail("gate", "no boot ever recovered journal entries");
  if (JitAvailable && JitPlanted >= 3 && JitRemarks < 3)
    Fail("gate", "expected >=3 jit-native-fault remarks, saw " +
                     std::to_string(JitRemarks));

  std::printf("vpod_chaos: %u requests, %u kills (%u mid-write, %u tail "
              "tears), %u restarts\n",
              A.Requests, unsigned(KillAt.size()), MidwriteDone, Truncations,
              Restarts);
  std::printf("  correct %u/%u  availability %.4f  corrupt serves %u  "
              "unanswered %u\n",
              Correct, A.Requests, Availability, CorruptServes, Unanswered);
  std::printf("  recovery: entries=%llu discarded=%llu torn-boots=%llu "
              "warm-hits-after-restart=%u burst-rechecked=%u\n",
              (unsigned long long)RecoveredTotal,
              (unsigned long long)DiscardedTotal, (unsigned long long)TornSeen,
              WarmHitsAfterRestart, BurstChecked);
  std::printf("  faults: crash=%u hang=%u jit-planted=%u jit-remarks=%u "
              "degraded=%u (native jit %s)\n",
              CrashPlants, HangPlants, JitPlanted, JitRemarks, DegradedSeen,
              JitAvailable ? "on" : "off");
  std::printf("  daemon: crashes=%llu respawns=%llu hits=%llu probes=%llu "
              "sticky=%llu reloads-sent=%u drain-exit=%s\n",
              (unsigned long long)SrvCrashes, (unsigned long long)SrvRespawns,
              (unsigned long long)SrvHits, (unsigned long long)SrvProbes,
              (unsigned long long)SrvSticky, ReloadsSent,
              DrainCleanExit ? "clean" : "DIRTY");

  std::string Json = "{\n";
  auto Num = [&Json](const char *K, double V, bool Last = false) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.4f", V);
    Json += std::string("  \"") + K + "\": " + Buf + (Last ? "\n" : ",\n");
  };
  auto Int = [&Json](const char *K, uint64_t V) {
    Json += std::string("  \"") + K + "\": " + std::to_string(V) + ",\n";
  };
  Json += "  \"name\": \"vpod_chaos\",\n";
  Int("workers", A.Workers);
  Int("requests", A.Requests);
  Int("correct", Correct);
  Int("corrupt_serves", CorruptServes);
  Int("unanswered", Unanswered);
  Int("kills", KillAt.size());
  Int("midwrite_kills", MidwriteDone);
  Int("journal_truncations", Truncations);
  Int("daemon_restarts", Restarts);
  Int("warm_hits_after_restart", WarmHitsAfterRestart);
  Int("burst_rechecked", BurstChecked);
  Int("cache_recovered_total", RecoveredTotal);
  Int("cache_recovered_last", FinalRecovered);
  Int("cache_discarded_total", DiscardedTotal);
  Int("torn_tail_boots", TornSeen);
  Int("journal_bytes", SrvJournalBytes);
  Int("compactions", SrvCompactions);
  Int("crash_plants", CrashPlants);
  Int("hang_plants", HangPlants);
  Int("jit_native_available", JitAvailable ? 1 : 0);
  Int("jit_faults_planted", JitPlanted);
  Int("jit_fault_remarks", JitRemarks);
  Int("degraded", DegradedSeen);
  Int("worker_crashes", SrvCrashes);
  Int("respawns", SrvRespawns);
  Int("probes", SrvProbes);
  Int("sticky_degraded", SrvSticky);
  Int("reloads_sent", ReloadsSent);
  Int("client_retries", unsigned(Client.retries()));
  Int("client_reconnects", unsigned(Client.reconnects()));
  Int("drain_clean_exit", DrainCleanExit ? 1 : 0);
  Num("availability", Availability, /*Last=*/true);
  Json += "}\n";
  std::FILE *F = std::fopen(A.JsonPath.c_str(), "w");
  if (F) {
    std::fwrite(Json.data(), 1, Json.size(), F);
    std::fclose(F);
    std::printf("  wrote %s\n", A.JsonPath.c_str());
  } else {
    std::fprintf(stderr, "vpod_chaos: cannot write %s\n", A.JsonPath.c_str());
    ++Failures;
  }

  ::unlink(Journal.c_str());
  ::unlink((Journal + ".tmp").c_str());

  if (Failures) {
    std::fprintf(stderr, "vpod_chaos: %u failure(s)\n", Failures);
    return 1;
  }
  return 0;
}

#endif // VPO_CHAOS_POSIX

} // namespace

int main(int Argc, char **Argv) {
  ChaosArgs A = parseArgs(Argc, Argv);
  if (!A.Ok)
    return 2;
#ifdef VPO_CHAOS_POSIX
  return runChaos(A);
#else
  std::fprintf(stderr, "vpod_chaos: requires a POSIX platform\n");
  return 0;
#endif
}
