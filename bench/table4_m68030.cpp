//===- bench/table4_m68030.cpp - reproduce the 68030 result -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's Motorola 68030 result (section 3, reported in
/// text): "Unfortunately, in all cases the code ran slower" — the 68030
/// has byte/word memory references as cheap as wide ones, and its bitfield
/// extract instructions are "much more expensive than simply loading the
/// bytes and words directly".
///
/// The authors' static profitability analysis did not predict this; the
/// "forced" columns below coalesce unconditionally (their measured
/// configuration), and the last column shows that this library's
/// dual-schedule profitability test (paper Fig. 3) correctly refuses the
/// transformation on this machine.
///
/// Cells run on a MatrixRunner thread pool (--threads=N); per-cell
/// metrics land in BENCH_table4_m68030.json.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "table4_m68030");
  if (!Args.Ok)
    return 2;

  TargetMachine TM = makeM68030Target();
  double Clock = nominalClockHz("m68030");
  SetupOptions SO = paperSetup();

  CompileOptions Base;
  Base.Mode = CoalesceMode::None;
  Base.Unroll = true;
  Base.Schedule = true;

  CompileOptions Forced = Base;
  Forced.Mode = CoalesceMode::LoadsAndStores;
  Forced.RequireProfitability = false;

  CompileOptions ForcedLoads = Base;
  ForcedLoads.Mode = CoalesceMode::Loads;
  ForcedLoads.RequireProfitability = false;

  CompileOptions Guarded = Base;
  Guarded.Mode = CoalesceMode::LoadsAndStores;
  Guarded.RequireProfitability = true;

  const PipelineConfig Configs[] = {{"vpo -O", Base},
                                    {"forced-loads", ForcedLoads},
                                    {"forced-lds+sts", Forced},
                                    {"with-profit", Guarded}};

  std::vector<CellSpec> Specs;
  for (const std::string &Name : tableWorkloads())
    for (const PipelineConfig &C : Configs)
      Specs.push_back(CellSpec{Name, C.Name, &TM, C.Options, SO, 0});

  BenchReport Report =
      MatrixRunner(toRunnerOptions(Args)).run("table4_m68030", Specs);

  std::printf("Table IV (paper section 3 text): Motorola 68030 (model) — "
              "coalescing makes code slower\n");
  std::printf("500x500 images / 250000 elements; seconds at a nominal "
              "%.0f MHz clock\n\n",
              Clock / 1e6);
  std::printf("%-12s %10s %14s %16s %10s %12s %s\n", "Program", "vpo -O",
              "forced-loads", "forced-lds+sts", "slower?",
              "with-profit", "ok");
  printRule(96);

  size_t Cell = 0;
  for (const std::string &Name : tableWorkloads()) {
    const Measurement &MB = Report.Cells[Cell++].M;
    const Measurement &ML = Report.Cells[Cell++].M;
    const Measurement &MF = Report.Cells[Cell++].M;
    const Measurement &MG = Report.Cells[Cell++].M;
    bool AllOk =
        MB.Verified && ML.Verified && MF.Verified && MG.Verified;
    double SB = double(MB.Cycles) / Clock;
    double SL = double(ML.Cycles) / Clock;
    double SF = double(MF.Cycles) / Clock;
    double SG = double(MG.Cycles) / Clock;
    bool CoalescingFired = ML.Coalesce.LoopsTransformed > 0 ||
                           MF.Coalesce.LoopsTransformed > 0;
    std::printf("%-12s %10.3f %14.3f %16.3f %10s %12.3f %s\n",
                Name.c_str(), SB, SL, SF,
                !CoalescingFired ? "n/a"
                                 : (SF > SB || SL > SB ? "yes" : "no"),
                SG, AllOk ? "yes" : "MISMATCH");
  }
  std::printf("\n(paper: 'for the Motorola 68030 the technique resulted "
              "in slower code' for all programs;\n the with-profit column "
              "equals vpo -O because the Fig. 3 schedule comparison "
              "rejects every loop)\n");
  return finishReport(Report, Args);
}
