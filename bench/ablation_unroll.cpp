//===- bench/ablation_unroll.cpp - unroll-factor sweep ----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Ablation for the paper's section 1 discussion: "naive loop unrolling
/// may cause the size of a loop to grow larger than the instruction
/// cache". Sweeps the forced unroll factor for image_add and reports
/// cycles on the Alpha model and on the 68030 model, whose 256-byte
/// i-cache makes the heuristic bite early.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "ablation_unroll");
  if (!Args.Ok)
    return 2;

  SetupOptions SO = paperSetup();
  const unsigned Factors[] = {0u, 2u, 8u, 32u, 128u, 512u, 2048u};
  TargetMachine Targets[2] = {makeAlphaTarget(), makeM68030Target()};

  std::vector<CellSpec> Specs;
  for (unsigned Factor : Factors)
    for (int T = 0; T < 2; ++T)
      for (int Naive = 0; Naive < 2; ++Naive) {
        CompileOptions CO;
        CO.Mode = CoalesceMode::LoadsAndStores;
        CO.Unroll = true;
        CO.UnrollFactor = Factor;
        CO.IgnoreICacheHeuristic = Naive == 1;
        // Forced over-unrolling is exactly what profitability would
        // refuse; disable the guard so the cost is measurable.
        CO.RequireProfitability = false;
        std::string Config = "factor=" + std::to_string(Factor) +
                             (Naive ? " naive" : " capped");
        Specs.push_back(
            CellSpec{"image_add", Config, &Targets[T], CO, SO, 0});
      }

  BenchReport Report =
      MatrixRunner(toRunnerOptions(Args)).run("ablation_unroll", Specs);

  std::printf("Ablation: unroll factor sweep (image_add, coalesce "
              "loads+stores)\n");
  std::printf("'naive' columns disable the i-cache-fit heuristic (paper "
              "section 2.2); 'capped' obey it\n\n");
  std::printf("%-8s %14s %14s %14s %14s %s\n", "factor", "alpha capped",
              "alpha naive", "m68030 capped", "m68030 naive", "ok");
  printRule(84);

  size_t Cell = 0;
  for (unsigned Factor : Factors) {
    double Mcyc[2][2];
    bool Ok = true;
    for (int T = 0; T < 2; ++T)
      for (int Naive = 0; Naive < 2; ++Naive, ++Cell) {
        const Measurement &M = Report.Cells[Cell].M;
        Mcyc[T][Naive] = double(M.Cycles) / 1e6;
        Ok &= M.Verified;
      }
    char Label[16];
    if (Factor == 0)
      std::snprintf(Label, sizeof(Label), "auto");
    else
      std::snprintf(Label, sizeof(Label), "%u", Factor);
    std::printf("%-8s %14.3f %14.3f %14.3f %14.3f %s\n", Label,
                Mcyc[0][0], Mcyc[0][1], Mcyc[1][0], Mcyc[1][1],
                Ok ? "yes" : "MISMATCH");
  }
  std::printf("\n(the 'capped' columns flatten once the request exceeds "
              "what fits in the i-cache;\n the 'naive' columns keep "
              "growing the loop until instruction fetch misses erase the\n"
              " coalescing gains — the paper's motivation for the "
              "heuristic. The 68030's 256-byte\n cache turns naive "
              "unrolling into a large slowdown almost immediately.)\n");
  return finishReport(Report, Args);
}
