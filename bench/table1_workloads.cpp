//===- bench/table1_workloads.cpp - reproduce paper Table I -----*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table I: the benchmark descriptions, augmented with the
/// static characteristics that matter to the transformation (loop body
/// size, memory references per iteration, narrow reference widths).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InductionVars.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryPartitions.h"

using namespace vpo;
using namespace vpo::bench;

int main() {
  std::printf("Table I: compute- and memory-intensive benchmarks\n\n");
  std::printf("%-12s %-58s %6s %6s %6s %6s\n", "Program", "Description",
              "insts", "loops", "lds/it", "sts/it");
  printRule(100);

  std::vector<std::string> Names = tableWorkloads();
  Names.push_back("dotproduct");
  Names.push_back("livermore5");
  for (const std::string &Name : Names) {
    auto W = makeWorkloadByName(Name);
    Module M;
    Function *F = W->build(M);
    CFG G(*F);
    DominatorTree DT(G);
    LoopInfo LI(G, DT);
    unsigned Loads = 0, Stores = 0;
    for (const auto &L : LI.loops()) {
      if (!L->isInnermost() || !L->singleBodyBlock())
        continue;
      LoopScalarInfo LSI(*L, *F);
      MemoryPartitions MP(*L, LSI);
      for (const Partition &P : MP.partitions())
        for (const MemRef &R : P.Refs) {
          Loads += R.IsLoad;
          Stores += R.IsStore;
        }
      break; // report the innermost (hot) loop
    }
    std::printf("%-12s %-58s %6zu %6zu %6u %6u\n", W->name(),
                W->description(), F->instructionCount(), LI.loops().size(),
                Loads, Stores);
  }
  return 0;
}
