//===- bench/table3_m88100.cpp - reproduce paper Table III ------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table III: "Motorola 88100 execution times (in seconds) and
/// percent improvement". The paper's headline observation here: "the code
/// with both loads and stores coalesced runs slower than the code with
/// just loads coalesced", because the 88100 has no insert instructions —
/// the savings column therefore uses the loads-only column,
/// (col3 - col4) / col3 * 100.
///
/// Expected shape: loads-only savings up to ~25% (convolution 17.3,
/// image kernels 15-24, eqntott ~1.3), and column 5 >= column 4 for every
/// program.
///
/// Cells run on a MatrixRunner thread pool (--threads=N); per-cell
/// metrics land in BENCH_table3_m88100.json.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "table3_m88100");
  if (!Args.Ok)
    return 2;

  TargetMachine TM = makeM88100Target();
  double Clock = nominalClockHz("m88100");
  SetupOptions SO = paperSetup();
  auto Configs = paperConfigs();

  std::vector<CellSpec> Specs;
  for (const std::string &Name : tableWorkloads())
    for (const PipelineConfig &C : Configs)
      Specs.push_back(CellSpec{Name, C.Name, &TM, C.Options, SO, 0});

  BenchReport Report =
      MatrixRunner(toRunnerOptions(Args)).run("table3_m88100", Specs);

  std::printf("Table III: Motorola 88100 (model) execution times and "
              "percent improvement\n");
  std::printf("500x500 images / 250000 elements; seconds at a nominal "
              "%.0f MHz clock\n\n",
              Clock / 1e6);
  std::printf("%-12s %10s %10s %14s %16s %9s %12s %s\n", "Program",
              "cc -O", "vpo -O", "coalesce-lds", "coalesce-lds+sts",
              "%save", "sts-slower?", "ok");
  printRule(100);

  size_t Cell = 0;
  for (const std::string &Name : tableWorkloads()) {
    double Secs[4] = {0, 0, 0, 0};
    bool AllOk = true;
    for (size_t C = 0; C < Configs.size(); ++C, ++Cell) {
      const Measurement &M = Report.Cells[Cell].M;
      Secs[C] = static_cast<double>(M.Cycles) / Clock;
      AllOk &= M.Verified;
    }
    double Save = (Secs[1] - Secs[2]) / Secs[1] * 100.0;
    std::printf("%-12s %10.3f %10.3f %14.3f %16.3f %8.2f%% %12s %s\n",
                Name.c_str(), Secs[0], Secs[1], Secs[2], Secs[3], Save,
                Secs[3] >= Secs[2] ? "yes" : "no", AllOk ? "yes"
                                                         : "MISMATCH");
  }
  std::printf("\n(paper Table III loads-only savings: convolution 17.3, "
              "image add 15.39, image xor 15.64,\n translate 24.46, "
              "eqntott 1.3, mirror 16.64; loads+stores slower than "
              "loads-only throughout)\n");
  return finishReport(Report, Args);
}
