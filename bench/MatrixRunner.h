//===- bench/MatrixRunner.h - parallel evaluation-matrix runner -*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a table's worth of (workload, target, configuration) cells through
/// measureCell on a pool of worker threads. Cells are embarrassingly
/// parallel — each job builds its own Module, Memory arena, and
/// Interpreter — so the only shared state is the read-only TargetMachine
/// each spec points at. Results land in submission order regardless of
/// thread count or scheduling, so the rendered tables and the JSON report
/// are byte-identical between -j1 and -jN
/// (tests/bench/matrix_runner_test.cpp enforces this).
///
/// Every harness built on the runner emits its existing text table on
/// stdout plus a machine-readable BENCH_<name>.json (schema documented at
/// BenchReport::toJson) for CI to archive and gate on.
///
//===----------------------------------------------------------------------===//

#ifndef VPO_BENCH_MATRIXRUNNER_H
#define VPO_BENCH_MATRIXRUNNER_H

#include "BenchUtils.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vpo {
namespace bench {

/// One cell of an evaluation matrix: a workload under a pipeline
/// configuration on a target with a data-layout setup. The workload is
/// named, not held: each worker materializes its own instance so jobs
/// share nothing mutable. The TargetMachine is held by pointer and read
/// concurrently; the harness keeps it alive across run().
struct CellSpec {
  std::string Workload;
  std::string Config; ///< column label, e.g. "vpo -O" or "coalesce-lds"
  const TargetMachine *TM = nullptr;
  CompileOptions Options;
  SetupOptions Setup;
  /// Declare the first StaticParams parameters restrict-like (NoAlias,
  /// KnownAlign = 8) before compiling — the static-analysis ablations.
  unsigned StaticParams = 0;
};

/// A measured cell, in the order the specs were submitted.
struct CellResult {
  std::string Workload;
  std::string Config;
  std::string Target;
  Measurement M;
  double WallSeconds = 0;  ///< wall-clock spent measuring this cell
  double StartSeconds = 0; ///< cell start, relative to the run start
  unsigned Worker = 0;     ///< pool lane that measured this cell
  /// NDJSON remark lines from this cell's compile (empty unless
  /// RunnerOptions::CollectRemarks). Collected per cell and attached by
  /// submission index, so content is thread-count-independent.
  std::string Remarks;
};

/// Everything a harness needs to render its table and write its JSON.
struct BenchReport {
  std::string Name; ///< harness name, e.g. "table2_alpha"
  unsigned Threads = 1;
  bool Predecode = true;
  /// Cells cross-checked the cycle-accurate result against the functional
  /// tiered engine (MeasureOptions::JIT).
  bool JIT = true;
  double TotalWallSeconds = 0;
  std::vector<CellResult> Cells;

  bool allVerified() const;

  /// \returns the result for (\p Workload, \p Config), or nullptr.
  const CellResult *find(const std::string &Workload,
                         const std::string &Config) const;

  /// Serializes the report:
  ///
  /// \code
  ///   {
  ///     "name": "table2_alpha",
  ///     "threads": 4,                       // only if IncludeTiming
  ///     "predecode": true,
  ///     "jit": true,
  ///     "total_wall_seconds": 1.234,        // only if IncludeTiming
  ///     "cells": [
  ///       { "workload": "convolution", "config": "cc -O",
  ///         "target": "alpha",
  ///         "cycles": 123, "instructions": 456, "memrefs": 78,
  ///         "cache_misses": 9, "verified": true,
  ///         "wall_seconds": 0.01 }          // only if IncludeTiming
  ///     ]
  ///   }
  /// \endcode
  ///
  /// \p IncludeTiming=false drops the wall-clock fields (and the thread
  /// count, which is also run-dependent) so determinism tests can compare
  /// the output byte-for-byte across thread counts.
  std::string toJson(bool IncludeTiming = true) const;

  /// Writes toJson() to \p Path. \returns false on I/O failure.
  bool writeFile(const std::string &Path, bool IncludeTiming = true) const;
};

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned Threads = 0;
  bool Predecode = true;
  /// Cross-check every cell against the functional tiered engine; see
  /// MeasureOptions::JIT. The harnesses' --no-jit clears it.
  bool JIT = true;
  /// Instruction budget per simulated run (0 = interpreter default); see
  /// MeasureOptions::MaxInsts.
  uint64_t MaxInsts = 0;
  /// Collect each cell's optimization remarks into CellResult::Remarks.
  bool CollectRemarks = false;
  /// After the run, write one remark file per cell into this directory
  /// (created if missing): <dir>/cell-NNN.ndjson, first line a cell
  /// descriptor, then the remark stream. Implies CollectRemarks. Files
  /// are written post-join in submission order, so their names and
  /// contents are identical at any thread count.
  std::string RemarksDir;
  /// Time each pipeline pass (Measurement::Passes) for the trace export.
  bool ProfilePasses = false;
  /// Simulate every cell under the register-pressure cycle model; see
  /// MeasureOptions::ModelRegPressure.
  bool ModelRegPressure = false;
};

/// Runs cells on a thread pool.
class MatrixRunner {
public:
  explicit MatrixRunner(RunnerOptions Opts = RunnerOptions()) : Opts(Opts) {}

  /// Measures every cell. Blocks until all are done; Cells[i] of the
  /// result corresponds to Specs[i].
  BenchReport run(const std::string &Name,
                  const std::vector<CellSpec> &Specs) const;

private:
  RunnerOptions Opts;
};

/// Builds a Chrome trace-event file ({"traceEvents": [...]}, load with
/// chrome://tracing or Perfetto) from a finished report: one complete "X"
/// event per cell on its worker's lane, with nested per-pass events when
/// pass profiles were collected. \p Deterministic replaces wall-clock data
/// with logical timestamps derived from submission order (tid 0, fixed
/// durations) so the serialized trace is byte-identical at any thread
/// count — the mode the schema tests diff.
TraceFile buildBenchTrace(const BenchReport &Report,
                          bool Deterministic = false);

/// Writes the per-cell remark files described at
/// RunnerOptions::RemarksDir. \returns false on I/O failure.
bool writeRemarkFiles(const BenchReport &Report, const std::string &Dir);

/// Command-line options shared by every table/ablation harness.
struct BenchArgs {
  unsigned Threads = 0;  ///< --threads=N (0 = all cores)
  bool Predecode = true; ///< --no-predecode
  bool JIT = true;       ///< --no-jit (skip the tiered-engine cross-check)
  bool WriteJson = true; ///< --no-json
  std::string JsonPath;  ///< --json=PATH (default BENCH_<name>.json)
  uint64_t MaxInsts = 0; ///< --max-insts=N (0 = interpreter default)
  std::string RemarksDir; ///< --remarks-dir=DIR (empty = off)
  std::string TracePath;  ///< --trace=PATH (empty = off)
  bool Ok = true;        ///< false: unknown argument (usage printed)
};

/// Parses argv for the standard harness flags. \p Name supplies the
/// default JSON path, BENCH_<name>.json in the working directory.
BenchArgs parseBenchArgs(int Argc, char **Argv, const std::string &Name);

RunnerOptions toRunnerOptions(const BenchArgs &Args);

/// Writes the JSON report if requested; prints where it landed. \returns
/// 0 if all cells verified, 1 otherwise (the harness exit code).
int finishReport(const BenchReport &Report, const BenchArgs &Args);

} // namespace bench
} // namespace vpo

#endif // VPO_BENCH_MATRIXRUNNER_H
