//===- bench/ablation_schedule_quality.cpp - schedule-quality audit -*- C++ -===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// How close to optimal are the schedules, and what does register pressure
/// cost? Runs the 8-workload x 3-target matrix under the register-pressure
/// cycle model with three compilation variants:
///
///   heuristic   i-cache-only unroll-factor selection (PressureClamp off)
///   clamped     pressure-aware clamp on (the default pipeline)
///   exact       clamp + the branch-and-bound exact scheduler replacing
///               list schedules where the budget allows
///
/// plus a forced unroll-factor-16 pair (heuristic-u16 / clamped-u16) that
/// drives register pressure high enough for the clamp to matter even on
/// the wide register files.
///
/// From the per-cell remark streams it derives the exact-scheduler audit
/// summary over the Fig. 3 profitability verdicts: % audited within
/// budget, % confirmed optimal, the optimality-gap histogram, and flipped
/// verdicts. The harness gates itself (non-zero exit) on:
///
///   1. every cell verified against the golden implementation;
///   2. >= 1 cell where the pressure clamp strictly beats the i-cache-only
///      heuristic in simulated cycles;
///   3. >= 90% of Fig. 3 verdicts audited within the default budget;
///   4. the exact scheduler NEVER reporting a longer schedule than the
///      list scheduler;
///   5. the clamp never regressing any cell's cycles vs the unclamped
///      baseline.
///
/// Emits BENCH_schedule_quality.json (cells + audit summary + gates).
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace vpo;
using namespace vpo::bench;

namespace {

/// Pulls the value of \p Key (a remark field or args entry) out of one
/// NDJSON remark line. Remark keys and values never contain escapes, so a
/// plain substring scan is exact.
std::string jsonField(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":\"";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  size_t Begin = At + Needle.size();
  size_t End = Line.find('"', Begin);
  return End == std::string::npos ? "" : Line.substr(Begin, End - Begin);
}

uint64_t jsonNum(const std::string &Line, const std::string &Key) {
  std::string V = jsonField(Line, Key);
  return V.empty() ? 0 : std::strtoull(V.c_str(), nullptr, 10);
}

template <typename Fn> void forEachLine(const std::string &Text, Fn F) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    if (End > Pos)
      F(Text.substr(Pos, End - Pos));
    Pos = End + 1;
  }
}

struct Variant {
  const char *Name;
  bool Clamp;
  bool Exact;
  unsigned Factor;
};

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "schedule_quality");
  if (!Args.Ok)
    return 2;

  const Variant Variants[] = {
      {"heuristic", false, false, 0},  {"clamped", true, false, 0},
      {"exact", true, true, 0},        {"heuristic-u16", false, false, 16},
      {"clamped-u16", true, false, 16},
  };
  const size_t NVar = sizeof(Variants) / sizeof(Variants[0]);

  std::vector<std::string> Workloads = tableWorkloads();
  Workloads.push_back("dotproduct");
  TargetMachine Targets[3] = {makeAlphaTarget(), makeM88100Target(),
                              makeM68030Target()};

  SetupOptions SO = paperSetup();
  std::vector<CellSpec> Specs;
  for (const std::string &W : Workloads)
    for (TargetMachine &TM : Targets)
      for (const Variant &V : Variants) {
        CompileOptions CO;
        CO.Mode = CoalesceMode::LoadsAndStores;
        CO.UnrollFactor = V.Factor;
        CO.PressureClamp = V.Clamp;
        CO.ExactSched = V.Exact;
        Specs.push_back(CellSpec{W, V.Name, &TM, CO, SO, 0});
      }

  RunnerOptions RO = toRunnerOptions(Args);
  RO.CollectRemarks = true;
  // The whole matrix runs under the spill-charging cycle model: without
  // it over-unrolling a small register file costs nothing and the clamp
  // has nothing to win.
  RO.ModelRegPressure = true;
  BenchReport Report = MatrixRunner(RO).run("schedule_quality", Specs);

  // --- Aggregate the audit telemetry across every cell. -----------------
  uint64_t Verdicts = 0, Audited = 0, ConfirmedOptimal = 0, Flipped = 0;
  uint64_t ExactLonger = 0;
  std::map<uint64_t, uint64_t> GapHistogram; // (list - exact) -> count
  for (const CellResult &Cell : Report.Cells) {
    forEachLine(Cell.Remarks, [&](const std::string &Line) {
      const std::string Reason = jsonField(Line, "reason");
      if (Reason == "sched-audit") {
        ++Verdicts;
        const std::string Status = jsonField(Line, "status");
        if (Status != "budget-exceeded")
          ++Audited;
        if (Status == "confirmed-optimal")
          ++ConfirmedOptimal;
        if (Status == "flipped")
          ++Flipped;
        if (jsonNum(Line, "exact-orig") > jsonNum(Line, "list-orig") ||
            jsonNum(Line, "exact-coalesced") >
                jsonNum(Line, "list-coalesced"))
          ++ExactLonger;
      } else if (Reason == "sched-optimality-gap") {
        uint64_t List = jsonNum(Line, "list-cycles");
        uint64_t Exact = jsonNum(Line, "exact-cycles");
        if (Exact >= List)
          ++ExactLonger;
        else
          ++GapHistogram[List - Exact];
      } else if (Reason == "exact-schedule") {
        if (jsonNum(Line, "exact-cycles") > jsonNum(Line, "list-cycles"))
          ++ExactLonger;
      }
    });
  }
  double AuditedPct = Verdicts ? 100.0 * double(Audited) / double(Verdicts)
                               : 100.0;
  double OptimalPct = Audited
                          ? 100.0 * double(ConfirmedOptimal) / double(Audited)
                          : 0.0;

  // --- Render the cycles table and evaluate the clamp gates. ------------
  std::printf("Schedule quality: pressure-aware unrolling + exact-scheduler "
              "audit\n");
  std::printf("(register-pressure cycle model on; cycles in millions)\n\n");
  std::printf("%-12s %-8s %12s %12s %12s %14s %14s %s\n", "workload",
              "target", "heuristic", "clamped", "exact", "heuristic-u16",
              "clamped-u16", "ok");
  printRule(104);

  unsigned ClampWins = 0, ClampRegressions = 0;
  size_t Cell = 0;
  for (const std::string &W : Workloads)
    for (TargetMachine &TM : Targets) {
      uint64_t Cyc[NVar];
      bool Ok = true;
      for (size_t V = 0; V < NVar; ++V, ++Cell) {
        Cyc[V] = Report.Cells[Cell].M.Cycles;
        Ok &= Report.Cells[Cell].M.Verified;
      }
      // Pairs (heuristic, clamped): indices (0,1) and (3,4).
      for (size_t P : {size_t(0), size_t(3)}) {
        if (Cyc[P + 1] < Cyc[P])
          ++ClampWins;
        if (Cyc[P + 1] > Cyc[P])
          ++ClampRegressions;
      }
      std::printf("%-12s %-8s %12.3f %12.3f %12.3f %14.3f %14.3f %s\n",
                  W.c_str(), TM.name().c_str(), double(Cyc[0]) / 1e6,
                  double(Cyc[1]) / 1e6, double(Cyc[2]) / 1e6,
                  double(Cyc[3]) / 1e6, double(Cyc[4]) / 1e6,
                  Ok ? "yes" : "MISMATCH");
    }

  std::printf("\nFig. 3 audit: %llu verdicts, %llu audited within budget "
              "(%.1f%%), %.1f%% of audited confirmed optimal, %llu flipped\n",
              (unsigned long long)Verdicts, (unsigned long long)Audited,
              AuditedPct, OptimalPct, (unsigned long long)Flipped);
  std::printf("Optimality-gap histogram (cycles saved by exact "
              "scheduling):");
  if (GapHistogram.empty())
    std::printf(" none\n");
  else {
    for (const auto &KV : GapHistogram)
      std::printf(" %llu:%llu", (unsigned long long)KV.first,
                  (unsigned long long)KV.second);
    std::printf("\n");
  }
  std::printf("Pressure clamp: %u winning cell pair%s, %u regression%s\n",
              ClampWins, ClampWins == 1 ? "" : "s", ClampRegressions,
              ClampRegressions == 1 ? "" : "s");

  // --- Gates. -----------------------------------------------------------
  bool GateVerified = Report.allVerified();
  bool GateClampWin = ClampWins >= 1;
  bool GateAudited = AuditedPct >= 90.0;
  bool GateNeverLonger = ExactLonger == 0;
  bool GateNoRegression = ClampRegressions == 0;
  auto Gate = [](bool Ok) { return Ok ? "ok" : "FAIL"; };
  std::printf("\nGates: verified=%s clamp-win=%s audited>=90%%=%s "
              "exact-never-longer=%s clamp-never-regresses=%s\n",
              Gate(GateVerified), Gate(GateClampWin), Gate(GateAudited),
              Gate(GateNeverLonger), Gate(GateNoRegression));

  // --- JSON report (cells + audit summary + gate verdicts). -------------
  if (Args.WriteJson) {
    std::string J = "{\"name\":\"schedule_quality\",\"cells\":[";
    for (size_t I = 0; I < Report.Cells.size(); ++I) {
      const CellResult &C = Report.Cells[I];
      if (I)
        J += ',';
      J += "{\"workload\":\"" + C.Workload + "\",\"config\":\"" + C.Config +
           "\",\"target\":\"" + C.Target +
           "\",\"cycles\":" + std::to_string(C.M.Cycles) +
           ",\"verified\":" + (C.M.Verified ? "true" : "false") + "}";
    }
    J += "],\"audit\":{\"verdicts\":" + std::to_string(Verdicts) +
         ",\"audited\":" + std::to_string(Audited) +
         ",\"audited_pct\":" + std::to_string(AuditedPct) +
         ",\"confirmed_optimal\":" + std::to_string(ConfirmedOptimal) +
         ",\"flipped\":" + std::to_string(Flipped) + "},";
    J += "\"gap_histogram\":{";
    bool First = true;
    for (const auto &KV : GapHistogram) {
      if (!First)
        J += ',';
      First = false;
      J += "\"" + std::to_string(KV.first) +
           "\":" + std::to_string(KV.second);
    }
    J += "},\"gates\":{\"all_verified\":" +
         std::string(GateVerified ? "true" : "false") +
         ",\"clamp_win_pairs\":" + std::to_string(ClampWins) +
         ",\"audit_coverage_ok\":" +
         std::string(GateAudited ? "true" : "false") +
         ",\"exact_never_longer\":" +
         std::string(GateNeverLonger ? "true" : "false") +
         ",\"clamp_never_regresses\":" +
         std::string(GateNoRegression ? "true" : "false") + "}}\n";
    std::FILE *Out = std::fopen(Args.JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "failed to write %s\n", Args.JsonPath.c_str());
      return 1;
    }
    std::fwrite(J.data(), 1, J.size(), Out);
    std::fclose(Out);
    std::printf("\n[%u thread%s, %.2fs wall; results in %s]\n",
                Report.Threads, Report.Threads == 1 ? "" : "s",
                Report.TotalWallSeconds, Args.JsonPath.c_str());
  }

  return (GateVerified && GateClampWin && GateAudited && GateNeverLonger &&
          GateNoRegression)
             ? 0
             : 1;
}
