//===- bench/ablation_companions.cpp - pass composition ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's section 1.1 surveys the companion memory-bandwidth
/// techniques — scalar replacement / register blocking [Cal90] and
/// recurrence optimization [Beni91] — and notes that memory access
/// coalescing "can be used with the techniques mentioned previously".
/// This ablation measures the composition on the convolution kernel
/// (scalar replacement's flagship: 9 pixel loads per output become 3)
/// with `restrict` parameters, on the Alpha model.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstring>

using namespace vpo;
using namespace vpo::bench;

namespace {

Measurement measureConv(bool ScalarReplace, CoalesceMode Mode,
                        const SetupOptions &SO, const TargetMachine &TM) {
  auto W = makeWorkloadByName("convolution");
  Measurement M;
  Module Mod;
  Function *F = W->build(Mod);
  // restrict on the image/output/coefficient pointers.
  for (size_t P = 0; P < 3; ++P) {
    F->paramInfo(P).NoAlias = true;
    F->paramInfo(P).KnownAlign = 8;
  }
  Memory Mem;
  SetupResult S = W->setup(Mem, SO);
  std::vector<uint8_t> Golden(Mem.data(), Mem.data() + Mem.size());
  int64_t ExpectRet = W->golden(Golden.data(), SO, S);

  CompileOptions CO;
  CO.Mode = Mode;
  CO.Unroll = true;
  CO.Schedule = true;
  CO.ScalarReplace = ScalarReplace;
  CompileReport Report = compileFunction(*F, TM, CO);
  M.Coalesce = Report.Coalesce;

  Interpreter Interp(TM, Mem);
  RunResult R = Interp.run(*F, S.Args);
  M.Cycles = R.Cycles;
  M.MemRefs = R.MemRefs();
  M.Verified = R.ok() && R.ReturnValue == ExpectRet &&
               std::memcmp(Mem.data(), Golden.data(), Mem.size()) == 0;
  return M;
}

} // namespace

int main() {
  SetupOptions SO = paperSetup();
  TargetMachine TM = makeAlphaTarget();

  std::printf("Ablation: composing the section 1.1 companion techniques "
              "(convolution, restrict, Alpha model)\n\n");
  std::printf("%-34s %12s %12s %10s %s\n", "configuration", "Mcycles",
              "memrefs", "%vs-base", "ok");
  printRule(78);

  struct Cfg {
    const char *Name;
    bool SR;
    CoalesceMode Mode;
  } Cfgs[] = {
      {"baseline (unrolled, scheduled)", false, CoalesceMode::None},
      {"+ scalar replacement", true, CoalesceMode::None},
      {"+ coalescing", false, CoalesceMode::LoadsAndStores},
      {"+ scalar replacement + coalescing", true,
       CoalesceMode::LoadsAndStores},
  };

  double Base = 0;
  for (const Cfg &C : Cfgs) {
    Measurement M = measureConv(C.SR, C.Mode, SO, TM);
    double Mcyc = double(M.Cycles) / 1e6;
    if (Base == 0)
      Base = Mcyc;
    std::printf("%-34s %12.3f %12llu %9.2f%% %s\n", C.Name, Mcyc,
                (unsigned long long)M.MemRefs,
                (Base - Mcyc) / Base * 100.0,
                M.Verified ? "yes" : "MISMATCH");
  }
  std::printf("\n(scalar replacement removes the reloaded taps, "
              "coalescing widens what remains; the\n combination beats "
              "either alone — the paper's 'can be used with the "
              "techniques\n mentioned previously', measured)\n");
  return 0;
}
