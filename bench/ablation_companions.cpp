//===- bench/ablation_companions.cpp - pass composition ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's section 1.1 surveys the companion memory-bandwidth
/// techniques — scalar replacement / register blocking [Cal90] and
/// recurrence optimization [Beni91] — and notes that memory access
/// coalescing "can be used with the techniques mentioned previously".
/// This ablation measures the composition on the convolution kernel
/// (scalar replacement's flagship: 9 pixel loads per output become 3)
/// with `restrict` parameters, on the Alpha model.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "ablation_companions");
  if (!Args.Ok)
    return 2;

  SetupOptions SO = paperSetup();
  TargetMachine TM = makeAlphaTarget();

  struct Cfg {
    const char *Name;
    bool SR;
    CoalesceMode Mode;
  } Cfgs[] = {
      {"baseline (unrolled, scheduled)", false, CoalesceMode::None},
      {"+ scalar replacement", true, CoalesceMode::None},
      {"+ coalescing", false, CoalesceMode::LoadsAndStores},
      {"+ scalar replacement + coalescing", true,
       CoalesceMode::LoadsAndStores},
  };

  std::vector<CellSpec> Specs;
  for (const Cfg &C : Cfgs) {
    CompileOptions CO;
    CO.Mode = C.Mode;
    CO.Unroll = true;
    CO.Schedule = true;
    CO.ScalarReplace = C.SR;
    // restrict on the image/output/coefficient pointers.
    Specs.push_back(CellSpec{"convolution", C.Name, &TM, CO, SO, 3});
  }

  BenchReport Report =
      MatrixRunner(toRunnerOptions(Args)).run("ablation_companions", Specs);

  std::printf("Ablation: composing the section 1.1 companion techniques "
              "(convolution, restrict, Alpha model)\n\n");
  std::printf("%-34s %12s %12s %10s %s\n", "configuration", "Mcycles",
              "memrefs", "%vs-base", "ok");
  printRule(78);

  double Base = 0;
  for (const CellResult &Cell : Report.Cells) {
    const Measurement &M = Cell.M;
    double Mcyc = double(M.Cycles) / 1e6;
    if (Base == 0)
      Base = Mcyc;
    std::printf("%-34s %12.3f %12llu %9.2f%% %s\n", Cell.Config.c_str(),
                Mcyc, (unsigned long long)M.MemRefs,
                (Base - Mcyc) / Base * 100.0,
                M.Verified ? "yes" : "MISMATCH");
  }
  std::printf("\n(scalar replacement removes the reloaded taps, "
              "coalescing widens what remains; the\n combination beats "
              "either alone — the paper's 'can be used with the "
              "techniques\n mentioned previously', measured)\n");
  return finishReport(Report, Args);
}
