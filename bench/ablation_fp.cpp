//===- bench/ablation_fp.cpp - wide-bus FP coalescing -----------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// The paper generalizes the authors' earlier wide-bus floating-point work
/// [Alex93]: pairs of single-precision loads coalesce into one 64-bit bus
/// transaction. Livermore loop 5 exercises this: the y and z streams
/// coalesce; the x stream cannot (its recurrence puts a load of x[i-1]
/// between the stores of x[i] — a Fig. 4 hazard).
///
/// On a machine whose memory port accepts a reference every cycle the
/// transformation does not pay (the profitability test refuses it); on a
/// bus-limited variant it does.
///
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

using namespace vpo;
using namespace vpo::bench;

namespace {

TargetMachine makeBusLimitedAlpha() {
  TargetMachine Base = makeAlphaTarget();
  TargetMachine::Spec S = Base.spec();
  S.Name = "alpha-buslimited";
  S.MemIssueCycles = 5; // one bus transaction every fifth cycle
  S.FPLatency = 2;      // fast FUs relative to the bus
  return TargetMachine(std::move(S));
}

} // namespace

int main(int argc, char **argv) {
  BenchArgs Args = parseBenchArgs(argc, argv, "ablation_fp");
  if (!Args.Ok)
    return 2;

  SetupOptions SO;
  SO.N = 250000;
  // The kernel processes elements 1..n-1, so skew the allocations by one
  // element: the hot streams (y[i], z[i] from i = 1) then start on a
  // 64-bit bus boundary and the aligned fast path is reachable.
  SO.BaseAlign = 8;
  SO.Skew = 4;

  TargetMachine Targets[2] = {makeAlphaTarget(), makeBusLimitedAlpha()};
  struct Cfg {
    const char *Name;
    bool Profit;
    bool Recurrence;
  } Cfgs[] = {
      {"guarded", true, false},
      {"forced", false, false},
      {"g+recur", true, true},
  };

  std::vector<CellSpec> Specs;
  for (int BusLimited = 0; BusLimited <= 1; ++BusLimited) {
    for (const Cfg &C : Cfgs) {
      CompileOptions Base;
      Base.Mode = CoalesceMode::None;
      Base.Unroll = true;
      Base.Schedule = true;
      CompileOptions Coal = Base;
      Coal.Mode = CoalesceMode::LoadsAndStores;
      Coal.RequireProfitability = C.Profit;
      Coal.OptimizeRecurrences = C.Recurrence;
      std::string Label = C.Name;
      Specs.push_back(CellSpec{"livermore5", Label + " base",
                               &Targets[BusLimited], Base, SO, 0});
      Specs.push_back(CellSpec{"livermore5", Label + " coal",
                               &Targets[BusLimited], Coal, SO, 0});
    }
  }

  BenchReport Report =
      MatrixRunner(toRunnerOptions(Args)).run("ablation_fp", Specs);

  std::printf("Ablation: wide-bus floating-point coalescing "
              "(livermore5, f32 streams)\n\n");
  std::printf("%-18s %-8s %14s %14s %10s %10s %10s %s\n", "target",
              "profit", "vpo -O Mcyc", "coal Mcyc", "%save", "loadruns",
              "storeruns", "ok");
  printRule(104);

  size_t Cell = 0;
  for (int BusLimited = 0; BusLimited <= 1; ++BusLimited) {
    for (const Cfg &C : Cfgs) {
      const Measurement &MB = Report.Cells[Cell++].M;
      const Measurement &MC = Report.Cells[Cell++].M;
      double Save = (double(MB.Cycles) - double(MC.Cycles)) /
                    double(MB.Cycles) * 100.0;
      std::printf("%-18s %-8s %14.3f %14.3f %9.2f%% %10u %10u %s\n",
                  Targets[BusLimited].name().c_str(), C.Name,
                  double(MB.Cycles) / 1e6, double(MC.Cycles) / 1e6, Save,
                  MC.Coalesce.LoadRunsCoalesced,
                  MC.Coalesce.StoreRunsCoalesced,
                  MB.Verified && MC.Verified ? "yes" : "MISMATCH");
    }
  }
  std::printf(
      "\n(the x stream cannot coalesce on its own — its recurrence is a "
      "Fig. 4 hazard — so storeruns\n stays 0 until recurrence "
      "optimization [Beni91] carries x[i-1] in a register: that removes\n "
      "the hazard, the x store run coalesces too, and the bus-limited "
      "machine gains another ~10%%)\n");
  return finishReport(Report, Args);
}
