//===- bench/MatrixRunner.cpp ---------------------------------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//

#include "MatrixRunner.h"

#include "support/Remark.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

using namespace vpo;
using namespace vpo::bench;

bool BenchReport::allVerified() const {
  for (const CellResult &C : Cells)
    if (!C.M.Verified)
      return false;
  return true;
}

const CellResult *BenchReport::find(const std::string &Workload,
                                    const std::string &Config) const {
  for (const CellResult &C : Cells)
    if (C.Workload == Workload && C.Config == Config)
      return &C;
  return nullptr;
}

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  Out += '"';
}

std::string formatSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", S);
  return Buf;
}

} // namespace

std::string BenchReport::toJson(bool IncludeTiming) const {
  std::string J;
  J += "{\n  \"name\": ";
  appendEscaped(J, Name);
  if (IncludeTiming)
    J += ",\n  \"threads\": " + std::to_string(Threads);
  J += ",\n  \"predecode\": ";
  J += Predecode ? "true" : "false";
  J += ",\n  \"jit\": ";
  J += JIT ? "true" : "false";
  if (IncludeTiming)
    J += ",\n  \"total_wall_seconds\": " + formatSeconds(TotalWallSeconds);
  J += ",\n  \"cells\": [";
  for (size_t I = 0; I < Cells.size(); ++I) {
    const CellResult &C = Cells[I];
    J += I ? ",\n    {" : "\n    {";
    J += " \"workload\": ";
    appendEscaped(J, C.Workload);
    J += ", \"config\": ";
    appendEscaped(J, C.Config);
    J += ", \"target\": ";
    appendEscaped(J, C.Target);
    J += ", \"cycles\": " + std::to_string(C.M.Cycles);
    J += ", \"instructions\": " + std::to_string(C.M.Instructions);
    J += ", \"memrefs\": " + std::to_string(C.M.MemRefs);
    J += ", \"cache_misses\": " + std::to_string(C.M.CacheMisses);
    J += ", \"verified\": ";
    J += C.M.Verified ? "true" : "false";
    if (IncludeTiming)
      J += ", \"wall_seconds\": " + formatSeconds(C.WallSeconds);
    J += " }";
  }
  J += "\n  ]\n}\n";
  return J;
}

bool BenchReport::writeFile(const std::string &Path,
                            bool IncludeTiming) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string J = toJson(IncludeTiming);
  bool Ok = std::fwrite(J.data(), 1, J.size(), F) == J.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

BenchReport MatrixRunner::run(const std::string &Name,
                              const std::vector<CellSpec> &Specs) const {
  BenchReport Report;
  Report.Name = Name;
  Report.Predecode = Opts.Predecode;
  Report.JIT = Opts.JIT;
  Report.Cells.resize(Specs.size());

  unsigned Threads = Opts.Threads;
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  if (Specs.size() < Threads)
    Threads = Specs.empty() ? 1 : static_cast<unsigned>(Specs.size());
  Report.Threads = Threads;

  bool CollectRemarks = Opts.CollectRemarks || !Opts.RemarksDir.empty();

  // Work queue: an atomic cursor over the spec list. Results are written
  // by index, so completion order never shows in the output.
  auto Start = std::chrono::steady_clock::now();
  std::atomic<size_t> Next{0};
  auto Worker = [&](unsigned WorkerId) {
    while (true) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Specs.size())
        return;
      const CellSpec &Spec = Specs[I];
      assert(Spec.TM && "cell spec without a target");
      auto T0 = std::chrono::steady_clock::now();
      auto W = makeWorkloadByName(Spec.Workload);
      MeasureOptions MO;
      MO.Predecode = Opts.Predecode;
      MO.JIT = Opts.JIT;
      MO.StaticParams = Spec.StaticParams;
      MO.MaxInsts = Opts.MaxInsts;
      MO.ProfilePasses = Opts.ProfilePasses;
      MO.ModelRegPressure = Opts.ModelRegPressure;
      CollectingRemarkSink Sink;
      if (CollectRemarks)
        MO.Remarks = &Sink;
      CellResult &Out = Report.Cells[I];
      Out.Workload = Spec.Workload;
      Out.Config = Spec.Config;
      Out.Target = Spec.TM->name();
      Out.Worker = WorkerId;
      Out.StartSeconds =
          std::chrono::duration<double>(T0 - Start).count();
      Out.M = measureCell(*W, *Spec.TM, Spec.Options, Spec.Setup, MO);
      if (CollectRemarks)
        Out.Remarks = Sink.toJsonLines();
      Out.WallSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        T0)
              .count();
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads - 1);
  for (unsigned T = 1; T < Threads; ++T)
    Pool.emplace_back(Worker, T);
  Worker(0); // the calling thread is pool member zero
  for (std::thread &T : Pool)
    T.join();
  Report.TotalWallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Remark files are written after the join, walking cells in submission
  // order, so names and contents never depend on the thread count.
  if (!Opts.RemarksDir.empty() &&
      !writeRemarkFiles(Report, Opts.RemarksDir))
    std::fprintf(stderr, "warning: failed to write remark files to %s\n",
                 Opts.RemarksDir.c_str());
  return Report;
}

bool vpo::bench::writeRemarkFiles(const BenchReport &Report,
                                  const std::string &Dir) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return false;
  for (size_t I = 0; I < Report.Cells.size(); ++I) {
    const CellResult &C = Report.Cells[I];
    char Name[32];
    std::snprintf(Name, sizeof(Name), "cell-%03zu.ndjson", I);
    std::string Path = Dir + "/" + Name;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    // First line: a descriptor tying the file back to its matrix cell,
    // with the cell's coalesce counters; then the remark stream.
    std::string Desc = "{\"cell\":" + std::to_string(I);
    Desc += ",\"workload\":";
    appendJsonString(Desc, C.Workload);
    Desc += ",\"config\":";
    appendJsonString(Desc, C.Config);
    Desc += ",\"target\":";
    appendJsonString(Desc, C.Target);
    Desc += ",\"stats\":" + C.M.Coalesce.toJson() + "}\n";
    bool Ok = std::fwrite(Desc.data(), 1, Desc.size(), F) == Desc.size();
    Ok &= std::fwrite(C.Remarks.data(), 1, C.Remarks.size(), F) ==
          C.Remarks.size();
    Ok &= std::fclose(F) == 0;
    if (!Ok)
      return false;
  }
  return true;
}

TraceFile vpo::bench::buildBenchTrace(const BenchReport &Report,
                                      bool Deterministic) {
  TraceFile T;
  for (size_t I = 0; I < Report.Cells.size(); ++I) {
    const CellResult &C = Report.Cells[I];
    // Deterministic mode: logical time, one lane. Each cell occupies a
    // fixed [I*1000, I*1000+900) microsecond slot with its passes as
    // unit-length events inside it — same bytes at any --threads.
    uint64_t CellTs = Deterministic
                          ? static_cast<uint64_t>(I) * 1000
                          : static_cast<uint64_t>(C.StartSeconds * 1e6);
    uint64_t CellDur =
        Deterministic ? 900
                      : static_cast<uint64_t>(C.WallSeconds * 1e6);
    TraceEvent E;
    E.Name = C.Workload + "/" + C.Config;
    E.Cat = "cell";
    E.TsMicros = CellTs;
    E.DurMicros = CellDur;
    E.Tid = Deterministic ? 0 : C.Worker + 1;
    E.Args.emplace_back("workload", C.Workload);
    E.Args.emplace_back("config", C.Config);
    E.Args.emplace_back("target", C.Target);
    E.Args.emplace_back("verified", C.M.Verified ? "true" : "false");
    T.add(std::move(E));

    uint64_t PassTs = CellTs;
    for (size_t PI = 0; PI < C.M.Passes.size(); ++PI) {
      const CompileReport::PassProfile &P = C.M.Passes[PI];
      TraceEvent PE;
      PE.Name = P.Pass;
      PE.Cat = "pass";
      PE.TsMicros = Deterministic ? CellTs + PI : PassTs;
      PE.DurMicros =
          Deterministic ? 1 : static_cast<uint64_t>(P.Seconds * 1e6);
      PE.Tid = Deterministic ? 0 : C.Worker + 1;
      PE.Args.emplace_back("kept", P.Kept ? "true" : "false");
      T.add(std::move(PE));
      PassTs += PE.DurMicros;
    }
  }
  return T;
}

BenchArgs vpo::bench::parseBenchArgs(int Argc, char **Argv,
                                     const std::string &Name) {
  BenchArgs Args;
  Args.JsonPath = "BENCH_" + Name + ".json";
  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    if (A.rfind("--threads=", 0) == 0) {
      Args.Threads = static_cast<unsigned>(
          std::strtoul(A.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (A == "--no-predecode") {
      Args.Predecode = false;
    } else if (A == "--no-jit") {
      Args.JIT = false;
    } else if (A == "--no-json") {
      Args.WriteJson = false;
    } else if (A.rfind("--json=", 0) == 0) {
      Args.JsonPath = A.substr(std::strlen("--json="));
    } else if (A == "--json") {
      // default path already set
    } else if (A.rfind("--max-insts=", 0) == 0) {
      Args.MaxInsts =
          std::strtoull(A.c_str() + std::strlen("--max-insts="), nullptr, 10);
    } else if (A.rfind("--remarks-dir=", 0) == 0) {
      Args.RemarksDir = A.substr(std::strlen("--remarks-dir="));
    } else if (A.rfind("--trace=", 0) == 0) {
      Args.TracePath = A.substr(std::strlen("--trace="));
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\n"
                   "usage: %s [--threads=N] [--no-predecode] [--no-jit] "
                   "[--json[=PATH]] [--no-json] [--max-insts=N] "
                   "[--remarks-dir=DIR] [--trace=PATH]\n",
                   A.c_str(), Argv[0]);
      Args.Ok = false;
      return Args;
    }
  }
  return Args;
}

RunnerOptions vpo::bench::toRunnerOptions(const BenchArgs &Args) {
  RunnerOptions RO;
  RO.Threads = Args.Threads;
  RO.Predecode = Args.Predecode;
  RO.JIT = Args.JIT;
  RO.MaxInsts = Args.MaxInsts;
  RO.RemarksDir = Args.RemarksDir;
  // Pass timing feeds the trace; without a trace request it stays off so
  // the run does no extra clock reads.
  RO.ProfilePasses = !Args.TracePath.empty();
  return RO;
}

int vpo::bench::finishReport(const BenchReport &Report,
                             const BenchArgs &Args) {
  if (!Args.TracePath.empty()) {
    if (!buildBenchTrace(Report).writeFile(Args.TracePath)) {
      std::fprintf(stderr, "failed to write %s\n", Args.TracePath.c_str());
      return 1;
    }
    std::printf("[trace in %s]\n", Args.TracePath.c_str());
  }
  if (!Args.RemarksDir.empty())
    std::printf("[remarks in %s/]\n", Args.RemarksDir.c_str());
  if (Args.WriteJson) {
    if (!Report.writeFile(Args.JsonPath)) {
      std::fprintf(stderr, "failed to write %s\n", Args.JsonPath.c_str());
      return 1;
    }
    std::printf("\n[%u thread%s, %.2fs wall; results in %s]\n",
                Report.Threads, Report.Threads == 1 ? "" : "s",
                Report.TotalWallSeconds, Args.JsonPath.c_str());
  } else {
    std::printf("\n[%u thread%s, %.2fs wall]\n", Report.Threads,
                Report.Threads == 1 ? "" : "s", Report.TotalWallSeconds);
  }
  return Report.allVerified() ? 0 : 1;
}
