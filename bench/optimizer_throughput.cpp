//===- bench/optimizer_throughput.cpp - pass throughput ---------*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks of the library itself: how fast the
/// analyses and the coalescing transformation run over the benchmark
/// kernels. Not a paper artifact — this measures the reproduction's code,
/// the way a downstream compiler integrator would.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/Snapshot.h"
#include "sched/ListScheduler.h"
#include "sim/Predecode.h"
#include "support/Remark.h"

#include <benchmark/benchmark.h>

using namespace vpo;
using namespace vpo::bench;

namespace {

void BM_BuildKernel(benchmark::State &State, const char *Name) {
  auto W = makeWorkloadByName(Name);
  for (auto _ : State) {
    Module M;
    benchmark::DoNotOptimize(W->build(M));
  }
}

void BM_Analyses(benchmark::State &State, const char *Name) {
  auto W = makeWorkloadByName(Name);
  Module M;
  Function *F = W->build(M);
  for (auto _ : State) {
    CFG G(*F);
    DominatorTree DT(G);
    LoopInfo LI(G, DT);
    Liveness LV(G);
    benchmark::DoNotOptimize(LI.loops().size());
  }
}

void BM_FullPipeline(benchmark::State &State, const char *Name) {
  auto W = makeWorkloadByName(Name);
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  for (auto _ : State) {
    State.PauseTiming();
    Module M;
    Function *F = W->build(M);
    State.ResumeTiming();
    benchmark::DoNotOptimize(compileFunction(*F, TM, CO));
  }
}

/// Cost of the guard rails themselves: the full pipeline with per-pass
/// snapshot + re-verify versus the bare pipeline. The delta is what a
/// clean compile pays for recoverability.
void BM_GuardRailOverhead(benchmark::State &State, const char *Name,
                          bool GuardRails) {
  auto W = makeWorkloadByName(Name);
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  CO.GuardRails = GuardRails;
  for (auto _ : State) {
    State.PauseTiming();
    Module M;
    Function *F = W->build(M);
    State.ResumeTiming();
    benchmark::DoNotOptimize(compileFunction(*F, TM, CO));
  }
}

void BM_ListScheduler(benchmark::State &State, const char *Name) {
  auto W = makeWorkloadByName(Name);
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = false;
  compileFunction(*F, TM, CO);
  // Schedule the largest block repeatedly.
  BasicBlock *Biggest = F->entry();
  for (const auto &BB : F->blocks())
    if (BB->size() > Biggest->size())
      Biggest = BB.get();
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleBlock(*Biggest, TM).Cycles);
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Biggest->size()));
}

void BM_SimulatorThroughput(benchmark::State &State) {
  auto W = makeWorkloadByName("image_add");
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  compileFunction(*F, TM, CO);
  SetupOptions SO;
  SO.N = 4096;
  uint64_t Insts = 0;
  for (auto _ : State) {
    State.PauseTiming();
    Memory Mem;
    SetupResult S = W->setup(Mem, SO);
    Interpreter Interp(TM, Mem);
    State.ResumeTiming();
    RunResult R = Interp.run(*F, S.Args);
    Insts += R.Instructions;
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}

/// Lowering cost of the predecode pass itself (once per compiled
/// function; amortized over every simulated run of it).
void BM_Predecode(benchmark::State &State, const char *Name) {
  auto W = makeWorkloadByName(Name);
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  compileFunction(*F, TM, CO);
  for (auto _ : State) {
    DecodedFunction DF;
    std::string Error;
    bool Ok = predecodeFunction(*F, TM, DF, Error);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(DF.Ops.size());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(F->instructionCount()));
}

/// The three execution engines head to head on the same compiled kernel
/// (they must agree on every architectural result; the differential suite
/// enforces it — this measures the speed difference). Engine 0 is the
/// reference IR walk, 1 the predecoded fast path, 2 the functional tiered
/// engine with native promotion (which trades the cycle model away).
void BM_Simulate(benchmark::State &State, const char *Name, int Engine) {
  auto W = makeWorkloadByName(Name);
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  compileFunction(*F, TM, CO);
  SetupOptions SO;
  SO.N = 4096;
  InterpreterOptions IO;
  IO.Predecode = Engine >= 1;
  IO.EnableJIT = Engine >= 2;
  uint64_t Insts = 0;
  for (auto _ : State) {
    State.PauseTiming();
    Memory Mem;
    SetupResult S = W->setup(Mem, SO);
    Interpreter Interp(TM, Mem, IO);
    State.ResumeTiming();
    RunResult R = Interp.run(*F, S.Args);
    Insts += R.Instructions;
    benchmark::DoNotOptimize(R.Cycles);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}

/// What the driver pays to be able to roll a pass back, per pass, on a
/// compiled kernel-sized function: arm+commit of the lazy journal versus
/// the eager full-copy snapshot it replaced (take alone — the old
/// driver's per-pass cost on the happy path).
void BM_SnapshotLazy(benchmark::State &State, const char *Name,
                     bool Lazy) {
  auto W = makeWorkloadByName(Name);
  TargetMachine TM = makeAlphaTarget();
  Module M;
  Function *F = W->build(M);
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  compileFunction(*F, TM, CO);
  for (auto _ : State) {
    if (Lazy) {
      SnapshotJournal J;
      J.arm(*F);
      J.commit();
      benchmark::DoNotOptimize(J.armed());
    } else {
      FunctionSnapshot Snap = FunctionSnapshot::take(*F);
      benchmark::DoNotOptimize(Snap.blockCount());
    }
  }
}

/// Cost of telemetry on the full pipeline: disabled (null sink — the
/// acceptance bar is <=1% over no telemetry at all), collecting, and
/// collecting + per-pass profiling. "Disabled" and BM_FullPipeline
/// measure the same work modulo the one pointer test per decision point.
void BM_RemarkOverhead(benchmark::State &State, const char *Name,
                       int Level) {
  auto W = makeWorkloadByName(Name);
  TargetMachine TM = makeAlphaTarget();
  CompileOptions CO;
  CO.Mode = CoalesceMode::LoadsAndStores;
  CO.Unroll = true;
  CO.Schedule = true;
  CO.ProfilePasses = Level >= 2;
  for (auto _ : State) {
    State.PauseTiming();
    Module M;
    Function *F = W->build(M);
    CollectingRemarkSink Sink;
    CO.Remarks = Level >= 1 ? &Sink : nullptr;
    State.ResumeTiming();
    benchmark::DoNotOptimize(compileFunction(*F, TM, CO));
    benchmark::DoNotOptimize(Sink.remarks().size());
  }
}

} // namespace

BENCHMARK_CAPTURE(BM_BuildKernel, convolution, "convolution");
BENCHMARK_CAPTURE(BM_BuildKernel, image_add, "image_add");
BENCHMARK_CAPTURE(BM_Analyses, convolution, "convolution");
BENCHMARK_CAPTURE(BM_Analyses, dotproduct, "dotproduct");
BENCHMARK_CAPTURE(BM_FullPipeline, convolution, "convolution");
BENCHMARK_CAPTURE(BM_FullPipeline, image_add, "image_add");
BENCHMARK_CAPTURE(BM_FullPipeline, dotproduct, "dotproduct");
BENCHMARK_CAPTURE(BM_GuardRailOverhead, image_add_guarded, "image_add",
                  /*GuardRails=*/true);
BENCHMARK_CAPTURE(BM_GuardRailOverhead, image_add_bare, "image_add",
                  /*GuardRails=*/false);
BENCHMARK_CAPTURE(BM_ListScheduler, convolution, "convolution");
BENCHMARK(BM_SimulatorThroughput);
BENCHMARK_CAPTURE(BM_Predecode, image_add, "image_add");
BENCHMARK_CAPTURE(BM_Simulate, dotproduct_reference, "dotproduct",
                  /*Engine=*/0);
BENCHMARK_CAPTURE(BM_Simulate, dotproduct_fast, "dotproduct",
                  /*Engine=*/1);
BENCHMARK_CAPTURE(BM_Simulate, dotproduct_jit, "dotproduct",
                  /*Engine=*/2);
BENCHMARK_CAPTURE(BM_Simulate, image_add_reference, "image_add",
                  /*Engine=*/0);
BENCHMARK_CAPTURE(BM_Simulate, image_add_fast, "image_add",
                  /*Engine=*/1);
BENCHMARK_CAPTURE(BM_Simulate, image_add_jit, "image_add",
                  /*Engine=*/2);
BENCHMARK_CAPTURE(BM_SnapshotLazy, image_add_journal, "image_add",
                  /*Lazy=*/true);
BENCHMARK_CAPTURE(BM_SnapshotLazy, image_add_eager, "image_add",
                  /*Lazy=*/false);
BENCHMARK_CAPTURE(BM_RemarkOverhead, image_add_disabled, "image_add",
                  /*Level=*/0);
BENCHMARK_CAPTURE(BM_RemarkOverhead, image_add_collecting, "image_add",
                  /*Level=*/1);
BENCHMARK_CAPTURE(BM_RemarkOverhead, image_add_profiled, "image_add",
                  /*Level=*/2);

BENCHMARK_MAIN();
