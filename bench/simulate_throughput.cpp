//===- bench/simulate_throughput.cpp - three-engine throughput ---*- C++ -*-===//
//
// Part of the vpo-mac project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Head-to-head throughput of the three execution engines — the reference
/// IR walk, the predecoded cycle-accurate fast path, and the functional
/// tiered engine with native promotion — on the paper's kernels, compiled
/// with the full pipeline. Emits BENCH_simulate.json for CI to archive
/// and gates on the tiered engine being at least as fast as the
/// predecoded interpreter (the regression the JIT exists to prevent),
/// whenever native execution is actually available.
///
/// Timing wraps only Interpreter::run(): arenas, setup, compilation, and
/// verification happen outside the measured window, and each engine gets
/// one untimed warmup run first (for the tiered engine that is where
/// block promotion and native compilation happen, so the timed reps see
/// the steady state a sweep would).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "jit/JIT.h"
#include "sim/Memory.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace vpo;
using namespace vpo::bench;

namespace {

struct Args {
  uint64_t N = 1 << 16;  ///< --n=N elements per kernel
  unsigned Reps = 5;     ///< --reps=N timed runs per engine (best kept)
  bool JIT = true;       ///< --no-jit: keep the tiered engine interpreted
  bool WriteJson = true; ///< --no-json
  std::string JsonPath = "BENCH_simulate.json"; ///< --json=PATH
  bool Ok = true;
};

Args parseArgs(int Argc, char **Argv) {
  Args A;
  for (int I = 1; I < Argc; ++I) {
    const std::string S = Argv[I];
    if (S.rfind("--n=", 0) == 0) {
      A.N = std::strtoull(S.c_str() + 4, nullptr, 10);
    } else if (S.rfind("--reps=", 0) == 0) {
      A.Reps = static_cast<unsigned>(
          std::strtoul(S.c_str() + 7, nullptr, 10));
      if (A.Reps == 0)
        A.Reps = 1;
    } else if (S == "--no-jit") {
      A.JIT = false;
    } else if (S == "--no-json") {
      A.WriteJson = false;
    } else if (S.rfind("--json=", 0) == 0) {
      A.JsonPath = S.substr(7);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\n"
                   "usage: %s [--n=ELEMS] [--reps=N] [--no-jit] "
                   "[--json=PATH] [--no-json]\n",
                   S.c_str(), Argv[0]);
      A.Ok = false;
      return A;
    }
  }
  return A;
}

/// One engine's result on one workload: best-of-reps throughput plus the
/// architectural outcome used for cross-engine agreement.
struct EngineRun {
  double MinstsPerSec = 0;
  RunResult R;
  std::vector<uint8_t> Image; ///< final arena contents
};

/// Runs \p F under \p IO: one untimed warmup, then Reps timed runs, each
/// on a freshly set-up arena. Keeps the fastest rep (the usual way to
/// strip scheduler noise from a throughput number).
EngineRun runEngine(const Workload &W, const Function &F,
                    const TargetMachine &TM, const SetupOptions &SO,
                    const InterpreterOptions &IO, unsigned Reps) {
  EngineRun E;
  Memory WarmMem;
  SetupResult WS = W.setup(WarmMem, SO);
  Interpreter Interp(TM, WarmMem, IO);
  Interp.run(F, WS.Args); // warmup: promotion + native compile happen here

  double BestSecs = 0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    Memory Mem;
    SetupResult S = W.setup(Mem, SO);
    // The Interpreter is bound to its arena, so each rep needs a fresh
    // one; the program cache keeps the compiled form across them.
    Interpreter RepInterp(TM, Mem, IO);
    auto T0 = std::chrono::steady_clock::now();
    RunResult R = RepInterp.run(F, S.Args);
    double Secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    if (Rep == 0 || Secs < BestSecs) {
      BestSecs = Secs;
      E.R = R;
      E.Image.assign(Mem.data(), Mem.data() + Mem.size());
    }
  }
  if (BestSecs > 0)
    E.MinstsPerSec = double(E.R.Instructions) / BestSecs / 1e6;
  return E;
}

/// Exact architectural agreement between two engines' runs.
bool agrees(const EngineRun &A, const EngineRun &B) {
  return A.R.Exit == B.R.Exit && A.R.ReturnValue == B.R.ReturnValue &&
         A.R.Instructions == B.R.Instructions && A.R.Loads == B.R.Loads &&
         A.R.Stores == B.R.Stores && A.Image.size() == B.Image.size() &&
         std::memcmp(A.Image.data(), B.Image.data(), A.Image.size()) == 0;
}

std::string formatMinsts(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  Args A = parseArgs(Argc, Argv);
  if (!A.Ok)
    return 2;

  const jit::Availability &Avail = jit::nativeAvailability();
  const bool JitNative = A.JIT && Avail.Ok;

  TargetMachine TM = makeAlphaTarget();
  SetupOptions SO;
  SO.N = A.N;
  SO.Width = 256;
  SO.Height = static_cast<unsigned>(A.N / 256);

  std::vector<std::string> Names = {"dotproduct", "image_add",
                                    "convolution"};

  std::printf("simulate_throughput: three-engine Minsts/s, n=%llu, "
              "best of %u reps (native %s)\n\n",
              static_cast<unsigned long long>(A.N), A.Reps,
              JitNative ? "on"
                        : (A.JIT ? Avail.Reason : "off: --no-jit"));
  std::printf("%-14s %12s %12s %12s %9s %s\n", "workload", "reference",
              "predecode", "jit", "speedup", "verified");
  printRule(76);

  std::string Json = "{\n  \"name\": \"simulate\"";
  Json += ",\n  \"jit_native\": ";
  Json += JitNative ? "true" : "false";
  Json += ",\n  \"n\": " + std::to_string(A.N);
  Json += ",\n  \"reps\": " + std::to_string(A.Reps);
  Json += ",\n  \"workloads\": [";

  bool AllVerified = true;
  bool GateOk = true;
  for (size_t WI = 0; WI < Names.size(); ++WI) {
    auto W = makeWorkloadByName(Names[WI]);
    Module M;
    Function *F = W->build(M);
    CompileOptions CO;
    CO.Mode = CoalesceMode::LoadsAndStores;
    CO.Unroll = true;
    CO.Schedule = true;
    compileFunction(*F, TM, CO);

    InterpreterOptions Ref;
    Ref.Predecode = false;
    InterpreterOptions Fast;
    InterpreterOptions Jit;
    Jit.EnableJIT = true;
    Jit.JITNative = A.JIT;

    EngineRun ERef = runEngine(*W, *F, TM, SO, Ref, A.Reps);
    EngineRun EFast = runEngine(*W, *F, TM, SO, Fast, A.Reps);
    EngineRun EJit = runEngine(*W, *F, TM, SO, Jit, A.Reps);

    bool Verified = ERef.R.ok() && agrees(ERef, EFast) &&
                    agrees(EFast, EJit) && EJit.R.Cycles == 0;
    AllVerified &= Verified;
    double Speedup = EFast.MinstsPerSec > 0
                         ? EJit.MinstsPerSec / EFast.MinstsPerSec
                         : 0;
    // The gate: with native promotion available, the tiered engine must
    // not be slower than the engine it is meant to beat.
    if (JitNative && EJit.MinstsPerSec < EFast.MinstsPerSec)
      GateOk = false;

    std::printf("%-14s %12s %12s %12s %8.2fx %s\n", Names[WI].c_str(),
                formatMinsts(ERef.MinstsPerSec).c_str(),
                formatMinsts(EFast.MinstsPerSec).c_str(),
                formatMinsts(EJit.MinstsPerSec).c_str(), Speedup,
                Verified ? "yes" : "NO");

    Json += WI ? ",\n    {" : "\n    {";
    Json += " \"workload\": \"" + Names[WI] + "\"";
    Json += ", \"reference_minsts\": " + formatMinsts(ERef.MinstsPerSec);
    Json += ", \"predecode_minsts\": " + formatMinsts(EFast.MinstsPerSec);
    Json += ", \"jit_minsts\": " + formatMinsts(EJit.MinstsPerSec);
    Json += ", \"jit_speedup_vs_predecode\": " + formatMinsts(Speedup);
    Json += ", \"verified\": ";
    Json += Verified ? "true" : "false";
    Json += " }";
  }
  Json += "\n  ]\n}\n";

  if (A.WriteJson) {
    std::FILE *Out = std::fopen(A.JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "failed to write %s\n", A.JsonPath.c_str());
      return 1;
    }
    std::fwrite(Json.data(), 1, Json.size(), Out);
    std::fclose(Out);
    std::printf("\n[results in %s]\n", A.JsonPath.c_str());
  }

  if (!AllVerified) {
    std::fprintf(stderr, "FAIL: engines disagreed on an architectural "
                         "result\n");
    return 1;
  }
  if (!GateOk) {
    std::fprintf(stderr, "FAIL: tiered engine slower than the predecoded "
                         "interpreter with native promotion on\n");
    return 1;
  }
  return 0;
}
